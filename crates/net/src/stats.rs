//! Admin-plane client helpers: scrape a running daemon for a
//! [`StatsSnapshot`] or a [`FlightRecord`] over any [`Transport`], and
//! render the results as JSON, Prometheus-style text exposition, or the
//! `dyrs-node watch` backlog/health table.
//!
//! The scrape functions are transport-generic so the same code path
//! serves the CLI over TCP, the loopback tests, and anything embedding
//! a transport. Rendering is hand-rolled (the vendored `serde` is a
//! no-op stub) in the same style as `dyrs-obs`'s JSONL export: every
//! string is escaped, every float prints via [`fmt_f64`] so non-finite
//! values never produce invalid JSON.

use crate::proto::{Message, StatsScope};
use crate::transport::{Peer, Transport, TransportError};
use dyrs_obs::{FlightRecord, StatsSnapshot};
use std::fmt::Write as _;
use std::time::Duration;

/// How many reply frames a scrape is willing to skip past (unrelated
/// in-flight traffic) before giving up on matching its request.
const SCRAPE_SKIP_BUDGET: u32 = 256;

/// One labelled scrape result, as rendered by the CLI.
#[derive(Debug, Clone)]
pub struct Scrape {
    /// Where the snapshot came from (`master`, `slave-0`, ...).
    pub label: String,
    /// The snapshot itself.
    pub snapshot: StatsSnapshot,
}

/// Request `scope` from `to` and wait for the matching [`Message::StatsReply`].
///
/// Unrelated frames that arrive first (e.g. another client's replies on
/// a shared loopback endpoint) are skipped, up to a fixed budget. Errors
/// are [`TransportError::Timeout`] if the peer never answers within
/// `timeout` per attempt.
pub fn scrape_stats<T: Transport>(
    transport: &T,
    to: Peer,
    scope: StatsScope,
    timeout: Duration,
) -> Result<StatsSnapshot, TransportError> {
    transport.send(to, &Message::StatsRequest { scope })?;
    for _ in 0..SCRAPE_SKIP_BUDGET {
        if let (
            _,
            Message::StatsReply {
                scope: got,
                snapshot,
            },
        ) = transport.recv_timeout(timeout)?
        {
            if got == scope {
                return Ok(snapshot);
            }
        }
    }
    Err(TransportError::Timeout)
}

/// Request a flight-recorder dump (`scope` must be a `*Flight` scope)
/// and wait for the matching [`Message::FlightDump`].
pub fn scrape_flight<T: Transport>(
    transport: &T,
    to: Peer,
    scope: StatsScope,
    timeout: Duration,
) -> Result<FlightRecord, TransportError> {
    transport.send(to, &Message::StatsRequest { scope })?;
    for _ in 0..SCRAPE_SKIP_BUDGET {
        if let (_, Message::FlightDump { scope: got, record }) = transport.recv_timeout(timeout)? {
            if got == scope {
                return Ok(record);
            }
        }
    }
    Err(TransportError::Timeout)
}

/// Escape a string for a JSON string literal or a Prometheus label
/// value (the escapes coincide for the characters we emit).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON-safe token (`null` for non-finite values,
/// mirroring `dyrs-obs`'s export convention).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Render scrapes as a JSON array, one object per daemon.
pub fn render_json(scrapes: &[Scrape]) -> String {
    let mut out = String::from("[");
    for (i, s) in scrapes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let snap = &s.snapshot;
        let _ = write!(
            out,
            "{{\"daemon\":\"{}\",\"at_us\":{},\"enabled\":{},",
            escape(&s.label),
            snap.at.as_micros(),
            snap.enabled
        );
        out.push_str("\"counters\":{");
        for (j, (name, v)) in snap.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(name));
        }
        out.push_str("},\"gauges\":[");
        for (j, g) in snap.gauges.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"key\":{},\"value\":{},\"at_us\":{}}}",
                escape(&g.name),
                g.key,
                fmt_f64(g.value),
                g.at.as_micros()
            );
        }
        out.push_str("],\"open_spans\":{");
        for (j, (state, n)) in snap.open_spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{n}", escape(state));
        }
        out.push_str("},\"top_winners\":[");
        for (j, (node, won)) in snap.top_winners.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"node\":{node},\"won\":{won}}}");
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// Render scrapes in Prometheus text exposition style: one
/// `dyrs_counter`/`dyrs_gauge`/`dyrs_open_spans`/`dyrs_top_winner`
/// sample per line, labelled by daemon.
pub fn render_prometheus(scrapes: &[Scrape]) -> String {
    let mut out = String::new();
    for s in scrapes {
        let d = escape(&s.label);
        let snap = &s.snapshot;
        let _ = writeln!(
            out,
            "dyrs_snapshot_at_us{{daemon=\"{d}\"}} {}",
            snap.at.as_micros()
        );
        for (name, v) in &snap.counters {
            let _ = writeln!(
                out,
                "dyrs_counter{{daemon=\"{d}\",name=\"{}\"}} {v}",
                escape(name)
            );
        }
        for g in &snap.gauges {
            let _ = writeln!(
                out,
                "dyrs_gauge{{daemon=\"{d}\",name=\"{}\",key=\"{}\"}} {}",
                escape(&g.name),
                g.key,
                fmt_f64(g.value)
            );
        }
        for (state, n) in &snap.open_spans {
            let _ = writeln!(
                out,
                "dyrs_open_spans{{daemon=\"{d}\",state=\"{}\"}} {n}",
                escape(state)
            );
        }
        for (node, won) in &snap.top_winners {
            let _ = writeln!(
                out,
                "dyrs_top_winner{{daemon=\"{d}\",node=\"{node}\"}} {won}"
            );
        }
    }
    out
}

/// Render the `dyrs-node watch` backlog/health table: one row per
/// daemon with the scheduler backlog, open-span census, terminal
/// counters, the bytes parked in middle buffer tiers (demoted copies,
/// from the `tier.occupancy_bytes` gauges), and the worst node-health
/// gauge the daemon reports.
pub fn render_watch_table(scrapes: &[Scrape]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9}  health",
        "daemon", "pending", "open", "started", "finished", "aborted", "evicted", "tiered-mb"
    );
    for s in scrapes {
        let snap = &s.snapshot;
        let pending = snap
            .gauge("sched.pending_depth", 0)
            .map_or_else(|| "-".to_owned(), |v| format!("{v:.0}"));
        // Middle-tier occupancy: gauge keys encode (node << 8) | tier, so
        // tier 0 (memory, already covered by buffer gauges) is excluded.
        let mut tiered: Option<f64> = None;
        for g in &snap.gauges {
            if g.name == "tier.occupancy_bytes" && (g.key & 0xff) >= 1 {
                *tiered.get_or_insert(0.0) += g.value;
            }
        }
        let tiered = tiered.map_or_else(
            || "-".to_owned(),
            |b| format!("{:.0}", b / (1u64 << 20) as f64),
        );
        let health = {
            let mut worst: Option<(u64, f64)> = None;
            for g in &snap.gauges {
                if g.name == "node.health" && worst.is_none_or(|(_, w)| g.value > w) {
                    worst = Some((g.key, g.value));
                }
            }
            match worst {
                None => "-".to_owned(),
                Some((node, v)) => {
                    let name = match v as u32 {
                        0 => "healthy",
                        1 => "suspect",
                        2 => "probation",
                        3 => "quarantined",
                        4 => "joining",
                        _ => "draining",
                    };
                    if v == 0.0 {
                        "all-healthy".to_owned()
                    } else {
                        format!("node {node}: {name}")
                    }
                }
            }
        };
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9}  {}",
            s.label,
            pending,
            snap.open_total(),
            snap.counter("span.started"),
            snap.counter("span.finished"),
            snap.counter("span.aborted"),
            snap.counter("span.evicted"),
            tiered,
            health
        );
    }
    out
}

/// Render a flight record as human-readable lines (one per entry).
pub fn render_flight(record: &FlightRecord) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight dump: reason={} node={} at_us={} dropped={} entries={}",
        record.reason,
        record
            .node
            .map_or_else(|| "-".to_owned(), |n| n.to_string()),
        record.at.as_micros(),
        record.dropped,
        record.entries.len()
    );
    for e in &record.entries {
        let _ = writeln!(
            out,
            "  [{:>12}us] mig={} block={} state={} node={} cause={}",
            e.at.as_micros(),
            e.migration,
            e.block,
            e.state,
            e.node.map_or_else(|| "-".to_owned(), |n| n.to_string()),
            e.cause
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyrs_obs::{FlightEntry, GaugeSample};
    use simkit::SimTime;

    fn sample() -> Scrape {
        Scrape {
            label: "master".into(),
            snapshot: StatsSnapshot {
                at: SimTime::from_secs(2),
                enabled: true,
                counters: vec![("span.finished".into(), 3)],
                gauges: vec![
                    GaugeSample {
                        name: "sched.pending_depth".into(),
                        key: 0,
                        value: 6.0,
                        at: SimTime::from_secs(2),
                    },
                    GaugeSample {
                        name: "node.health".into(),
                        key: 1,
                        value: 3.0,
                        at: SimTime::from_secs(2),
                    },
                    GaugeSample {
                        name: "tier.occupancy_bytes".into(),
                        key: (1 << 8) | 1, // node 1, tier 1
                        value: 3.0 * (1u64 << 20) as f64,
                        at: SimTime::from_secs(2),
                    },
                ],
                open_spans: vec![("pending".into(), 6)],
                top_winners: vec![(1, 4)],
            },
        }
    }

    #[test]
    fn json_rendering_is_wellformed_and_escaped() {
        let mut s = sample();
        s.label = "ma\"ster".into();
        s.snapshot.gauges[0].value = f64::NAN;
        let json = render_json(&[s]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"daemon\":\"ma\\\"ster\""));
        assert!(json.contains("\"value\":null"));
        assert!(json.contains("\"span.finished\":3"));
        assert!(json.contains("{\"node\":1,\"won\":4}"));
    }

    #[test]
    fn prometheus_rendering_has_one_sample_per_line() {
        let text = render_prometheus(&[sample()]);
        assert!(text.contains("dyrs_counter{daemon=\"master\",name=\"span.finished\"} 3"));
        assert!(
            text.contains("dyrs_gauge{daemon=\"master\",name=\"sched.pending_depth\",key=\"0\"} 6")
        );
        assert!(text.contains("dyrs_open_spans{daemon=\"master\",state=\"pending\"} 6"));
        assert!(text.contains("dyrs_top_winner{daemon=\"master\",node=\"1\"} 4"));
    }

    #[test]
    fn watch_table_summarizes_backlog_and_health() {
        let table = render_watch_table(&[sample()]);
        assert!(table.contains("daemon"));
        assert!(table.contains("master"));
        assert!(table.contains('6'), "pending depth rendered");
        assert!(table.contains("node 1: quarantined"));
        assert!(table.contains("tiered-mb"), "tier column present");
        assert!(table.contains(" 3  "), "3 MB demoted rendered");
    }

    #[test]
    fn watch_table_dashes_tier_column_without_tier_gauges() {
        let mut s = sample();
        s.snapshot
            .gauges
            .retain(|g| g.name != "tier.occupancy_bytes");
        let table = render_watch_table(&[s]);
        assert!(table.contains(" -  "), "legacy snapshots show a dash");
    }

    #[test]
    fn flight_rendering_names_the_node() {
        let rec = FlightRecord {
            reason: "node-quarantined".into(),
            node: Some(2),
            at: SimTime::from_secs(9),
            dropped: 1,
            entries: vec![FlightEntry {
                at: SimTime::from_secs(8),
                migration: 5,
                block: 7,
                state: "mark".into(),
                node: Some(2),
                cause: "node-quarantined".into(),
            }],
        };
        let text = render_flight(&rec);
        assert!(text.contains("reason=node-quarantined node=2"));
        assert!(text.contains("mig=5 block=7 state=mark node=2 cause=node-quarantined"));
    }
}
