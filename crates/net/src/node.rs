//! The `dyrs-node` daemon loops: the existing [`Master`]/[`Slave`] state
//! machines from `crates/core`, driven by protocol messages off a
//! [`Transport`] instead of by the simulator's event loop.
//!
//! ## Time
//!
//! The state machines consume [`SimTime`], never a wall clock: each
//! daemon advances a private virtual clock by [`tick`](MasterConfig::tick)
//! per poll iteration. EWMA smoothing, the failure detector and
//! Algorithm 1 only ever compare these timestamps against each other, so
//! a tick that drifts from real time changes nothing about correctness.
//!
//! ## Orderly shutdown, and how "zero lost messages" is proven
//!
//! Both sides count every post-handshake frame they send. Shutdown is a
//! two-way barrier over the (ordered, reliable) transport:
//!
//! 1. the master sends each slave `Shutdown { sent }` as its *last*
//!    frame, where `sent` includes the shutdown frame itself;
//! 2. the slave, having received `Shutdown`, has by ordering received
//!    every master frame — it checks its receive count against `sent`,
//!    answers with its *last* frame `Bye { sent }`, and exits;
//! 3. the master drains until every slave's `Bye` arrives and checks
//!    each against its per-slave receive count.
//!
//! A mismatch on either side is a lost (or phantom) message and fails
//! the run report's `zero_loss()`.

use crate::proto::{Message, StatsScope};
use crate::transport::{Peer, Transport, TransportError};
use dyrs::config::{DyrsConfig, FailureDetectorConfig};
use dyrs::slave::Revoked;
use dyrs::{Master, MigrationPolicy, Slave};
use dyrs_cluster::NodeId;
use dyrs_dfs::BlockId;
use dyrs_obs::FlightRecord;
use simkit::{Rng, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default virtual time advanced per poll iteration.
pub const DEFAULT_TICK: SimDuration = SimDuration::from_millis(100);

/// Default real-time poll interval (how long a daemon blocks on the
/// transport per iteration).
pub const DEFAULT_POLL: Duration = Duration::from_millis(2);

/// How many poll windows the master waits for outstanding `Bye`s before
/// giving up during shutdown.
const BYE_DRAIN_WINDOWS: u32 = 2_000;

/// Master daemon tuning.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Targeting policy (DYRS for real deployments).
    pub policy: MigrationPolicy,
    /// Cluster size the master plans for.
    pub num_nodes: usize,
    /// Prior disk bandwidth (bytes/s) before first heartbeats arrive.
    pub default_disk_bw: f64,
    /// Seed for the master's (deterministic) tie-break randomness.
    pub seed: u64,
    /// DYRS tunables (retarget cadence is read from here).
    pub dyrs: DyrsConfig,
    /// Virtual time per poll iteration.
    pub tick: SimDuration,
    /// Real blocking time per poll iteration.
    pub poll: Duration,
    /// Gray-failure detector for the daemon master. `None` (the default)
    /// keeps it off: the daemons advance virtual time per *poll*, so
    /// heartbeat deadlines measure wall-clock scheduling jitter rather
    /// than simulated silence — only enable this with deadlines sized
    /// for that. Quarantines fire the flight recorder automatically.
    pub detector: Option<FailureDetectorConfig>,
    /// A checkpoint to reload before serving (master restart). Restored
    /// heartbeat deadlines come back unarmed, so the fleet re-registers
    /// through its ordinary heartbeats without being mass-suspected.
    pub restore: Option<dyrs::master::MasterCheckpoint>,
}

impl MasterConfig {
    /// A DYRS master for `num_nodes` slaves with paper-default tunables.
    pub fn new(num_nodes: usize) -> Self {
        MasterConfig {
            policy: MigrationPolicy::Dyrs,
            num_nodes,
            default_disk_bw: 100.0 * (1 << 20) as f64,
            seed: 1,
            dyrs: DyrsConfig::default(),
            tick: DEFAULT_TICK,
            poll: DEFAULT_POLL,
            detector: None,
            restore: None,
        }
    }
}

/// Live progress counters a supervisor (or test) can watch while
/// [`run_master`] owns the thread.
#[derive(Debug, Clone, Default)]
pub struct MasterProgress {
    /// Migrations that reported complete.
    pub completed: Arc<AtomicU64>,
    /// Evictions that reported back.
    pub evicted: Arc<AtomicU64>,
    /// Heartbeats processed.
    pub heartbeats: Arc<AtomicU64>,
}

/// What a finished master run observed.
#[derive(Debug)]
pub struct MasterReport {
    /// Post-handshake frames sent per slave (including `Shutdown`).
    pub sent: BTreeMap<u32, u64>,
    /// Post-handshake frames received per slave (including `Bye`).
    pub received: BTreeMap<u32, u64>,
    /// Each slave's advertised send count from its `Bye`.
    pub byes: BTreeMap<u32, u64>,
    /// `(node, block)` pairs that completed migration.
    pub completed: Vec<(u32, u64)>,
    /// Protocol-level violations observed (empty on a healthy run).
    pub errors: Vec<String>,
    /// The master's observability report (spans, counters); empty when
    /// the `obs` feature is off.
    pub obs: dyrs_obs::ObsReport,
    /// Automatic flight-recorder dumps taken during the run (node
    /// quarantines, protocol violations), oldest first.
    pub flight: Vec<FlightRecord>,
}

impl MasterReport {
    /// True when every slave said `Bye` and every advertised count
    /// matches what actually arrived — no frame lost in either
    /// direction, for any peer.
    pub fn zero_loss(&self) -> bool {
        !self.byes.is_empty()
            && self.sent.keys().all(|n| self.byes.contains_key(n))
            && self
                .byes
                .iter()
                .all(|(n, advertised)| self.received.get(n) == Some(advertised))
    }
}

/// Run a master daemon over `transport` until `stop` is set, then
/// perform the orderly shutdown barrier and return the run report.
pub fn run_master<T: Transport>(
    transport: &T,
    cfg: &MasterConfig,
    stop: &AtomicBool,
    progress: &MasterProgress,
) -> MasterReport {
    let mut master = Master::new(
        cfg.policy,
        cfg.num_nodes,
        cfg.default_disk_bw,
        Rng::new(cfg.seed),
    );
    let obs = dyrs_obs::ObsHandle::new();
    master.attach_obs(obs.clone());
    if let Some(det) = cfg.detector.clone() {
        master.configure_detector(det);
    }

    let mut now = SimTime::from_micros(0);
    let mut last_retarget = now;
    let mut known: BTreeSet<u32> = BTreeSet::new();
    let mut sent: BTreeMap<u32, u64> = BTreeMap::new();
    let mut received: BTreeMap<u32, u64> = BTreeMap::new();
    let mut byes: BTreeMap<u32, u64> = BTreeMap::new();
    let mut completed: Vec<(u32, u64)> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    // Checkpoint restart: rebuild bindings and the pending list before
    // serving. Slaves re-register through their ordinary heartbeats (the
    // restored deadlines are unarmed), so no extra handshake frame exists
    // to lose.
    if let Some(cp) = &cfg.restore {
        if let Err(e) = master.restore_from(cp) {
            errors.push(format!("checkpoint restore: {e}"));
        }
    }
    // Relay bookkeeping for Node-scoped scrapes: per-slave FIFO of
    // requesters awaiting that slave's reply. The transport is ordered
    // per connection, so replies pair with requests front-to-back.
    let mut pending_scrapes: BTreeMap<u32, VecDeque<Peer>> = BTreeMap::new();

    let send = |transport: &T, sent: &mut BTreeMap<u32, u64>, node: u32, msg: Message| {
        match transport.send(Peer::Slave(node), &msg) {
            Ok(()) => *sent.entry(node).or_insert(0) += 1,
            Err(e) => {
                // Counted sends only cover frames actually queued; a
                // failed send is visible as a count mismatch at Bye time.
                let _ = e;
            }
        }
    };
    // Reply to whichever peer asked: frames to slaves join the per-slave
    // ledger, frames to clients ride outside the shutdown barrier.
    let reply_to = |transport: &T, sent: &mut BTreeMap<u32, u64>, to: Peer, msg: Message| match to {
        Peer::Slave(n) => send(transport, sent, n, msg),
        other => {
            let _ = transport.send(other, &msg);
        }
    };

    loop {
        match transport.recv_timeout(cfg.poll) {
            Ok((peer, msg)) => {
                if let Peer::Slave(n) = peer {
                    *received.entry(n).or_insert(0) += 1;
                }
                match (peer, msg) {
                    (Peer::Slave(_), Message::Heartbeat { node, report, .. }) => {
                        known.insert(node.0);
                        progress.heartbeats.fetch_add(1, Ordering::SeqCst);
                        master.on_heartbeat_at(
                            node,
                            report.secs_per_byte,
                            report.queued_bytes,
                            now,
                        );
                        let pulled = master.on_slave_pull(node, report.queue_space);
                        if !pulled.is_empty() {
                            send(
                                transport,
                                &mut sent,
                                node.0,
                                Message::Bind { migrations: pulled },
                            );
                        }
                        if master.detector_enabled() {
                            // The daemon cannot query slave queues
                            // synchronously, so suspect nodes are left to
                            // the stuck detector; confirmed-stuck bindings
                            // are revoked over the wire (a slave ignores
                            // blocks it no longer holds). Quarantines
                            // inside check_health auto-dump the flight
                            // recorder.
                            let health = master.check_health(now);
                            for (snode, block) in health.stuck {
                                send(transport, &mut sent, snode.0, Message::Revoke { block });
                                master.on_unbound(snode, block, dyrs_obs::cause::STUCK_STREAM);
                            }
                            obs.gauge(
                                "node.health",
                                node.0 as u64,
                                master.node_health(node).as_gauge(),
                            );
                        }
                        obs.gauge(
                            "node.membership",
                            node.0 as u64,
                            master.membership(node).as_gauge(),
                        );
                        // Scheduler gauges sampled on every heartbeat
                        // batch, so a mid-run scrape sees the live
                        // backlog.
                        obs.gauge("sched.pending_depth", 0, master.pending_len() as f64);
                    }
                    (Peer::Slave(_), Message::MigrationComplete { node, block }) => {
                        // The daemon owns its span's terminal event; in
                        // the simulator the slave model shares the obs
                        // handle and emits it instead.
                        if let Some((mig, bound_at)) = master.bound_migration(node, block) {
                            obs.migration_finished(mig, node, now.saturating_since(bound_at));
                        }
                        master.on_migration_complete(node, block);
                        completed.push((node.0, block.0));
                        progress.completed.fetch_add(1, Ordering::SeqCst);
                    }
                    (Peer::Slave(_), Message::Evicted { block, .. }) => {
                        master.on_evicted(block);
                        progress.evicted.fetch_add(1, Ordering::SeqCst);
                    }
                    (Peer::Slave(n), Message::Bye { sent }) => {
                        byes.insert(n, sent);
                    }
                    (
                        Peer::Client(_),
                        Message::RequestMigration {
                            job,
                            blocks,
                            eviction,
                            hint,
                        },
                    ) => {
                        let outcome = master.request_migration_hinted(job, blocks, eviction, hint);
                        for (node, block, jref) in outcome.add_refs {
                            send(
                                transport,
                                &mut sent,
                                node.0,
                                Message::AddRef { block, job: jref },
                            );
                        }
                        // Ignem-style immediate bindings, grouped per node.
                        let mut by_node: BTreeMap<u32, Vec<dyrs::Migration>> = BTreeMap::new();
                        for b in outcome.immediate {
                            by_node.entry(b.node.0).or_default().push(b.migration);
                        }
                        for (node, migrations) in by_node {
                            send(transport, &mut sent, node, Message::Bind { migrations });
                        }
                    }
                    (Peer::Client(_), Message::ReadNotify { block, job }) => {
                        let _cancelled = master.on_block_read(block);
                        // Forward the read to the slave buffering the
                        // block so implicit eviction can run (§IV-A1).
                        if let Some(host) = master.memory_location(block) {
                            send(
                                transport,
                                &mut sent,
                                host.0,
                                Message::ReadNotify { block, job },
                            );
                        }
                    }
                    (Peer::Client(_), Message::EvictJobRequest { job }) => {
                        for node in master.evict_job(job) {
                            send(transport, &mut sent, node.0, Message::EvictJob { job });
                        }
                    }
                    (requester, Message::StatsRequest { scope }) => match scope {
                        StatsScope::Local => {
                            // Sample the scheduler gauges at scrape time
                            // too, so depth is current even before the
                            // first heartbeat batch.
                            obs.gauge("sched.pending_depth", 0, master.pending_len() as f64);
                            if master.detector_enabled() {
                                for &n in &known {
                                    obs.gauge(
                                        "node.health",
                                        u64::from(n),
                                        master.node_health(NodeId(n)).as_gauge(),
                                    );
                                }
                            }
                            // Membership is tracked with or without the
                            // detector.
                            for &n in &known {
                                obs.gauge(
                                    "node.membership",
                                    u64::from(n),
                                    master.membership(NodeId(n)).as_gauge(),
                                );
                            }
                            let reply = Message::StatsReply {
                                scope: StatsScope::Local,
                                snapshot: obs.snapshot(),
                            };
                            reply_to(transport, &mut sent, requester, reply);
                        }
                        StatsScope::LocalFlight => {
                            let reply = Message::FlightDump {
                                scope: StatsScope::LocalFlight,
                                record: obs.flight_dump("on-demand", None),
                            };
                            reply_to(transport, &mut sent, requester, reply);
                        }
                        // Relay to the slave; if it is not connected the
                        // send fails silently and the requester times out.
                        StatsScope::Node(n) => {
                            send(
                                transport,
                                &mut sent,
                                n,
                                Message::StatsRequest {
                                    scope: StatsScope::Local,
                                },
                            );
                            pending_scrapes.entry(n).or_default().push_back(requester);
                        }
                        StatsScope::NodeFlight(n) => {
                            send(
                                transport,
                                &mut sent,
                                n,
                                Message::StatsRequest {
                                    scope: StatsScope::LocalFlight,
                                },
                            );
                            pending_scrapes.entry(n).or_default().push_back(requester);
                        }
                    },
                    (requester, Message::DrainNode { node }) => {
                        if (node as usize) < cfg.num_nodes {
                            // Revoke the not-yet-started bindings over the
                            // wire (a slave ignores blocks it no longer
                            // holds / already streams) and re-pend each as
                            // a drain successor at its original position.
                            for block in master.drain_node(NodeId(node)) {
                                send(transport, &mut sent, node, Message::Revoke { block });
                                master.on_drain_unbound(NodeId(node), block);
                            }
                            // Safe-removal poll: each DrainNode re-checks;
                            // the ack carries the current phase so the
                            // admin client can poll to `removed`.
                            if master.drain_complete(NodeId(node)) {
                                master.decommission(NodeId(node));
                            }
                            let membership = master.membership(NodeId(node));
                            obs.gauge("node.membership", u64::from(node), membership.as_gauge());
                            reply_to(
                                transport,
                                &mut sent,
                                requester,
                                Message::DecommissionAck {
                                    node,
                                    membership: membership.code(),
                                },
                            );
                        } else {
                            errors.push(format!("drain for out-of-range node {node}"));
                        }
                    }
                    (requester, Message::JoinRequest { node }) => {
                        if (node as usize) < cfg.num_nodes {
                            master.join_node(NodeId(node));
                            let membership = master.membership(NodeId(node));
                            obs.gauge("node.membership", u64::from(node), membership.as_gauge());
                            reply_to(
                                transport,
                                &mut sent,
                                requester,
                                Message::DecommissionAck {
                                    node,
                                    membership: membership.code(),
                                },
                            );
                        } else {
                            errors.push(format!("join for out-of-range node {node}"));
                        }
                    }
                    (requester, Message::CheckpointRequest) => {
                        obs.counter_add("membership.checkpoints", 1);
                        let data = crate::checkpoint::checkpoint_to_bytes(&master.checkpoint());
                        reply_to(
                            transport,
                            &mut sent,
                            requester,
                            Message::Checkpoint { data },
                        );
                    }
                    (Peer::Slave(n), Message::StatsReply { snapshot, .. }) => {
                        if let Some(req) = pending_scrapes.get_mut(&n).and_then(VecDeque::pop_front)
                        {
                            let reply = Message::StatsReply {
                                scope: StatsScope::Node(n),
                                snapshot,
                            };
                            reply_to(transport, &mut sent, req, reply);
                        }
                    }
                    (Peer::Slave(n), Message::FlightDump { record, .. }) => {
                        if let Some(req) = pending_scrapes.get_mut(&n).and_then(VecDeque::pop_front)
                        {
                            let reply = Message::FlightDump {
                                scope: StatsScope::NodeFlight(n),
                                record,
                            };
                            reply_to(transport, &mut sent, req, reply);
                        }
                    }
                    (peer, other) => {
                        errors.push(format!("unexpected {} from {peer}", other.name()));
                        obs.flight_auto_dump("protocol-violation", None);
                    }
                }
            }
            Err(TransportError::Timeout) => {}
            Err(TransportError::Protocol(e)) => {
                errors.push(format!("protocol: {e}"));
                obs.flight_auto_dump("protocol-violation", None);
            }
            Err(e) => {
                errors.push(format!("transport: {e}"));
                break;
            }
        }

        now += cfg.tick;
        obs.set_now(now);
        if now.saturating_since(last_retarget) >= cfg.dyrs.retarget_interval {
            let stats = master.retarget();
            obs.gauge("sched.dirty_entries", 0, stats.rescored as f64);
            obs.gauge("sched.pending_depth", 0, master.pending_len() as f64);
            last_retarget = now;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }

    // Shutdown barrier: last frame to each slave advertises the final
    // per-peer send count (including the Shutdown itself).
    for node in known.clone() {
        let total = sent.get(&node).copied().unwrap_or(0) + 1;
        send(
            transport,
            &mut sent,
            node,
            Message::Shutdown { sent: total },
        );
    }
    let mut windows = 0;
    while byes.len() < known.len() && windows < BYE_DRAIN_WINDOWS {
        match transport.recv_timeout(cfg.poll) {
            Ok((Peer::Slave(n), Message::Bye { sent })) => {
                *received.entry(n).or_insert(0) += 1;
                byes.insert(n, sent);
            }
            Ok((Peer::Slave(n), other)) => {
                // Late in-flight traffic (completions racing shutdown)
                // still counts toward the frame accounting.
                *received.entry(n).or_insert(0) += 1;
                if let Message::MigrationComplete { node, block } = other {
                    if let Some((mig, bound_at)) = master.bound_migration(node, block) {
                        obs.migration_finished(mig, node, now.saturating_since(bound_at));
                    }
                    master.on_migration_complete(node, block);
                    completed.push((node.0, block.0));
                    progress.completed.fetch_add(1, Ordering::SeqCst);
                } else if let Message::Evicted { block, .. } = other {
                    master.on_evicted(block);
                    progress.evicted.fetch_add(1, Ordering::SeqCst);
                }
            }
            Ok(_) => {}
            Err(TransportError::Timeout) => windows += 1,
            Err(_) => break,
        }
    }

    obs.close_dangling(dyrs_obs::cause::RUN_END);
    MasterReport {
        sent,
        received,
        byes,
        completed,
        errors,
        flight: obs.auto_flight_dumps(),
        obs: obs.take_report(),
    }
}

/// Slave daemon tuning.
#[derive(Debug, Clone)]
pub struct SlaveConfig {
    /// This slave's NodeId.
    pub node: NodeId,
    /// DYRS tunables (heartbeat cadence is read from here).
    pub dyrs: DyrsConfig,
    /// Synthetic disk bandwidth (bytes per *virtual* second) used to
    /// pace migration execution.
    pub disk_bw: f64,
    /// Memory buffer capacity in bytes.
    pub mem_capacity: u64,
    /// Reference block size (queue sizing).
    pub reference_block: u64,
    /// Virtual time per poll iteration.
    pub tick: SimDuration,
    /// Real blocking time per poll iteration.
    pub poll: Duration,
}

impl SlaveConfig {
    /// A slave with paper-default tunables and a fast synthetic disk
    /// (sized so smoke-test blocks complete within a few ticks).
    pub fn new(node: NodeId) -> Self {
        SlaveConfig {
            node,
            dyrs: DyrsConfig::default(),
            disk_bw: 100.0 * (1 << 20) as f64,
            mem_capacity: 4 << 30,
            reference_block: 256 << 20,
            tick: DEFAULT_TICK,
            poll: DEFAULT_POLL,
        }
    }
}

/// What a finished slave run observed.
#[derive(Debug)]
pub struct SlaveReport {
    /// Post-handshake frames sent (including `Bye`).
    pub sent: u64,
    /// Post-handshake frames received (including `Shutdown`).
    pub received: u64,
    /// The master's advertised send count from `Shutdown`.
    pub advertised: Option<u64>,
    /// Migrations executed to completion.
    pub completed: u64,
    /// Blocks evicted.
    pub evicted: u64,
    /// Protocol-level violations observed (empty on a healthy run).
    pub errors: Vec<String>,
    /// The slave's observability report (spans, counters); empty when
    /// the `obs` feature is off.
    pub obs: dyrs_obs::ObsReport,
}

impl SlaveReport {
    /// True when the master's advertised frame count matches what this
    /// slave actually received.
    pub fn zero_loss(&self) -> bool {
        self.advertised == Some(self.received)
    }
}

/// Size of the synthetic startup calibration read.
const CALIBRATION_BYTES: u64 = 8 << 20;

/// Run a slave daemon over `transport` until the master's `Shutdown`
/// arrives (or `stop` is set locally), then answer `Bye` and return the
/// run report.
pub fn run_slave<T: Transport>(transport: &T, cfg: &SlaveConfig, stop: &AtomicBool) -> SlaveReport {
    let mut slave = Slave::new(
        cfg.node,
        cfg.dyrs.clone(),
        cfg.disk_bw,
        cfg.mem_capacity,
        cfg.reference_block,
    );
    // Startup probe (§IV-A): seed the estimator so the first heartbeat
    // advertises real queue space instead of the uncalibrated refusal.
    slave.calibrate(
        CALIBRATION_BYTES,
        SimDuration::from_secs_f64(CALIBRATION_BYTES as f64 / cfg.disk_bw),
    );
    let obs = dyrs_obs::ObsHandle::new();
    slave.attach_obs(obs.clone());

    let mut now = SimTime::from_micros(0);
    let mut next_hb = now; // heartbeat immediately on startup
    let mut active: Vec<(BlockId, SimTime)> = Vec::new();
    let mut sent: u64 = 0;
    let mut received: u64 = 0;
    let mut advertised: Option<u64> = None;
    let mut completed: u64 = 0;
    let mut evicted: u64 = 0;
    let mut errors: Vec<String> = Vec::new();

    let send = |transport: &T, sent: &mut u64, msg: Message| {
        if transport.send(Peer::Master, &msg).is_ok() {
            *sent += 1;
        }
    };

    'outer: loop {
        // Drain everything already queued before advancing time.
        loop {
            match transport.try_recv() {
                Ok(Some((_, msg))) => {
                    received += 1;
                    match msg {
                        Message::Bind { migrations } => slave.on_bind(migrations),
                        Message::AddRef { block, job } => slave.add_ref(block, job),
                        Message::Revoke { block } => {
                            if let Revoked::Active = slave.revoke(block) {
                                active.retain(|(b, _)| *b != block);
                            }
                        }
                        Message::EvictJob { job } => {
                            for ev in slave.evict_job(job) {
                                evicted += 1;
                                send(
                                    transport,
                                    &mut sent,
                                    Message::Evicted {
                                        node: cfg.node,
                                        block: ev.block,
                                    },
                                );
                            }
                        }
                        Message::ReadNotify { block, job } => {
                            for ev in slave.on_read(block, job) {
                                evicted += 1;
                                send(
                                    transport,
                                    &mut sent,
                                    Message::Evicted {
                                        node: cfg.node,
                                        block: ev.block,
                                    },
                                );
                            }
                        }
                        Message::Shutdown { sent: master_sent } => {
                            advertised = Some(master_sent);
                            break 'outer;
                        }
                        Message::StatsRequest { scope } => match scope {
                            StatsScope::Local => send(
                                transport,
                                &mut sent,
                                Message::StatsReply {
                                    scope: StatsScope::Local,
                                    snapshot: obs.snapshot(),
                                },
                            ),
                            StatsScope::LocalFlight => send(
                                transport,
                                &mut sent,
                                Message::FlightDump {
                                    scope: StatsScope::LocalFlight,
                                    record: obs.flight_dump("on-demand", Some(cfg.node)),
                                },
                            ),
                            other => {
                                errors.push(format!("unexpected stats scope {other:?}"));
                                obs.flight_auto_dump("protocol-violation", Some(cfg.node));
                            }
                        },
                        other => {
                            errors.push(format!("unexpected {}", other.name()));
                            obs.flight_auto_dump("protocol-violation", Some(cfg.node));
                        }
                    }
                }
                Ok(None) => break,
                Err(TransportError::Protocol(e)) => {
                    errors.push(format!("protocol: {e}"));
                    obs.flight_auto_dump("protocol-violation", Some(cfg.node));
                }
                Err(_) => break 'outer,
            }
        }

        // Finish any synthetic disk stream whose deadline passed.
        let done: Vec<BlockId> = active
            .iter()
            .filter(|(_, finish)| now >= *finish)
            .map(|(b, _)| *b)
            .collect();
        for block in done {
            active.retain(|(b, _)| *b != block);
            let outcome = slave.on_migration_complete_block(now, block);
            completed += 1;
            if outcome.evicted_immediately {
                evicted += 1;
                send(
                    transport,
                    &mut sent,
                    Message::Evicted {
                        node: cfg.node,
                        block,
                    },
                );
            } else {
                send(
                    transport,
                    &mut sent,
                    Message::MigrationComplete {
                        node: cfg.node,
                        block,
                    },
                );
            }
        }

        // Start queued migrations (strictly serialized by default).
        while let Some(start) = slave.try_start(now) {
            let takes = SimDuration::from_secs_f64(start.bytes as f64 / cfg.disk_bw);
            active.push((start.block, now + takes));
        }

        if now >= next_hb {
            let report = slave.on_heartbeat(now);
            send(
                transport,
                &mut sent,
                Message::Heartbeat {
                    node: cfg.node,
                    report,
                    at: now,
                },
            );
            next_hb = now + cfg.dyrs.heartbeat_interval;
        }

        // Block briefly for new traffic, then advance the virtual clock.
        match transport.recv_timeout(cfg.poll) {
            Ok((_, msg)) => {
                received += 1;
                // Re-queue through the same handling next iteration is
                // not possible without an inbox; handle inline instead.
                match msg {
                    Message::Bind { migrations } => slave.on_bind(migrations),
                    Message::AddRef { block, job } => slave.add_ref(block, job),
                    Message::Revoke { block } => {
                        if let Revoked::Active = slave.revoke(block) {
                            active.retain(|(b, _)| *b != block);
                        }
                    }
                    Message::EvictJob { job } => {
                        for ev in slave.evict_job(job) {
                            evicted += 1;
                            send(
                                transport,
                                &mut sent,
                                Message::Evicted {
                                    node: cfg.node,
                                    block: ev.block,
                                },
                            );
                        }
                    }
                    Message::ReadNotify { block, job } => {
                        for ev in slave.on_read(block, job) {
                            evicted += 1;
                            send(
                                transport,
                                &mut sent,
                                Message::Evicted {
                                    node: cfg.node,
                                    block: ev.block,
                                },
                            );
                        }
                    }
                    Message::Shutdown { sent: master_sent } => {
                        advertised = Some(master_sent);
                        break 'outer;
                    }
                    Message::StatsRequest { scope } => match scope {
                        StatsScope::Local => send(
                            transport,
                            &mut sent,
                            Message::StatsReply {
                                scope: StatsScope::Local,
                                snapshot: obs.snapshot(),
                            },
                        ),
                        StatsScope::LocalFlight => send(
                            transport,
                            &mut sent,
                            Message::FlightDump {
                                scope: StatsScope::LocalFlight,
                                record: obs.flight_dump("on-demand", Some(cfg.node)),
                            },
                        ),
                        other => {
                            errors.push(format!("unexpected stats scope {other:?}"));
                            obs.flight_auto_dump("protocol-violation", Some(cfg.node));
                        }
                    },
                    other => {
                        errors.push(format!("unexpected {}", other.name()));
                        obs.flight_auto_dump("protocol-violation", Some(cfg.node));
                    }
                }
            }
            Err(TransportError::Timeout) => {}
            Err(TransportError::Protocol(e)) => {
                errors.push(format!("protocol: {e}"));
                obs.flight_auto_dump("protocol-violation", Some(cfg.node));
            }
            Err(_) => break 'outer,
        }
        now += cfg.tick;
        obs.set_now(now);
        if stop.load(Ordering::SeqCst) {
            break 'outer;
        }
    }

    // Orderly goodbye: last frame advertises the final send count,
    // including the Bye itself.
    let advertising = sent + 1;
    send(transport, &mut sent, Message::Bye { sent: advertising });

    obs.close_dangling(dyrs_obs::cause::RUN_END);
    SlaveReport {
        sent,
        received,
        advertised,
        completed,
        evicted,
        errors,
        obs: obs.take_report(),
    }
}
