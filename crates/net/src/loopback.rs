//! Deterministic in-memory transport over crossbeam channels.
//!
//! A [`LoopbackHub`] owns one unbounded FIFO channel per registered
//! peer. `send` encodes the message into a complete frame (the same
//! bytes TCP would put on the wire) and pushes `(from, frame)` onto the
//! destination's channel; `recv` pops and decodes. Delivery is therefore
//! exactly send order per receiver, with no threads, no timers and no
//! wall clock anywhere — `dyrs-sim` drives it from its virtual clock, so
//! two same-seed runs see byte- and order-identical traffic.
//!
//! The hub also keeps global sent/delivered counters: a scenario can
//! assert `sent == delivered` at the end, the loopback form of the TCP
//! smoke test's zero-lost-messages check.

use crate::frame::{self, FrameError};
use crate::proto::{Message, PROTOCOL_VERSION};
use crate::transport::{Peer, Transport, TransportError};
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shared counters for the whole hub.
#[derive(Debug, Default)]
struct HubStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    bytes: AtomicU64,
}

type Inbox = (Sender<(Peer, Vec<u8>)>, Receiver<(Peer, Vec<u8>)>);

/// The switchboard: routes encoded frames between registered endpoints.
#[derive(Clone)]
pub struct LoopbackHub {
    inboxes: Arc<Mutex<BTreeMap<Peer, Inbox>>>,
    stats: Arc<HubStats>,
}

impl Default for LoopbackHub {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopbackHub {
    /// An empty hub; register endpoints with [`LoopbackHub::endpoint`].
    pub fn new() -> Self {
        LoopbackHub {
            inboxes: Arc::new(Mutex::new(BTreeMap::new())),
            stats: Arc::new(HubStats::default()),
        }
    }

    /// Create (or re-attach to) the endpoint for `peer`.
    pub fn endpoint(&self, peer: Peer) -> LoopbackEndpoint {
        let mut inboxes = self
            .inboxes
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let (_, rx) = inboxes
            .entry(peer)
            .or_insert_with(channel::unbounded)
            .clone();
        LoopbackEndpoint {
            hub: self.clone(),
            me: peer,
            inbox: rx,
            sent: Arc::new(AtomicU64::new(0)),
            received: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Frames pushed into the hub, total.
    pub fn frames_sent(&self) -> u64 {
        self.stats.sent.load(Ordering::SeqCst)
    }

    /// Frames popped out of the hub, total. Equal to
    /// [`LoopbackHub::frames_sent`] once every queue has drained —
    /// loopback's zero-loss invariant.
    pub fn frames_delivered(&self) -> u64 {
        self.stats.delivered.load(Ordering::SeqCst)
    }

    /// Encoded payload bytes moved through the hub, headers included.
    pub fn bytes_moved(&self) -> u64 {
        self.stats.bytes.load(Ordering::SeqCst)
    }

    fn route(&self, from: Peer, to: Peer, frame_bytes: Vec<u8>) -> Result<(), TransportError> {
        // Clone the sender inside a narrow guard scope: the channel send
        // below can block on an unbounded-allocation stall, and holding
        // `inboxes` across it would serialize every router through this
        // peer's backpressure (flagged by `dyrs-verify -- locks`).
        let tx = {
            let inboxes = self
                .inboxes
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let (tx, _) = inboxes.get(&to).ok_or(TransportError::Disconnected(to))?;
            tx.clone()
        };
        self.stats
            .bytes
            .fetch_add(frame_bytes.len() as u64, Ordering::SeqCst);
        tx.send((from, frame_bytes))
            .map_err(|_| TransportError::Disconnected(to))?;
        self.stats.sent.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

/// One peer's handle on a [`LoopbackHub`].
pub struct LoopbackEndpoint {
    hub: LoopbackHub,
    me: Peer,
    inbox: Receiver<(Peer, Vec<u8>)>,
    sent: Arc<AtomicU64>,
    received: Arc<AtomicU64>,
}

impl LoopbackEndpoint {
    /// Whose endpoint this is.
    pub fn peer(&self) -> Peer {
        self.me
    }

    fn decode(&self, from: Peer, bytes: Vec<u8>) -> Result<(Peer, Message), TransportError> {
        let (_, msg) = frame::decode_frame(&bytes, frame::supported_versions())
            .map_err(|e: FrameError| TransportError::Protocol(e))?;
        self.hub.stats.delivered.fetch_add(1, Ordering::SeqCst);
        self.received.fetch_add(1, Ordering::SeqCst);
        Ok((from, msg))
    }
}

impl Transport for LoopbackEndpoint {
    fn send(&self, to: Peer, msg: &Message) -> Result<(), TransportError> {
        let bytes = frame::encode_frame(PROTOCOL_VERSION, msg);
        self.hub.route(self.me, to, bytes)?;
        self.sent.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn try_recv(&self) -> Result<Option<(Peer, Message)>, TransportError> {
        match self.inbox.try_recv() {
            Ok((from, bytes)) => self.decode(from, bytes).map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected(self.me)),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(Peer, Message), TransportError> {
        match self.inbox.recv_timeout(timeout) {
            Ok((from, bytes)) => self.decode(from, bytes),
            Err(channel::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected(self.me))
            }
        }
    }

    fn frames_sent(&self) -> u64 {
        self.sent.load(Ordering::SeqCst)
    }

    fn frames_received(&self) -> u64 {
        self.received.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyrs_cluster::NodeId;
    use dyrs_dfs::BlockId;

    #[test]
    fn routes_in_fifo_order_and_counts() {
        let hub = LoopbackHub::new();
        let master = hub.endpoint(Peer::Master);
        let slave = hub.endpoint(Peer::Slave(2));
        for i in 0..5u64 {
            slave
                .send(
                    Peer::Master,
                    &Message::MigrationComplete {
                        node: NodeId(2),
                        block: BlockId(i),
                    },
                )
                .expect("registered peer");
        }
        for i in 0..5u64 {
            let (from, msg) = master
                .try_recv()
                .expect("no protocol error")
                .expect("queued");
            assert_eq!(from, Peer::Slave(2));
            assert_eq!(
                msg,
                Message::MigrationComplete {
                    node: NodeId(2),
                    block: BlockId(i),
                }
            );
        }
        assert_eq!(master.try_recv().expect("empty ok"), None);
        assert_eq!(hub.frames_sent(), 5);
        assert_eq!(hub.frames_delivered(), 5);
        assert!(hub.bytes_moved() > 0);
    }

    #[test]
    fn unknown_destination_errors() {
        let hub = LoopbackHub::new();
        let master = hub.endpoint(Peer::Master);
        assert_eq!(
            master.send(Peer::Slave(9), &Message::Bye { sent: 0 }),
            Err(TransportError::Disconnected(Peer::Slave(9)))
        );
    }
}
