//! `dyrs-node` — run a DYRS master or slave daemon over real TCP.
//!
//! ```text
//! dyrs-node master --listen 127.0.0.1:7430 --slaves 3 --duration-secs 10
//! dyrs-node slave  --connect 127.0.0.1:7430 --node 0
//! dyrs-node client --connect 127.0.0.1:7430 --blocks 8
//! dyrs-node stat   --connect 127.0.0.1:7430 --slaves 3 [--json] [--flight]
//! dyrs-node watch  --connect 127.0.0.1:7430 --slaves 3 --interval-ms 500
//! ```
//!
//! The master waits for `--slaves` handshakes, serves the protocol for
//! `--duration-secs` of real time, then runs the orderly shutdown
//! barrier and prints the zero-loss verdict. The client submits one
//! demo job (`--blocks` blocks spread over the slaves), reads each
//! block back, then asks for the job's buffers to be evicted.
//!
//! `stat` is the admin plane: a one-shot scrape of the live master (and,
//! via master relay, each slave) rendered as a Prometheus-style text
//! exposition or `--json`; `--flight` additionally dumps the master's
//! flight recorder. `watch` repeats the scrape every `--interval-ms`
//! and renders a backlog/health table until `--count` refreshes (0 =
//! forever) have been printed.

use dyrs::{BlockRequest, JobHint};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_net::node::{run_master, run_slave, MasterConfig, MasterProgress, SlaveConfig};
use dyrs_net::proto::{Message, Role, StatsScope};
use dyrs_net::stats::{
    render_flight, render_json, render_prometheus, render_watch_table, scrape_flight, scrape_stats,
    Scrape,
};
use dyrs_net::tcp::{TcpAcceptor, TcpConfig, TcpConnector};
use dyrs_net::transport::{Peer, Transport};
use dyrs_net::PROTOCOL_VERSION;
use simkit::SimTime;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage:
  dyrs-node master --listen ADDR [--slaves N] [--duration-secs S]
  dyrs-node slave  --connect ADDR --node N
  dyrs-node client --connect ADDR [--blocks N] [--slaves N]
  dyrs-node stat   --connect ADDR [--slaves N] [--json] [--flight]
  dyrs-node watch  --connect ADDR [--slaves N] [--interval-ms M] [--count K]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        Some(m @ ("master" | "slave" | "client" | "stat" | "watch")) => m.to_owned(),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parsed = match mode.as_str() {
        "master" => {
            let listen = match flag("--listen") {
                Some(a) => a,
                None => {
                    eprintln!("master mode requires --listen ADDR\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let slaves: usize = flag("--slaves").and_then(|s| s.parse().ok()).unwrap_or(3);
            let secs: u64 = flag("--duration-secs")
                .and_then(|s| s.parse().ok())
                .unwrap_or(10);
            run_master_mode(&listen, slaves, secs)
        }
        "slave" => {
            let connect = match (flag("--connect"), flag("--node")) {
                (Some(a), Some(n)) => n.parse::<u32>().ok().map(|n| (a, n)),
                _ => None,
            };
            match connect {
                Some((addr, node)) => run_slave_mode(&addr, node),
                None => {
                    eprintln!("slave mode requires --connect ADDR --node N\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "stat" | "watch" => {
            let addr = match flag("--connect") {
                Some(a) => a,
                None => {
                    eprintln!("{mode} mode requires --connect ADDR\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let slaves: u32 = flag("--slaves").and_then(|s| s.parse().ok()).unwrap_or(3);
            if mode == "stat" {
                let json = args.iter().any(|a| a == "--json");
                let flight = args.iter().any(|a| a == "--flight");
                run_stat_mode(&addr, slaves, json, flight)
            } else {
                let interval: u64 = flag("--interval-ms")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1000);
                let count: u64 = flag("--count").and_then(|s| s.parse().ok()).unwrap_or(0);
                run_watch_mode(&addr, slaves, interval, count)
            }
        }
        _ => {
            let addr = match flag("--connect") {
                Some(a) => a,
                None => {
                    eprintln!("client mode requires --connect ADDR\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let blocks: u64 = flag("--blocks").and_then(|s| s.parse().ok()).unwrap_or(8);
            let slaves: u32 = flag("--slaves").and_then(|s| s.parse().ok()).unwrap_or(3);
            run_client_mode(&addr, blocks, slaves)
        }
    };
    match parsed {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dyrs-node {mode}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_master_mode(listen: &str, slaves: usize, secs: u64) -> Result<(), String> {
    let acceptor =
        TcpAcceptor::bind(listen, TcpConfig::default()).map_err(|e| format!("bind: {e}"))?;
    println!(
        "master: protocol v{PROTOCOL_VERSION}, listening on {}, waiting for {slaves} slave(s)",
        acceptor.local_addr()
    );
    if !acceptor.wait_for_peers(slaves, Duration::from_secs(30)) {
        acceptor.shutdown();
        return Err(format!(
            "only {} peer(s) connected",
            acceptor.connected_peers().len()
        ));
    }
    println!("master: cluster up, serving for {secs}s");

    let stop = Arc::new(AtomicBool::new(false));
    let timer_stop = Arc::clone(&stop);
    let timer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(secs));
        timer_stop.store(true, Ordering::SeqCst);
    });

    let progress = MasterProgress::default();
    let report = run_master(&acceptor, &MasterConfig::new(slaves), &stop, &progress);
    let _ = timer.join();
    acceptor.shutdown();

    println!(
        "master: {} heartbeats, {} migrations complete, {} evictions",
        progress.heartbeats.load(Ordering::SeqCst),
        progress.completed.load(Ordering::SeqCst),
        progress.evicted.load(Ordering::SeqCst),
    );
    for (node, advertised) in &report.byes {
        println!(
            "master: slave {node} advertised {advertised} frame(s), received {}",
            report.received.get(node).copied().unwrap_or(0)
        );
    }
    if !report.errors.is_empty() {
        return Err(format!("protocol errors: {:?}", report.errors));
    }
    if report.zero_loss() {
        println!("master: zero lost messages");
        Ok(())
    } else {
        Err("message accounting mismatch (lost frames?)".into())
    }
}

fn run_slave_mode(addr: &str, node: u32) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Slave, node, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    println!("slave {node}: connected, protocol v{}", conn.version());
    let stop = AtomicBool::new(false);
    let report = run_slave(&conn, &SlaveConfig::new(NodeId(node)), &stop);
    conn.shutdown();
    println!(
        "slave {node}: {} completed, {} evicted, sent {} / received {}",
        report.completed, report.evicted, report.sent, report.received
    );
    if !report.errors.is_empty() {
        return Err(format!("protocol errors: {:?}", report.errors));
    }
    if report.zero_loss() {
        println!("slave {node}: zero lost messages");
        Ok(())
    } else {
        Err("master's advertised frame count did not match".into())
    }
}

fn run_client_mode(addr: &str, blocks: u64, slaves: u32) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Client, 0, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    println!("client: connected, protocol v{}", conn.version());
    let job = JobId(1);
    let block_bytes: u64 = 64 << 20;
    let requests: Vec<BlockRequest> = (0..blocks)
        .map(|i| BlockRequest {
            block: BlockId(i),
            bytes: block_bytes,
            replicas: (0..slaves.min(3))
                .map(|r| NodeId((i as u32 + r) % slaves))
                .collect(),
        })
        .collect();
    conn.send(
        Peer::Master,
        &Message::RequestMigration {
            job,
            blocks: requests,
            eviction: dyrs::EvictionMode::Explicit,
            hint: JobHint {
                expected_launch: SimTime::from_micros(0),
                total_bytes: blocks * block_bytes,
            },
        },
    )
    .map_err(|e| format!("send: {e}"))?;
    println!("client: submitted job 1 ({blocks} block(s) of {block_bytes} bytes)");

    // Give migrations a moment, then simulate the job reading its input
    // and finishing (which releases the buffers).
    std::thread::sleep(Duration::from_secs(2));
    for i in 0..blocks {
        conn.send(
            Peer::Master,
            &Message::ReadNotify {
                block: BlockId(i),
                job,
            },
        )
        .map_err(|e| format!("send: {e}"))?;
    }
    conn.send(Peer::Master, &Message::EvictJobRequest { job })
        .map_err(|e| format!("send: {e}"))?;
    // Let the writer thread drain before shutting down.
    std::thread::sleep(Duration::from_millis(200));
    conn.shutdown();
    println!("client: job read + eviction requested, done");
    Ok(())
}

/// Per-scope reply deadline for the admin-plane scrape modes.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Client id used by `stat`/`watch` so they never collide with the demo
/// client (id 0) on the master's peer table.
const ADMIN_CLIENT_ID: u32 = 99;

/// Scrape the master and, via master relay, each slave. Daemons that do
/// not answer (e.g. a slave that never connected) are reported on
/// stderr and skipped rather than failing the whole scrape.
fn collect_scrapes<T: Transport>(conn: &T, slaves: u32) -> Vec<Scrape> {
    let mut out = Vec::new();
    match scrape_stats(conn, Peer::Master, StatsScope::Local, SCRAPE_TIMEOUT) {
        Ok(snapshot) => out.push(Scrape {
            label: "master".into(),
            snapshot,
        }),
        Err(e) => eprintln!("scrape: master did not answer: {e}"),
    }
    for n in 0..slaves {
        match scrape_stats(conn, Peer::Master, StatsScope::Node(n), SCRAPE_TIMEOUT) {
            Ok(snapshot) => out.push(Scrape {
                label: format!("slave-{n}"),
                snapshot,
            }),
            Err(e) => eprintln!("scrape: slave {n} did not answer: {e}"),
        }
    }
    out
}

fn run_stat_mode(addr: &str, slaves: u32, json: bool, flight: bool) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Client, ADMIN_CLIENT_ID, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    let scrapes = collect_scrapes(&conn, slaves);
    if scrapes.is_empty() {
        conn.shutdown();
        return Err("no daemon answered the scrape".into());
    }
    if json {
        println!("{}", render_json(&scrapes));
    } else {
        print!("{}", render_prometheus(&scrapes));
    }
    if flight {
        match scrape_flight(&conn, Peer::Master, StatsScope::LocalFlight, SCRAPE_TIMEOUT) {
            Ok(record) => print!("{}", render_flight(&record)),
            Err(e) => {
                conn.shutdown();
                return Err(format!("flight dump failed: {e}"));
            }
        }
    }
    conn.shutdown();
    Ok(())
}

fn run_watch_mode(addr: &str, slaves: u32, interval_ms: u64, count: u64) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Client, ADMIN_CLIENT_ID, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    let mut printed = 0u64;
    loop {
        let scrapes = collect_scrapes(&conn, slaves);
        if scrapes.is_empty() {
            conn.shutdown();
            return Err("no daemon answered the scrape".into());
        }
        print!("{}", render_watch_table(&scrapes));
        println!();
        printed += 1;
        if count != 0 && printed >= count {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    conn.shutdown();
    Ok(())
}
