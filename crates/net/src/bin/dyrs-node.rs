//! `dyrs-node` — run a DYRS master or slave daemon over real TCP.
//!
//! ```text
//! dyrs-node master --listen 127.0.0.1:7430 --slaves 3 --duration-secs 10 [--restore PATH]
//! dyrs-node slave  --connect 127.0.0.1:7430 --node 0
//! dyrs-node client --connect 127.0.0.1:7430 --blocks 8
//! dyrs-node stat   --connect 127.0.0.1:7430 --slaves 3 [--json] [--flight]
//! dyrs-node watch  --connect 127.0.0.1:7430 --slaves 3 --interval-ms 500
//! dyrs-node drain  --connect 127.0.0.1:7430 --node 0 [--wait]
//! dyrs-node join   --connect 127.0.0.1:7430 --node 0
//! dyrs-node checkpoint --connect 127.0.0.1:7430 [--out PATH]
//! ```
//!
//! The master waits for `--slaves` handshakes, serves the protocol for
//! `--duration-secs` of real time, then runs the orderly shutdown
//! barrier and prints the zero-loss verdict. The client submits one
//! demo job (`--blocks` blocks spread over the slaves), reads each
//! block back, then asks for the job's buffers to be evicted.
//!
//! `stat` is the admin plane: a one-shot scrape of the live master (and,
//! via master relay, each slave) rendered as a Prometheus-style text
//! exposition or `--json`; `--flight` additionally dumps the master's
//! flight recorder. `watch` repeats the scrape every `--interval-ms`
//! and renders a backlog/health table until `--count` refreshes (0 =
//! forever) have been printed; transient scrape failures are retried
//! with bounded backoff rather than killing the watch.
//!
//! `drain`/`join`/`checkpoint` ride the same admin plane: `drain` asks
//! the master to empty a node's bind queues (with `--wait`, polls until
//! the node is safely removed), `join` (re-)admits a node under the
//! warm-up ramp, and `checkpoint` saves the master's soft state to a
//! file that a restarted master reloads via `--restore`.

use dyrs::{BlockRequest, JobHint};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_net::node::{run_master, run_slave, MasterConfig, MasterProgress, SlaveConfig};
use dyrs_net::proto::{Message, Role, StatsScope};
use dyrs_net::stats::{
    render_flight, render_json, render_prometheus, render_watch_table, scrape_flight, scrape_stats,
    Scrape,
};
use dyrs_net::tcp::{TcpAcceptor, TcpConfig, TcpConnector};
use dyrs_net::transport::{Peer, Transport};
use dyrs_net::PROTOCOL_VERSION;
use simkit::SimTime;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage:
  dyrs-node master --listen ADDR [--slaves N] [--duration-secs S] [--restore PATH]
  dyrs-node slave  --connect ADDR --node N
  dyrs-node client --connect ADDR [--blocks N] [--slaves N]
  dyrs-node stat   --connect ADDR [--slaves N] [--json] [--flight]
  dyrs-node watch  --connect ADDR [--slaves N] [--interval-ms M] [--count K]
  dyrs-node drain  --connect ADDR --node N [--wait] [--timeout-secs S]
  dyrs-node join   --connect ADDR --node N
  dyrs-node checkpoint --connect ADDR [--out PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        Some(
            m
            @ ("master" | "slave" | "client" | "stat" | "watch" | "drain" | "join" | "checkpoint"),
        ) => m.to_owned(),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parsed = match mode.as_str() {
        "master" => {
            let listen = match flag("--listen") {
                Some(a) => a,
                None => {
                    eprintln!("master mode requires --listen ADDR\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let slaves: usize = flag("--slaves").and_then(|s| s.parse().ok()).unwrap_or(3);
            let secs: u64 = flag("--duration-secs")
                .and_then(|s| s.parse().ok())
                .unwrap_or(10);
            run_master_mode(&listen, slaves, secs, flag("--restore"))
        }
        "slave" => {
            let connect = match (flag("--connect"), flag("--node")) {
                (Some(a), Some(n)) => n.parse::<u32>().ok().map(|n| (a, n)),
                _ => None,
            };
            match connect {
                Some((addr, node)) => run_slave_mode(&addr, node),
                None => {
                    eprintln!("slave mode requires --connect ADDR --node N\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "stat" | "watch" => {
            let addr = match flag("--connect") {
                Some(a) => a,
                None => {
                    eprintln!("{mode} mode requires --connect ADDR\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let slaves: u32 = flag("--slaves").and_then(|s| s.parse().ok()).unwrap_or(3);
            if mode == "stat" {
                let json = args.iter().any(|a| a == "--json");
                let flight = args.iter().any(|a| a == "--flight");
                run_stat_mode(&addr, slaves, json, flight)
            } else {
                let interval: u64 = flag("--interval-ms")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1000);
                let count: u64 = flag("--count").and_then(|s| s.parse().ok()).unwrap_or(0);
                run_watch_mode(&addr, slaves, interval, count)
            }
        }
        "drain" | "join" => {
            let connect = match (flag("--connect"), flag("--node")) {
                (Some(a), Some(n)) => n.parse::<u32>().ok().map(|n| (a, n)),
                _ => None,
            };
            match connect {
                Some((addr, node)) if mode == "drain" => {
                    let wait = args.iter().any(|a| a == "--wait");
                    let timeout: u64 = flag("--timeout-secs")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(30);
                    run_drain_mode(&addr, node, wait, timeout)
                }
                Some((addr, node)) => run_join_mode(&addr, node),
                None => {
                    eprintln!("{mode} mode requires --connect ADDR --node N\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "checkpoint" => {
            let addr = match flag("--connect") {
                Some(a) => a,
                None => {
                    eprintln!("checkpoint mode requires --connect ADDR\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let out = flag("--out").unwrap_or_else(|| "master.ckpt".to_owned());
            run_checkpoint_mode(&addr, &out)
        }
        _ => {
            let addr = match flag("--connect") {
                Some(a) => a,
                None => {
                    eprintln!("client mode requires --connect ADDR\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let blocks: u64 = flag("--blocks").and_then(|s| s.parse().ok()).unwrap_or(8);
            let slaves: u32 = flag("--slaves").and_then(|s| s.parse().ok()).unwrap_or(3);
            run_client_mode(&addr, blocks, slaves)
        }
    };
    match parsed {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dyrs-node {mode}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_master_mode(
    listen: &str,
    slaves: usize,
    secs: u64,
    restore: Option<String>,
) -> Result<(), String> {
    let restore = match restore {
        Some(path) => Some(
            dyrs_net::load_checkpoint(std::path::Path::new(&path))
                .map_err(|e| format!("restore {path}: {e}"))?,
        ),
        None => None,
    };
    let acceptor =
        TcpAcceptor::bind(listen, TcpConfig::default()).map_err(|e| format!("bind: {e}"))?;
    println!(
        "master: protocol v{PROTOCOL_VERSION}, listening on {}, waiting for {slaves} slave(s)",
        acceptor.local_addr()
    );
    if !acceptor.wait_for_peers(slaves, Duration::from_secs(30)) {
        acceptor.shutdown();
        return Err(format!(
            "only {} peer(s) connected",
            acceptor.connected_peers().len()
        ));
    }
    println!("master: cluster up, serving for {secs}s");

    let stop = Arc::new(AtomicBool::new(false));
    let timer_stop = Arc::clone(&stop);
    let timer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(secs));
        timer_stop.store(true, Ordering::SeqCst);
    });

    let progress = MasterProgress::default();
    let mut cfg = MasterConfig::new(slaves);
    if restore.is_some() {
        println!("master: restoring from checkpoint");
        cfg.restore = restore;
    }
    let report = run_master(&acceptor, &cfg, &stop, &progress);
    let _ = timer.join();
    acceptor.shutdown();

    println!(
        "master: {} heartbeats, {} migrations complete, {} evictions",
        progress.heartbeats.load(Ordering::SeqCst),
        progress.completed.load(Ordering::SeqCst),
        progress.evicted.load(Ordering::SeqCst),
    );
    for (node, advertised) in &report.byes {
        println!(
            "master: slave {node} advertised {advertised} frame(s), received {}",
            report.received.get(node).copied().unwrap_or(0)
        );
    }
    if !report.errors.is_empty() {
        return Err(format!("protocol errors: {:?}", report.errors));
    }
    if report.zero_loss() {
        println!("master: zero lost messages");
        Ok(())
    } else {
        Err("message accounting mismatch (lost frames?)".into())
    }
}

fn run_slave_mode(addr: &str, node: u32) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Slave, node, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    println!("slave {node}: connected, protocol v{}", conn.version());
    let stop = AtomicBool::new(false);
    let report = run_slave(&conn, &SlaveConfig::new(NodeId(node)), &stop);
    conn.shutdown();
    println!(
        "slave {node}: {} completed, {} evicted, sent {} / received {}",
        report.completed, report.evicted, report.sent, report.received
    );
    if !report.errors.is_empty() {
        return Err(format!("protocol errors: {:?}", report.errors));
    }
    if report.zero_loss() {
        println!("slave {node}: zero lost messages");
        Ok(())
    } else {
        Err("master's advertised frame count did not match".into())
    }
}

fn run_client_mode(addr: &str, blocks: u64, slaves: u32) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Client, 0, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    println!("client: connected, protocol v{}", conn.version());
    let job = JobId(1);
    let block_bytes: u64 = 64 << 20;
    let requests: Vec<BlockRequest> = (0..blocks)
        .map(|i| BlockRequest {
            block: BlockId(i),
            bytes: block_bytes,
            replicas: (0..slaves.min(3))
                .map(|r| NodeId((i as u32 + r) % slaves))
                .collect(),
        })
        .collect();
    conn.send(
        Peer::Master,
        &Message::RequestMigration {
            job,
            blocks: requests,
            eviction: dyrs::EvictionMode::Explicit,
            hint: JobHint {
                expected_launch: SimTime::from_micros(0),
                total_bytes: blocks * block_bytes,
            },
        },
    )
    .map_err(|e| format!("send: {e}"))?;
    println!("client: submitted job 1 ({blocks} block(s) of {block_bytes} bytes)");

    // Give migrations a moment, then simulate the job reading its input
    // and finishing (which releases the buffers).
    std::thread::sleep(Duration::from_secs(2));
    for i in 0..blocks {
        conn.send(
            Peer::Master,
            &Message::ReadNotify {
                block: BlockId(i),
                job,
            },
        )
        .map_err(|e| format!("send: {e}"))?;
    }
    conn.send(Peer::Master, &Message::EvictJobRequest { job })
        .map_err(|e| format!("send: {e}"))?;
    // Let the writer thread drain before shutting down.
    std::thread::sleep(Duration::from_millis(200));
    conn.shutdown();
    println!("client: job read + eviction requested, done");
    Ok(())
}

/// Per-scope reply deadline for the admin-plane scrape modes.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Client id used by `stat`/`watch` so they never collide with the demo
/// client (id 0) on the master's peer table.
const ADMIN_CLIENT_ID: u32 = 99;

/// Scrape the master and, via master relay, each slave. Daemons that do
/// not answer (e.g. a slave that never connected) are reported on
/// stderr and skipped rather than failing the whole scrape.
fn collect_scrapes<T: Transport>(conn: &T, slaves: u32) -> Vec<Scrape> {
    let mut out = Vec::new();
    match scrape_stats(conn, Peer::Master, StatsScope::Local, SCRAPE_TIMEOUT) {
        Ok(snapshot) => out.push(Scrape {
            label: "master".into(),
            snapshot,
        }),
        Err(e) => eprintln!("scrape: master did not answer: {e}"),
    }
    for n in 0..slaves {
        match scrape_stats(conn, Peer::Master, StatsScope::Node(n), SCRAPE_TIMEOUT) {
            Ok(snapshot) => out.push(Scrape {
                label: format!("slave-{n}"),
                snapshot,
            }),
            Err(e) => eprintln!("scrape: slave {n} did not answer: {e}"),
        }
    }
    out
}

fn run_stat_mode(addr: &str, slaves: u32, json: bool, flight: bool) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Client, ADMIN_CLIENT_ID, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    let scrapes = collect_scrapes(&conn, slaves);
    if scrapes.is_empty() {
        conn.shutdown();
        return Err("no daemon answered the scrape".into());
    }
    if json {
        println!("{}", render_json(&scrapes));
    } else {
        print!("{}", render_prometheus(&scrapes));
    }
    if flight {
        match scrape_flight(&conn, Peer::Master, StatsScope::LocalFlight, SCRAPE_TIMEOUT) {
            Ok(record) => print!("{}", render_flight(&record)),
            Err(e) => {
                conn.shutdown();
                return Err(format!("flight dump failed: {e}"));
            }
        }
    }
    conn.shutdown();
    Ok(())
}

/// Consecutive empty scrapes after which `watch` gives up for good.
const WATCH_MAX_FAILURES: u32 = 5;

fn run_watch_mode(addr: &str, slaves: u32, interval_ms: u64, count: u64) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Client, ADMIN_CLIENT_ID, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    let mut printed = 0u64;
    let mut failures = 0u32;
    loop {
        let scrapes = collect_scrapes(&conn, slaves);
        if scrapes.is_empty() {
            // Transient: the master may be restarting or momentarily
            // saturated. Retry with bounded exponential backoff instead
            // of dying on the first decode/connect hiccup.
            failures += 1;
            if failures >= WATCH_MAX_FAILURES {
                conn.shutdown();
                return Err(format!("no daemon answered {failures} consecutive scrapes"));
            }
            let backoff =
                Duration::from_millis(interval_ms.max(100).saturating_mul(1 << failures.min(4)));
            eprintln!(
                "watch: scrape failed ({failures}/{WATCH_MAX_FAILURES}), retrying in {:?}",
                backoff
            );
            std::thread::sleep(backoff);
            continue;
        }
        failures = 0;
        print!("{}", render_watch_table(&scrapes));
        println!();
        printed += 1;
        if count != 0 && printed >= count {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    conn.shutdown();
    Ok(())
}

/// Send an admin request and wait for the matching reply kind, skipping
/// unrelated frames (bounded, like the scrape helpers).
fn admin_roundtrip<T: Transport>(
    conn: &T,
    msg: &Message,
    deadline: Duration,
    mut matches: impl FnMut(&Message) -> bool,
) -> Result<Message, String> {
    conn.send(Peer::Master, msg)
        .map_err(|e| format!("send: {e}"))?;
    let start = std::time::Instant::now();
    let mut skipped = 0u32;
    while start.elapsed() < deadline {
        match conn.recv_timeout(SCRAPE_TIMEOUT) {
            Ok((_, reply)) if matches(&reply) => return Ok(reply),
            Ok(_) => {
                skipped += 1;
                if skipped > 256 {
                    return Err("too many unrelated frames while waiting for reply".into());
                }
            }
            Err(e) => return Err(format!("recv: {e}")),
        }
    }
    Err("timed out waiting for reply".into())
}

fn membership_name(code: u8) -> &'static str {
    dyrs::master::Membership::from_code(code).map_or("unknown", dyrs::master::Membership::name)
}

fn run_drain_mode(addr: &str, node: u32, wait: bool, timeout_secs: u64) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Client, ADMIN_CLIENT_ID, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    let deadline = Duration::from_secs(timeout_secs);
    let start = std::time::Instant::now();
    loop {
        let reply = admin_roundtrip(
            &conn,
            &Message::DrainNode { node },
            deadline,
            |m| matches!(m, Message::DecommissionAck { node: n, .. } if *n == node),
        )?;
        let Message::DecommissionAck { membership, .. } = reply else {
            unreachable!("matcher admitted only DecommissionAck");
        };
        println!("drain: node {node} is {}", membership_name(membership));
        if !wait || membership_name(membership) == "removed" {
            conn.shutdown();
            return Ok(());
        }
        if start.elapsed() >= deadline {
            conn.shutdown();
            return Err(format!(
                "node {node} still {} after {timeout_secs}s",
                membership_name(membership)
            ));
        }
        // Poll: each DrainNode re-checks drain completion at the master.
        std::thread::sleep(Duration::from_millis(500));
    }
}

fn run_join_mode(addr: &str, node: u32) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Client, ADMIN_CLIENT_ID, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    let reply = admin_roundtrip(
        &conn,
        &Message::JoinRequest { node },
        SCRAPE_TIMEOUT,
        |m| matches!(m, Message::DecommissionAck { node: n, .. } if *n == node),
    )?;
    conn.shutdown();
    let Message::DecommissionAck { membership, .. } = reply else {
        unreachable!("matcher admitted only DecommissionAck");
    };
    println!("join: node {node} is {}", membership_name(membership));
    Ok(())
}

fn run_checkpoint_mode(addr: &str, out: &str) -> Result<(), String> {
    let conn = TcpConnector::connect(addr, Role::Client, ADMIN_CLIENT_ID, TcpConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    let reply = admin_roundtrip(&conn, &Message::CheckpointRequest, SCRAPE_TIMEOUT, |m| {
        matches!(m, Message::Checkpoint { .. })
    })?;
    conn.shutdown();
    let Message::Checkpoint { data } = reply else {
        unreachable!("matcher admitted only Checkpoint");
    };
    // Decode before writing so a truncated reply never lands on disk.
    let cp =
        dyrs_net::checkpoint_from_bytes(&data).map_err(|e| format!("checkpoint decode: {e:?}"))?;
    dyrs_net::save_checkpoint(std::path::Path::new(out), &cp)
        .map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "checkpoint: {} bytes ({} pending, {} bound) -> {out}",
        data.len(),
        cp.pending.len(),
        cp.bound.len()
    );
    Ok(())
}
