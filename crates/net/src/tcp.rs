//! Real-socket transport: `std::net::TcpStream`, one thread per
//! connection direction.
//!
//! * **Handshake / version negotiation** — the connector opens with
//!   [`Message::Hello`] carrying its role, id and accepted version
//!   range; the acceptor answers [`Message::Welcome`] with the highest
//!   mutually-supported version, or [`Message::Reject`] and closes.
//! * **Timeouts** — every socket gets read and write timeouts, so a
//!   wedged peer can never hang a daemon thread forever; reader threads
//!   treat a timeout as "check the shutdown flag, then keep listening".
//! * **Backpressure** — each peer has a *bounded* outbound queue drained
//!   by a dedicated writer thread. A producer that outruns the socket
//!   blocks in `send` instead of growing an unbounded buffer.
//!
//! This module is the only place in the workspace allowed to touch
//! `std::net` or spawn threads — the `net-fence` lint rule
//! (`dyrs-verify -- lint`) keeps that nondeterminism fenced in here.

use crate::frame::{self, FrameError};
use crate::proto::{Message, Role, PROTOCOL_VERSION};
use crate::transport::{Peer, Transport, TransportError};
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Socket and queue tuning for a TCP endpoint.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Per-read socket timeout (reader threads poll the shutdown flag at
    /// this cadence).
    pub read_timeout: Duration,
    /// Per-write socket timeout (a peer that stops draining fails the
    /// write instead of wedging the writer thread).
    pub write_timeout: Duration,
    /// Outbound queue depth per peer; `send` blocks when full.
    pub outbound_queue: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
            outbound_queue: 256,
        }
    }
}

/// Incoming item: decoded message, or the protocol error that poisoned
/// the connection.
type Incoming = (Peer, Result<Message, FrameError>);

struct Shared {
    incoming_tx: Sender<Incoming>,
    outbound: Mutex<BTreeMap<Peer, Sender<Message>>>,
    /// Frames enqueued per peer — the writer thread drains the queue to
    /// zero before closing, so after an orderly shutdown this equals
    /// frames actually written.
    sent_per_peer: Mutex<BTreeMap<Peer, u64>>,
    received_per_peer: Mutex<BTreeMap<Peer, u64>>,
    sent: AtomicU64,
    received: AtomicU64,
    shutdown: AtomicBool,
    cfg: TcpConfig,
}

impl Shared {
    fn new(cfg: TcpConfig, incoming_tx: Sender<Incoming>) -> Self {
        Shared {
            incoming_tx,
            outbound: Mutex::new(BTreeMap::new()),
            sent_per_peer: Mutex::new(BTreeMap::new()),
            received_per_peer: Mutex::new(BTreeMap::new()),
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            cfg,
        }
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Register `peer`'s outbound queue and spawn its writer thread.
    fn attach_writer(
        self: &Arc<Self>,
        peer: Peer,
        stream: TcpStream,
        version: u16,
    ) -> thread::JoinHandle<()> {
        let (tx, rx) = channel::bounded::<Message>(self.cfg.outbound_queue);
        Self::lock(&self.outbound).insert(peer, tx);
        let shared = Arc::clone(self);
        thread::spawn(move || shared.writer_loop(peer, stream, version, rx))
    }

    fn writer_loop(&self, peer: Peer, mut stream: TcpStream, version: u16, rx: Receiver<Message>) {
        loop {
            // Wake regularly so shutdown is noticed even when idle; the
            // channel disconnects (and is empty) once the transport drops
            // the peer's Sender, which is the drain-complete signal.
            match rx.recv_timeout(self.cfg.read_timeout) {
                Ok(msg) => {
                    if frame::write_frame(&mut stream, version, &msg).is_err() {
                        // A dead socket: abandon the queue. The loss is
                        // visible to the shutdown accounting (sent count
                        // stops matching), never silent.
                        break;
                    }
                    self.sent.fetch_add(1, Ordering::SeqCst);
                    *Self::lock(&self.sent_per_peer).entry(peer).or_insert(0) += 1;
                }
                Err(channel::RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                        break;
                    }
                }
                Err(channel::RecvTimeoutError::Disconnected) => break,
            }
        }
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }

    fn reader_loop(&self, peer: Peer, mut stream: TcpStream, version: u16) {
        loop {
            match frame::read_frame(&mut stream, version..=version) {
                Ok(Ok((_, msg))) => {
                    self.received.fetch_add(1, Ordering::SeqCst);
                    *Self::lock(&self.received_per_peer).entry(peer).or_insert(0) += 1;
                    if self.incoming_tx.send((peer, Ok(msg))).is_err() {
                        break;
                    }
                }
                Ok(Err(frame_err)) => {
                    // Protocol violation: surface it to the consumer and
                    // poison the connection.
                    let _ = self.incoming_tx.send((peer, Err(frame_err)));
                    break;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(_) => break, // closed or reset
            }
        }
        Self::lock(&self.outbound).remove(&peer);
    }
}

/// Common `Transport` mechanics shared by both endpoint kinds.
struct TcpCore {
    shared: Arc<Shared>,
    incoming_rx: Receiver<Incoming>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl TcpCore {
    fn new(cfg: TcpConfig) -> (Self, Sender<Incoming>) {
        let (incoming_tx, incoming_rx) = channel::unbounded();
        let shared = Arc::new(Shared::new(cfg, incoming_tx.clone()));
        (
            TcpCore {
                shared,
                incoming_rx,
                threads: Mutex::new(Vec::new()),
            },
            incoming_tx,
        )
    }

    fn track(&self, handle: thread::JoinHandle<()>) {
        Shared::lock(&self.threads).push(handle);
    }

    fn send(&self, to: Peer, msg: &Message) -> Result<(), TransportError> {
        let tx = Shared::lock(&self.shared.outbound)
            .get(&to)
            .cloned()
            .ok_or(TransportError::Disconnected(to))?;
        tx.send(msg.clone())
            .map_err(|_| TransportError::Disconnected(to))
    }

    fn map_incoming(item: Incoming) -> Result<(Peer, Message), TransportError> {
        match item {
            (peer, Ok(msg)) => Ok((peer, msg)),
            (_, Err(frame_err)) => Err(TransportError::Protocol(frame_err)),
        }
    }

    fn try_recv(&self) -> Result<Option<(Peer, Message)>, TransportError> {
        match self.incoming_rx.try_recv() {
            Ok(item) => Self::map_incoming(item).map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Io("closed".into())),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(Peer, Message), TransportError> {
        match self.incoming_rx.recv_timeout(timeout) {
            Ok(item) => Self::map_incoming(item),
            Err(channel::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => {
                Err(TransportError::Io("closed".into()))
            }
        }
    }

    /// Begin orderly shutdown: drop outbound queues (writers drain and
    /// exit), flag readers, then join every connection thread.
    fn shutdown(&self) {
        Shared::lock(&self.shared.outbound).clear();
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let handles: Vec<_> = Shared::lock(&self.threads).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn configure(stream: &TcpStream, cfg: &TcpConfig) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Acceptor (master side)
// ---------------------------------------------------------------------------

/// The master's endpoint: accepts slave and client connections.
pub struct TcpAcceptor {
    core: TcpCore,
    local_addr: SocketAddr,
}

impl TcpAcceptor {
    /// Bind `addr` (use port 0 for an OS-assigned port) and start
    /// accepting connections in a background thread.
    pub fn bind(addr: impl ToSocketAddrs, cfg: TcpConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (core, _incoming_tx) = TcpCore::new(cfg);
        let shared = Arc::clone(&core.shared);
        let accept_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept_threads_in = Arc::clone(&accept_threads);
        let acceptor = thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    let handle = thread::spawn(move || accept_one(shared, stream));
                    Shared::lock(&accept_threads_in).push(handle);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        // Join the per-connection handshake/reader threads
                        // spawned so far before exiting.
                        let handles: Vec<_> = Shared::lock(&accept_threads_in).drain(..).collect();
                        for h in handles {
                            let _ = h.join();
                        }
                        break;
                    }
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        });
        core.track(acceptor);
        Ok(TcpAcceptor { core, local_addr })
    }

    /// The bound address (the assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Peers that completed a handshake and are still connected.
    pub fn connected_peers(&self) -> Vec<Peer> {
        Shared::lock(&self.core.shared.outbound)
            .keys()
            .copied()
            .collect()
    }

    /// Block until at least `n` peers are connected or `timeout` passes.
    pub fn wait_for_peers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.connected_peers().len() < n {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Frames written to `peer`, total (orderly-shutdown accounting).
    pub fn sent_to(&self, peer: Peer) -> u64 {
        Shared::lock(&self.core.shared.sent_per_peer)
            .get(&peer)
            .copied()
            .unwrap_or(0)
    }

    /// Frames received from `peer`, total.
    pub fn received_from(&self, peer: Peer) -> u64 {
        Shared::lock(&self.core.shared.received_per_peer)
            .get(&peer)
            .copied()
            .unwrap_or(0)
    }

    /// Orderly shutdown: drain writers, stop readers, join threads.
    pub fn shutdown(&self) {
        self.core.shutdown();
    }
}

/// Handshake one inbound connection, then run its reader loop inline.
fn accept_one(shared: Arc<Shared>, stream: TcpStream) {
    if configure(&stream, &shared.cfg).is_err() {
        return;
    }
    let mut hs = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // The Hello may legitimately take a few read-timeout windows to
    // arrive; poll a bounded number of them.
    let hello = {
        let mut result = None;
        for _ in 0..100 {
            match frame::read_frame(&mut hs, frame::supported_versions()) {
                Ok(parsed) => {
                    result = Some(parsed);
                    break;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        match result {
            Some(r) => r,
            None => return,
        }
    };
    let (peer, version) = match hello {
        Ok((
            _,
            Message::Hello {
                role,
                node,
                min_version,
                max_version,
            },
        )) => {
            if min_version > PROTOCOL_VERSION || max_version < PROTOCOL_VERSION {
                let _ = frame::write_frame(
                    &mut hs,
                    PROTOCOL_VERSION,
                    &Message::Reject {
                        reason: format!(
                            "no common protocol version: peer speaks {min_version}..={max_version}, \
                             this build speaks {PROTOCOL_VERSION}"
                        ),
                    },
                );
                return;
            }
            let peer = match role {
                Role::Slave => Peer::Slave(node),
                Role::Client => Peer::Client(node),
            };
            (peer, PROTOCOL_VERSION)
        }
        _ => {
            let _ = frame::write_frame(
                &mut hs,
                PROTOCOL_VERSION,
                &Message::Reject {
                    reason: "handshake must open with Hello".into(),
                },
            );
            return;
        }
    };
    if frame::write_frame(&mut hs, version, &Message::Welcome { version }).is_err() {
        return;
    }
    let writer = shared.attach_writer(peer, hs, version);
    shared.reader_loop(peer, stream, version);
    let _ = writer.join();
}

impl Transport for TcpAcceptor {
    fn send(&self, to: Peer, msg: &Message) -> Result<(), TransportError> {
        self.core.send(to, msg)
    }
    fn try_recv(&self) -> Result<Option<(Peer, Message)>, TransportError> {
        self.core.try_recv()
    }
    fn recv_timeout(&self, timeout: Duration) -> Result<(Peer, Message), TransportError> {
        self.core.recv_timeout(timeout)
    }
    fn frames_sent(&self) -> u64 {
        self.core.shared.sent.load(Ordering::SeqCst)
    }
    fn frames_received(&self) -> u64 {
        self.core.shared.received.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Connector (slave / client side)
// ---------------------------------------------------------------------------

/// Why a connect attempt failed.
#[derive(Debug)]
pub enum ConnectError {
    /// Socket-level failure.
    Io(io::Error),
    /// The acceptor sent [`Message::Reject`].
    Rejected(String),
    /// The acceptor answered with something other than `Welcome`.
    BadHandshake,
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::Io(e) => write!(f, "connect failed: {e}"),
            ConnectError::Rejected(r) => write!(f, "handshake rejected: {r}"),
            ConnectError::BadHandshake => write!(f, "malformed handshake response"),
        }
    }
}

impl std::error::Error for ConnectError {}

impl From<io::Error> for ConnectError {
    fn from(e: io::Error) -> Self {
        ConnectError::Io(e)
    }
}

/// A slave's or client's connection to the master.
pub struct TcpConnector {
    core: TcpCore,
    /// Version agreed during the handshake.
    version: u16,
}

impl TcpConnector {
    /// Connect to the master at `addr` as `role`/`node` and complete the
    /// handshake.
    pub fn connect(
        addr: impl ToSocketAddrs,
        role: Role,
        node: u32,
        cfg: TcpConfig,
    ) -> Result<Self, ConnectError> {
        let stream = TcpStream::connect(addr)?;
        configure(&stream, &cfg)?;
        let mut hs = stream.try_clone()?;
        frame::write_frame(
            &mut hs,
            PROTOCOL_VERSION,
            &Message::Hello {
                role,
                node,
                min_version: PROTOCOL_VERSION,
                max_version: PROTOCOL_VERSION,
            },
        )?;
        // Bounded wait for the Welcome: ~100 read-timeout windows, so a
        // silent acceptor fails the connect instead of hanging it.
        let mut version = None;
        for _ in 0..100 {
            match frame::read_frame(&mut hs, frame::supported_versions()) {
                Ok(Ok((_, Message::Welcome { version: v }))) => {
                    version = Some(v);
                    break;
                }
                Ok(Ok((_, Message::Reject { reason }))) => {
                    return Err(ConnectError::Rejected(reason))
                }
                Ok(_) => return Err(ConnectError::BadHandshake),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(ConnectError::Io(e)),
            }
        }
        let version = version.ok_or(ConnectError::BadHandshake)?;
        let (core, _incoming_tx) = TcpCore::new(cfg);
        let writer = core.shared.attach_writer(Peer::Master, hs, version);
        core.track(writer);
        let shared = Arc::clone(&core.shared);
        let reader = thread::spawn(move || shared.reader_loop(Peer::Master, stream, version));
        core.track(reader);
        Ok(TcpConnector { core, version })
    }

    /// The protocol version agreed with the master.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Frames written to the master, total.
    pub fn sent_to_master(&self) -> u64 {
        Shared::lock(&self.core.shared.sent_per_peer)
            .get(&Peer::Master)
            .copied()
            .unwrap_or(0)
    }

    /// Frames received from the master, total.
    pub fn received_from_master(&self) -> u64 {
        Shared::lock(&self.core.shared.received_per_peer)
            .get(&Peer::Master)
            .copied()
            .unwrap_or(0)
    }

    /// Orderly shutdown: drain the writer, stop the reader, join.
    pub fn shutdown(&self) {
        self.core.shutdown();
    }
}

impl Transport for TcpConnector {
    fn send(&self, to: Peer, msg: &Message) -> Result<(), TransportError> {
        if to != Peer::Master {
            return Err(TransportError::Disconnected(to));
        }
        self.core.send(to, msg)
    }
    fn try_recv(&self) -> Result<Option<(Peer, Message)>, TransportError> {
        self.core.try_recv()
    }
    fn recv_timeout(&self, timeout: Duration) -> Result<(Peer, Message), TransportError> {
        self.core.recv_timeout(timeout)
    }
    fn frames_sent(&self) -> u64 {
        self.core.shared.sent.load(Ordering::SeqCst)
    }
    fn frames_received(&self) -> u64 {
        self.core.shared.received.load(Ordering::SeqCst)
    }
}
