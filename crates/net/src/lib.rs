//! # dyrs-net — wire protocol and pluggable transports for DYRS
//!
//! Everything the master and slaves say to each other, extracted from
//! the in-process call graph into a versioned, framed wire protocol:
//!
//! * [`proto::Message`] — the protocol: heartbeats, delayed-binding
//!   pulls (`Bind`), revocation, eviction, migration-complete reports,
//!   client migration requests and read notifications, plus the
//!   handshake (`Hello`/`Welcome`/`Reject`) and the shutdown barrier
//!   (`Shutdown`/`Bye`).
//! * [`wire`] — a hand-rolled, byte-stable binary codec (big-endian,
//!   fixed-width, append-only enum tags). The vendored `serde` is a
//!   no-op stub, so serialization is explicit rather than derived; the
//!   upside is the encoding is trivially auditable and pinned by tests.
//! * [`frame`] — `DYRS`-magic, version-tagged, length-prefixed framing
//!   with hard caps, for byte streams and for datagram-style buffers.
//! * [`transport::Transport`] — how an endpoint sends/receives framed
//!   messages, with two implementations:
//!   [`loopback::LoopbackHub`] (deterministic in-memory channels the
//!   simulator can drive) and [`tcp`] (real `std::net` sockets,
//!   thread-per-connection, handshake with version negotiation,
//!   timeouts and bounded outbound queues).
//! * [`node`] — the `dyrs-node` daemon loops: the *same*
//!   [`Master`](dyrs::Master)/[`Slave`](dyrs::Slave) state machines the
//!   simulator uses, driven off a transport on a virtual tick clock.
//!
//! Both transports move encoded frames end to end — a message always
//! pays encode → frame → decode, so the loopback path exercises the
//! exact bytes TCP puts on the wire. That is what makes the
//! in-process ↔ loopback trace-digest equivalence test
//! (`tests/transport.rs` at the workspace root) a statement about the
//! codec, not just about the state machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod frame;
pub mod loopback;
pub mod node;
pub mod proto;
pub mod stats;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use checkpoint::{
    checkpoint_from_bytes, checkpoint_to_bytes, load_checkpoint, save_checkpoint,
};
pub use frame::{FrameError, MAX_FRAME};
pub use loopback::{LoopbackEndpoint, LoopbackHub};
pub use node::{
    run_master, run_slave, MasterConfig, MasterProgress, MasterReport, SlaveConfig, SlaveReport,
};
pub use proto::{Message, Role, StatsScope, PROTOCOL_VERSION};
pub use stats::{scrape_flight, scrape_stats, Scrape};
pub use tcp::{TcpAcceptor, TcpConfig, TcpConnector};
pub use transport::{Peer, Transport, TransportError};
pub use wire::{DecodeError, Wire};
