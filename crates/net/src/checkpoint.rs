//! Wire encoding of the master checkpoint (`dyrs::master::MasterCheckpoint`)
//! plus file save/load helpers for `dyrs-node master --restore`.
//!
//! The snapshot travels inside [`Message::Checkpoint`](crate::Message) as
//! an opaque byte vector: the *transport* schema (tag 22) never changes
//! when the *snapshot* schema evolves — the snapshot carries its own
//! [`CHECKPOINT_VERSION`](dyrs::CHECKPOINT_VERSION) stamp and
//! [`Master::restore_from`](dyrs::Master::restore_from) refuses
//! mismatches. Everything here uses the same byte-stable `Wire`
//! primitives as the protocol, so two masters in the same state write
//! identical checkpoint bytes.

use crate::wire::{from_bytes, to_bytes, DecodeError, Reader, Wire};
use dyrs::master::{
    BoundCheckpoint, MasterCheckpoint, MasterStats, NodeCheckpoint, PendingCheckpoint,
};
use dyrs::{MigrationOrder, MigrationPolicy, NodeHealth};
use std::io;
use std::path::Path;

impl Wire for MigrationPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MigrationPolicy::Disabled => 0,
            MigrationPolicy::InstantRam => 1,
            MigrationPolicy::Ignem => 2,
            MigrationPolicy::Naive => 3,
            MigrationPolicy::Dyrs => 4,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(MigrationPolicy::Disabled),
            1 => Ok(MigrationPolicy::InstantRam),
            2 => Ok(MigrationPolicy::Ignem),
            3 => Ok(MigrationPolicy::Naive),
            4 => Ok(MigrationPolicy::Dyrs),
            tag => Err(DecodeError::BadTag {
                what: "MigrationPolicy",
                tag,
            }),
        }
    }
}

impl Wire for MigrationOrder {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MigrationOrder::Fifo => 0,
            MigrationOrder::SmallestJobFirst => 1,
            MigrationOrder::EarliestDeadlineFirst => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(MigrationOrder::Fifo),
            1 => Ok(MigrationOrder::SmallestJobFirst),
            2 => Ok(MigrationOrder::EarliestDeadlineFirst),
            tag => Err(DecodeError::BadTag {
                what: "MigrationOrder",
                tag,
            }),
        }
    }
}

impl Wire for NodeHealth {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            NodeHealth::Healthy => 0,
            NodeHealth::Suspect => 1,
            NodeHealth::Quarantined => 2,
            NodeHealth::Probation => 3,
            NodeHealth::Joining => 4,
            NodeHealth::Draining => 5,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(NodeHealth::Healthy),
            1 => Ok(NodeHealth::Suspect),
            2 => Ok(NodeHealth::Quarantined),
            3 => Ok(NodeHealth::Probation),
            4 => Ok(NodeHealth::Joining),
            5 => Ok(NodeHealth::Draining),
            tag => Err(DecodeError::BadTag {
                what: "NodeHealth",
                tag,
            }),
        }
    }
}

impl Wire for MasterStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.requested_blocks.encode(out);
        self.requested_bytes.encode(out);
        self.bound.encode(out);
        self.completed.encode(out);
        self.missed_reads.encode(out);
        self.retarget_passes.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MasterStats {
            requested_blocks: u64::decode(r)?,
            requested_bytes: u64::decode(r)?,
            bound: u64::decode(r)?,
            completed: u64::decode(r)?,
            missed_reads: u64::decode(r)?,
            retarget_passes: u64::decode(r)?,
        })
    }
}

impl Wire for NodeCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.spb.encode(out);
        self.queued_bytes.encode(out);
        self.up.encode(out);
        self.health.encode(out);
        self.strikes.encode(out);
        self.quarantined_until.encode(out);
        self.probation_block.encode(out);
        self.removed.encode(out);
        self.join_completed.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NodeCheckpoint {
            spb: f64::decode(r)?,
            queued_bytes: f64::decode(r)?,
            up: bool::decode(r)?,
            health: NodeHealth::decode(r)?,
            strikes: Vec::decode(r)?,
            quarantined_until: Wire::decode(r)?,
            probation_block: Option::decode(r)?,
            removed: bool::decode(r)?,
            join_completed: u32::decode(r)?,
        })
    }
}

impl Wire for PendingCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.migration.encode(out);
        self.seq.encode(out);
        self.hint.encode(out);
        self.not_before.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PendingCheckpoint {
            migration: Wire::decode(r)?,
            seq: u64::decode(r)?,
            hint: Wire::decode(r)?,
            not_before: Wire::decode(r)?,
        })
    }
}

impl Wire for BoundCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.bound_at.encode(out);
        self.est_secs_at_bind.encode(out);
        self.hint.encode(out);
        self.seq.encode(out);
        self.migration.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BoundCheckpoint {
            node: Wire::decode(r)?,
            bound_at: Wire::decode(r)?,
            est_secs_at_bind: f64::decode(r)?,
            hint: Wire::decode(r)?,
            seq: u64::decode(r)?,
            migration: Wire::decode(r)?,
        })
    }
}

impl Wire for MasterCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.version.encode(out);
        self.policy.encode(out);
        self.order.encode(out);
        self.next_id.encode(out);
        self.clock.encode(out);
        self.stats.encode(out);
        self.nodes.encode(out);
        self.pending.encode(out);
        self.migrated.encode(out);
        self.ignem_bindings.encode(out);
        self.job_blocks.encode(out);
        self.bound.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MasterCheckpoint {
            version: u16::decode(r)?,
            policy: Wire::decode(r)?,
            order: Wire::decode(r)?,
            next_id: u64::decode(r)?,
            clock: Wire::decode(r)?,
            stats: Wire::decode(r)?,
            nodes: Vec::decode(r)?,
            pending: Vec::decode(r)?,
            migrated: Vec::decode(r)?,
            ignem_bindings: Vec::decode(r)?,
            job_blocks: Vec::decode(r)?,
            bound: Vec::decode(r)?,
        })
    }
}

/// Encode a checkpoint to its canonical bytes (the `Checkpoint` payload).
pub fn checkpoint_to_bytes(cp: &MasterCheckpoint) -> Vec<u8> {
    to_bytes(cp)
}

/// Decode a checkpoint from its canonical bytes.
pub fn checkpoint_from_bytes(buf: &[u8]) -> Result<MasterCheckpoint, DecodeError> {
    from_bytes(buf)
}

/// Write a checkpoint to `path` atomically (write-then-rename, so a crash
/// mid-write never leaves a torn snapshot where a restore would find it).
pub fn save_checkpoint(path: &Path, cp: &MasterCheckpoint) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, to_bytes(cp))?;
    std::fs::rename(&tmp, path)
}

/// Read a checkpoint back from `path`.
pub fn load_checkpoint(path: &Path) -> io::Result<MasterCheckpoint> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyrs::master::{BlockRequest, Master};
    use dyrs::types::EvictionMode;
    use dyrs::FailureDetectorConfig;
    use dyrs_cluster::NodeId;
    use dyrs_dfs::{BlockId, JobId};
    use simkit::Rng;

    const MB: f64 = (1u64 << 20) as f64;

    fn populated_master() -> Master {
        let mut m = Master::new(MigrationPolicy::Dyrs, 3, 140.0 * MB, Rng::new(5));
        m.configure_detector(FailureDetectorConfig::default());
        for n in 0..3 {
            m.on_heartbeat(NodeId(n), 1.0 / (140.0 * MB), 0);
        }
        let _ = m.request_migration(
            JobId(1),
            vec![
                BlockRequest {
                    block: BlockId(10),
                    bytes: 256 << 20,
                    replicas: vec![NodeId(0), NodeId(1)],
                },
                BlockRequest {
                    block: BlockId(11),
                    bytes: 128 << 20,
                    replicas: vec![NodeId(1), NodeId(2)],
                },
            ],
            EvictionMode::Implicit,
        );
        m.retarget();
        // Bind at least one so the checkpoint carries an outstanding
        // binding alongside the still-pending remainder.
        let target = m.target_of(BlockId(10)).expect("targeted");
        assert!(!m.on_slave_pull(target, 1).is_empty());
        m
    }

    #[test]
    fn checkpoint_roundtrips_and_is_deterministic() {
        let m = populated_master();
        let cp = m.checkpoint();
        let bytes = checkpoint_to_bytes(&cp);
        let back = checkpoint_from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, cp);
        assert_eq!(checkpoint_to_bytes(&back), bytes, "encode is canonical");
    }

    #[test]
    fn restore_rebuilds_equivalent_state() {
        let m = populated_master();
        let cp = m.checkpoint();
        let mut fresh = Master::new(MigrationPolicy::Dyrs, 3, 140.0 * MB, Rng::new(99));
        fresh.configure_detector(FailureDetectorConfig::default());
        fresh.restore_from(&cp).expect("restore");
        // The restored master's own checkpoint matches byte for byte.
        assert_eq!(
            checkpoint_to_bytes(&fresh.checkpoint()),
            checkpoint_to_bytes(&cp)
        );
    }

    #[test]
    fn restore_refuses_mismatches() {
        let m = populated_master();
        let mut cp = m.checkpoint();
        let mut wrong_nodes = Master::new(MigrationPolicy::Dyrs, 5, 140.0 * MB, Rng::new(1));
        assert!(
            wrong_nodes.restore_from(&cp).is_err(),
            "node-count mismatch"
        );
        let mut wrong_policy = Master::new(MigrationPolicy::Naive, 3, 140.0 * MB, Rng::new(1));
        assert!(wrong_policy.restore_from(&cp).is_err(), "policy mismatch");
        cp.version += 1;
        let mut fresh = Master::new(MigrationPolicy::Dyrs, 3, 140.0 * MB, Rng::new(1));
        assert!(fresh.restore_from(&cp).is_err(), "version mismatch");
    }

    #[test]
    fn save_load_file_roundtrip() {
        let m = populated_master();
        let cp = m.checkpoint();
        let dir = std::env::temp_dir().join("dyrs-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("master.ckpt");
        save_checkpoint(&path, &cp).expect("save");
        let back = load_checkpoint(&path).expect("load");
        assert_eq!(back, cp);
        let _ = std::fs::remove_file(&path);
    }
}
