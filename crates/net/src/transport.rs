//! The [`Transport`] abstraction: how an endpoint sends and receives
//! framed [`Message`]s, independent of whether the bytes cross a
//! crossbeam channel ([`crate::loopback`]) or a TCP socket
//! ([`crate::tcp`]).
//!
//! Both implementations move *encoded frames*, never in-memory values:
//! every message pays the full encode → frame → decode round trip, so a
//! codec bug cannot hide behind an in-process shortcut. That is what
//! makes the loopback ↔ in-process trace-digest equivalence test a real
//! statement about the codec.

use crate::frame::FrameError;
use crate::proto::Message;
use std::fmt;
use std::time::Duration;

/// A protocol endpoint's address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Peer {
    /// The single master.
    Master,
    /// Slave `n` (its NodeId).
    Slave(u32),
    /// Client `n` (an arbitrary connector-chosen id).
    Client(u32),
}

impl fmt::Display for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Peer::Master => write!(f, "master"),
            Peer::Slave(n) => write!(f, "slave_{n}"),
            Peer::Client(n) => write!(f, "client_{n}"),
        }
    }
}

/// Why a send or receive failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is not connected (never was, or already hung up).
    Disconnected(Peer),
    /// No message arrived within the requested timeout.
    Timeout,
    /// The peer delivered bytes that failed framing or decoding.
    Protocol(FrameError),
    /// An I/O failure on the underlying socket (TCP only).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected(p) => write!(f, "peer {p} disconnected"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One endpoint's view of the messaging fabric.
pub trait Transport {
    /// Queue `msg` for delivery to `to`. May block for backpressure
    /// (bounded outbound queues); never drops silently.
    fn send(&self, to: Peer, msg: &Message) -> Result<(), TransportError>;

    /// Pop the next delivered message, if one is already waiting.
    fn try_recv(&self) -> Result<Option<(Peer, Message)>, TransportError>;

    /// Block up to `timeout` for the next delivered message.
    fn recv_timeout(&self, timeout: Duration) -> Result<(Peer, Message), TransportError>;

    /// Frames this endpoint has sent, total.
    fn frames_sent(&self) -> u64;

    /// Frames this endpoint has received, total.
    fn frames_received(&self) -> u64;
}
