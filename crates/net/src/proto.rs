//! The DYRS protocol: every message that crosses the master ↔ slave ↔
//! client boundary, extracted from the in-process call graph of
//! `crates/core` (paper §III-D describes the heartbeat fields; the rest
//! mirror the `Master`/`Slave` state-machine entry points).
//!
//! The enum is the *schema*: each variant's payload is exactly the
//! argument list of the state-machine method it drives, so a transport
//! can deliver a decoded message straight into `Master`/`Slave` without
//! translation. Variants carry explicit `u8` wire tags (see the `Wire`
//! impl) that are append-only: new messages take new tags, existing tags
//! never change meaning — that, plus the handshake's version range, is
//! the whole compatibility story.

use crate::wire::{DecodeError, Reader, Wire};
use dyrs::master::{BlockRequest, JobHint};
use dyrs::slave::HeartbeatReport;
use dyrs::types::{JobRef, Migration};
use dyrs::EvictionMode;
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_obs::{FlightRecord, StatsSnapshot};
use serde::{Deserialize, Serialize};
use simkit::SimTime;

/// Protocol version this build speaks (both minimum and maximum — each
/// breaking payload change bumps it; v2 added `Migration.dest_tier` for
/// the multi-tier buffer stacks).
pub const PROTOCOL_VERSION: u16 = 2;

/// What kind of endpoint is introducing itself in a [`Message::Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// A DataNode-side migration slave.
    Slave,
    /// A job submitter / scheduler client.
    Client,
}

/// What a [`Message::StatsRequest`] is asking for (admin/telemetry
/// plane). The master answers `Local*` scopes from its own recorder and
/// relays `Node*` scopes to the named slave, rewriting the scope on the
/// reply so the requester can tell whose data arrived. A slave only
/// answers `Local*` scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsScope {
    /// The receiving daemon's own stats snapshot.
    Local,
    /// The stats snapshot of slave `node`, relayed by the master.
    Node(u32),
    /// The receiving daemon's own flight-recorder dump.
    LocalFlight,
    /// The flight-recorder dump of slave `node`, relayed by the master.
    NodeFlight(u32),
}

/// One protocol message. Direction is part of the contract and noted on
/// every variant; a peer receiving a message flowing the wrong way must
/// treat it as a protocol error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    // -- handshake -------------------------------------------------------
    /// Connector → acceptor: identify and negotiate. `node` is the
    /// connector's NodeId for slaves and an arbitrary client id for
    /// clients.
    Hello {
        /// What the connector is.
        role: Role,
        /// Slave NodeId or client id.
        node: u32,
        /// Oldest protocol version the connector accepts.
        min_version: u16,
        /// Newest protocol version the connector speaks.
        max_version: u16,
    },
    /// Acceptor → connector: handshake accepted at `version`.
    Welcome {
        /// The negotiated version (within the connector's range).
        version: u16,
    },
    /// Acceptor → connector: handshake refused; the connection closes.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },

    // -- slave → master --------------------------------------------------
    /// Periodic report (§III-D): migration-cost estimate, queued bytes
    /// and free queue slots. Doubles as the work pull of delayed binding
    /// (§III-A1): the master answers with [`Message::Bind`] when it has
    /// migrations for this slave.
    Heartbeat {
        /// Reporting slave.
        node: NodeId,
        /// The roll-up (scalar fields only — byte-stable by construction).
        report: HeartbeatReport,
        /// Slave-local time of the report.
        at: SimTime,
    },
    /// A bound migration finished; the block is now in this slave's
    /// memory buffer.
    MigrationComplete {
        /// The executing slave.
        node: NodeId,
        /// The migrated block.
        block: BlockId,
    },
    /// The slave evicted `block` from its buffer (reference list empty,
    /// scavenge, or revocation).
    Evicted {
        /// The evicting slave.
        node: NodeId,
        /// The evicted block.
        block: BlockId,
    },
    /// Orderly-shutdown reply to [`Message::Shutdown`]: `sent` is the
    /// total number of frames this slave sent on the connection, so the
    /// master can prove it lost nothing.
    Bye {
        /// Frames the slave sent, including this one.
        sent: u64,
    },

    // -- master → slave --------------------------------------------------
    /// Delayed-binding pull response: migrations bound to this slave,
    /// in execution order.
    Bind {
        /// Migrations to enqueue, FIFO.
        migrations: Vec<Migration>,
    },
    /// A new job also wants `block`, which is already buffered or bound
    /// on this slave: extend the block's reference list.
    AddRef {
        /// The buffered/bound block.
        block: BlockId,
        /// The interested job and its eviction mode.
        job: JobRef,
    },
    /// Unbind `block` if still queued (failure detector / missed read);
    /// the slave answers nothing — the master already unbound its side.
    Revoke {
        /// The block whose binding is revoked.
        block: BlockId,
    },
    /// Drop every reference `job` holds on this slave, evicting blocks
    /// whose reference lists empty out.
    EvictJob {
        /// The finished job.
        job: JobId,
    },
    /// Orderly shutdown: `sent` counts every frame the master sent this
    /// slave, including this one. The slave drains, verifies the count,
    /// replies [`Message::Bye`] and closes.
    Shutdown {
        /// Frames the master sent this peer, including this one.
        sent: u64,
    },

    // -- client → master --------------------------------------------------
    /// Submit a job's migration request: one entry per cold block, with
    /// the scheduling hint Algorithm 1 uses for finish-time targeting.
    RequestMigration {
        /// The requesting job.
        job: JobId,
        /// The job's cold input blocks.
        blocks: Vec<BlockRequest>,
        /// How the job's references are released (§III-C3).
        eviction: EvictionMode,
        /// Expected launch time and total input size.
        hint: JobHint,
    },
    /// The job read `block` (possibly from disk): the master cancels a
    /// still-pending migration and routes implicit evictions.
    ReadNotify {
        /// The block that was read.
        block: BlockId,
        /// The reading job.
        job: JobId,
    },
    /// The job finished: release its references cluster-wide.
    EvictJobRequest {
        /// The finished job.
        job: JobId,
    },

    // -- admin plane (any peer → master, master → slave) -------------------
    /// Scrape request: ask the receiver for a live stats snapshot or a
    /// flight-recorder dump. Any connected peer may send this to the
    /// master mid-run; the master relays `Node*` scopes to slaves.
    StatsRequest {
        /// Whose data, and which kind.
        scope: StatsScope,
    },
    /// Scrape reply carrying a snapshot. `scope` names whose data this is
    /// (the master rewrites `Local` → `Node(n)` when relaying a slave's
    /// answer back to the requester).
    StatsReply {
        /// Whose snapshot this is.
        scope: StatsScope,
        /// The point-in-time telemetry view.
        snapshot: StatsSnapshot,
    },
    /// A flight-recorder dump: the reply to a `*Flight` scrape, and also
    /// pushed unsolicited by a daemon that auto-dumped on a quarantine or
    /// protocol violation.
    FlightDump {
        /// Whose recorder this is.
        scope: StatsScope,
        /// The dump itself.
        record: FlightRecord,
    },

    // -- membership & recovery plane (admin peer → master) -----------------
    /// (Re-)admit `node` to the cluster in the `Joining` state (admission
    /// ramp). The master answers with [`Message::DecommissionAck`]
    /// carrying the node's post-transition membership code.
    JoinRequest {
        /// The node to admit.
        node: u32,
    },
    /// Begin draining `node`: no new binds, bound-but-unstarted work is
    /// re-targeted, and the master decommissions the node once its bind
    /// queues empty. Idempotent — poll with repeated sends; each gets a
    /// [`Message::DecommissionAck`] with the current membership code.
    DrainNode {
        /// The node to drain.
        node: u32,
    },
    /// Master → admin peer: reply to [`Message::JoinRequest`] /
    /// [`Message::DrainNode`] with the node's current membership phase
    /// (`dyrs::master::Membership::code`: 0 joining, 1 active, 2
    /// draining, 3 removed).
    DecommissionAck {
        /// The node the verdict is about.
        node: u32,
        /// Its membership code after applying the request.
        membership: u8,
    },
    /// Ask the master to serialize its soft state. Answered with
    /// [`Message::Checkpoint`].
    CheckpointRequest,
    /// A versioned master checkpoint (the `Wire` encoding of
    /// `dyrs::master::MasterCheckpoint`), opaque at this layer so the
    /// snapshot schema can evolve behind its own version stamp.
    Checkpoint {
        /// The encoded snapshot.
        data: Vec<u8>,
    },
}

impl Message {
    /// The variant's wire tag (append-only; see module docs).
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 1,
            Message::Reject { .. } => 2,
            Message::Heartbeat { .. } => 3,
            Message::MigrationComplete { .. } => 4,
            Message::Evicted { .. } => 5,
            Message::Bye { .. } => 6,
            Message::Bind { .. } => 7,
            Message::AddRef { .. } => 8,
            Message::Revoke { .. } => 9,
            Message::EvictJob { .. } => 10,
            Message::Shutdown { .. } => 11,
            Message::RequestMigration { .. } => 12,
            Message::ReadNotify { .. } => 13,
            Message::EvictJobRequest { .. } => 14,
            Message::StatsRequest { .. } => 15,
            Message::StatsReply { .. } => 16,
            Message::FlightDump { .. } => 17,
            Message::JoinRequest { .. } => 18,
            Message::DrainNode { .. } => 19,
            Message::DecommissionAck { .. } => 20,
            Message::CheckpointRequest => 21,
            Message::Checkpoint { .. } => 22,
        }
    }

    /// Short stable name for logs and counters.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Welcome { .. } => "welcome",
            Message::Reject { .. } => "reject",
            Message::Heartbeat { .. } => "heartbeat",
            Message::MigrationComplete { .. } => "migration_complete",
            Message::Evicted { .. } => "evicted",
            Message::Bye { .. } => "bye",
            Message::Bind { .. } => "bind",
            Message::AddRef { .. } => "add_ref",
            Message::Revoke { .. } => "revoke",
            Message::EvictJob { .. } => "evict_job",
            Message::Shutdown { .. } => "shutdown",
            Message::RequestMigration { .. } => "request_migration",
            Message::ReadNotify { .. } => "read_notify",
            Message::EvictJobRequest { .. } => "evict_job_request",
            Message::StatsRequest { .. } => "stats_request",
            Message::StatsReply { .. } => "stats_reply",
            Message::FlightDump { .. } => "flight_dump",
            Message::JoinRequest { .. } => "join_request",
            Message::DrainNode { .. } => "drain_node",
            Message::DecommissionAck { .. } => "decommission_ack",
            Message::CheckpointRequest => "checkpoint_request",
            Message::Checkpoint { .. } => "checkpoint",
        }
    }
}

impl Wire for Role {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Role::Slave => 0,
            Role::Client => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Role::Slave),
            1 => Ok(Role::Client),
            tag => Err(DecodeError::BadTag { what: "Role", tag }),
        }
    }
}

impl Wire for StatsScope {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StatsScope::Local => out.push(0),
            StatsScope::Node(node) => {
                out.push(1);
                node.encode(out);
            }
            StatsScope::LocalFlight => out.push(2),
            StatsScope::NodeFlight(node) => {
                out.push(3);
                node.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(StatsScope::Local),
            1 => Ok(StatsScope::Node(u32::decode(r)?)),
            2 => Ok(StatsScope::LocalFlight),
            3 => Ok(StatsScope::NodeFlight(u32::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "StatsScope",
                tag,
            }),
        }
    }
}

impl Wire for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            Message::Hello {
                role,
                node,
                min_version,
                max_version,
            } => {
                role.encode(out);
                node.encode(out);
                min_version.encode(out);
                max_version.encode(out);
            }
            Message::Welcome { version } => version.encode(out),
            Message::Reject { reason } => reason.encode(out),
            Message::Heartbeat { node, report, at } => {
                node.encode(out);
                report.encode(out);
                at.encode(out);
            }
            Message::MigrationComplete { node, block } | Message::Evicted { node, block } => {
                node.encode(out);
                block.encode(out);
            }
            Message::Bye { sent } | Message::Shutdown { sent } => sent.encode(out),
            Message::Bind { migrations } => migrations.encode(out),
            Message::AddRef { block, job } => {
                block.encode(out);
                job.encode(out);
            }
            Message::Revoke { block } => block.encode(out),
            Message::EvictJob { job } | Message::EvictJobRequest { job } => job.encode(out),
            Message::RequestMigration {
                job,
                blocks,
                eviction,
                hint,
            } => {
                job.encode(out);
                blocks.encode(out);
                eviction.encode(out);
                hint.encode(out);
            }
            Message::ReadNotify { block, job } => {
                block.encode(out);
                job.encode(out);
            }
            Message::StatsRequest { scope } => scope.encode(out),
            Message::StatsReply { scope, snapshot } => {
                scope.encode(out);
                snapshot.encode(out);
            }
            Message::FlightDump { scope, record } => {
                scope.encode(out);
                record.encode(out);
            }
            Message::JoinRequest { node } | Message::DrainNode { node } => node.encode(out),
            Message::DecommissionAck { node, membership } => {
                node.encode(out);
                membership.encode(out);
            }
            Message::CheckpointRequest => {}
            Message::Checkpoint { data } => data.encode(out),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = u8::decode(r)?;
        Ok(match tag {
            0 => Message::Hello {
                role: Role::decode(r)?,
                node: u32::decode(r)?,
                min_version: u16::decode(r)?,
                max_version: u16::decode(r)?,
            },
            1 => Message::Welcome {
                version: u16::decode(r)?,
            },
            2 => Message::Reject {
                reason: String::decode(r)?,
            },
            3 => Message::Heartbeat {
                node: NodeId::decode(r)?,
                report: HeartbeatReport::decode(r)?,
                at: SimTime::decode(r)?,
            },
            4 => Message::MigrationComplete {
                node: NodeId::decode(r)?,
                block: BlockId::decode(r)?,
            },
            5 => Message::Evicted {
                node: NodeId::decode(r)?,
                block: BlockId::decode(r)?,
            },
            6 => Message::Bye {
                sent: u64::decode(r)?,
            },
            7 => Message::Bind {
                migrations: Vec::decode(r)?,
            },
            8 => Message::AddRef {
                block: BlockId::decode(r)?,
                job: JobRef::decode(r)?,
            },
            9 => Message::Revoke {
                block: BlockId::decode(r)?,
            },
            10 => Message::EvictJob {
                job: JobId::decode(r)?,
            },
            11 => Message::Shutdown {
                sent: u64::decode(r)?,
            },
            12 => Message::RequestMigration {
                job: JobId::decode(r)?,
                blocks: Vec::decode(r)?,
                eviction: EvictionMode::decode(r)?,
                hint: JobHint::decode(r)?,
            },
            13 => Message::ReadNotify {
                block: BlockId::decode(r)?,
                job: JobId::decode(r)?,
            },
            14 => Message::EvictJobRequest {
                job: JobId::decode(r)?,
            },
            15 => Message::StatsRequest {
                scope: StatsScope::decode(r)?,
            },
            16 => Message::StatsReply {
                scope: StatsScope::decode(r)?,
                snapshot: StatsSnapshot::decode(r)?,
            },
            17 => Message::FlightDump {
                scope: StatsScope::decode(r)?,
                record: FlightRecord::decode(r)?,
            },
            18 => Message::JoinRequest {
                node: u32::decode(r)?,
            },
            19 => Message::DrainNode {
                node: u32::decode(r)?,
            },
            20 => Message::DecommissionAck {
                node: u32::decode(r)?,
                membership: u8::decode(r)?,
            },
            21 => Message::CheckpointRequest,
            22 => Message::Checkpoint {
                data: Vec::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "Message",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{from_bytes, to_bytes};

    #[test]
    fn tags_are_unique_and_stable() {
        // The decode table is the source of truth; spot-check the
        // encode-side tags stay aligned with it.
        let msgs = [
            Message::Welcome { version: 1 },
            Message::Revoke { block: BlockId(9) },
            Message::Bye { sent: 3 },
            Message::Shutdown { sent: 4 },
        ];
        for m in msgs {
            let bytes = to_bytes(&m);
            assert_eq!(bytes[0], m.tag());
            assert_eq!(from_bytes::<Message>(&bytes).expect("roundtrip"), m);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(
            from_bytes::<Message>(&[0xFF]),
            Err(DecodeError::BadTag {
                what: "Message",
                tag: 0xFF
            })
        );
    }
}
