//! Length-prefixed framing for [`Message`]s over a byte stream.
//!
//! ```text
//!  0       4       6       10            10+len
//!  +-------+-------+-------+--------------+
//!  | magic | ver   | len   |   payload    |
//!  | DYRS  | u16BE | u32BE |  Wire bytes  |
//!  +-------+-------+-------+--------------+
//! ```
//!
//! * `magic` — the 4 bytes `DYRS`; rejects cross-talk from anything that
//!   is not this protocol (port scans, misdirected HTTP).
//! * `ver` — the protocol version the payload was encoded under. The
//!   framing layer rejects versions outside the range negotiated by the
//!   handshake (and, before any handshake, outside this build's range).
//! * `len` — payload length in bytes, capped at [`MAX_FRAME`] so a
//!   corrupt prefix cannot trigger an unbounded allocation.
//!
//! The payload must decode to exactly `len` bytes — trailing garbage is
//! a framing error, not silently ignored.

use crate::proto::{Message, PROTOCOL_VERSION};
use crate::wire::{self, DecodeError, Reader, Wire};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame preamble: `DYRS`.
pub const MAGIC: [u8; 4] = *b"DYRS";

/// Fixed header size: magic + version + length.
pub const HEADER_LEN: usize = 4 + 2 + 4;

/// Hard cap on a frame payload (16 MiB — a `Bind` of thousands of
/// migrations fits with orders of magnitude to spare).
pub const MAX_FRAME: u32 = 16 << 20;

/// Why a frame failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended inside a header or payload.
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header's version is outside the accepted range.
    UnsupportedVersion(u16),
    /// The header's length exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// The payload failed to decode, or decoded short of `len`.
    Payload(DecodeError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected 44 59 52 53)"),
            FrameError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            FrameError::Oversized(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Payload(e) => write!(f, "payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        FrameError::Payload(e)
    }
}

/// Encode `msg` as one complete frame at `version`.
pub fn encode_frame(version: u16, msg: &Message) -> Vec<u8> {
    let payload = wire::to_bytes(msg);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode one complete frame from `buf`, accepting only versions in
/// `versions` (inclusive range). Returns the version and the message;
/// `buf` must contain exactly one frame.
pub fn decode_frame(
    buf: &[u8],
    versions: std::ops::RangeInclusive<u16>,
) -> Result<(u16, Message), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let magic: [u8; 4] = buf[0..4].try_into().map_err(|_| FrameError::Truncated)?;
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_be_bytes([buf[4], buf[5]]);
    if !versions.contains(&version) {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let len = u32::from_be_bytes([buf[6], buf[7], buf[8], buf[9]]);
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let payload = &buf[HEADER_LEN..];
    if payload.len() != len as usize {
        return Err(FrameError::Truncated);
    }
    let mut r = Reader::new(payload);
    let msg = Message::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(FrameError::Payload(DecodeError::Truncated));
    }
    Ok((version, msg))
}

/// The version range this build accepts before a handshake has pinned
/// one (currently a single version).
pub fn supported_versions() -> std::ops::RangeInclusive<u16> {
    PROTOCOL_VERSION..=PROTOCOL_VERSION
}

/// Write one frame to a blocking stream.
pub fn write_frame(w: &mut impl Write, version: u16, msg: &Message) -> io::Result<()> {
    let frame = encode_frame(version, msg);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame from a blocking stream, accepting versions in
/// `versions`. The outer `io::Result` carries transport failures
/// (including read timeouts); the inner `Result` carries protocol
/// violations from a peer that did deliver bytes.
pub fn read_frame(
    r: &mut impl Read,
    versions: std::ops::RangeInclusive<u16>,
) -> io::Result<Result<(u16, Message), FrameError>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Ok(Err(FrameError::BadMagic(magic)));
    }
    let version = u16::from_be_bytes([header[4], header[5]]);
    if !versions.contains(&version) {
        return Ok(Err(FrameError::UnsupportedVersion(version)));
    }
    let len = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_FRAME {
        return Ok(Err(FrameError::Oversized(len)));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut reader = Reader::new(&payload);
    match Message::decode(&mut reader) {
        Ok(msg) if reader.remaining() == 0 => Ok(Ok((version, msg))),
        Ok(_) => Ok(Err(FrameError::Payload(DecodeError::Truncated))),
        Err(e) => Ok(Err(FrameError::Payload(e))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Message {
        Message::Welcome {
            version: PROTOCOL_VERSION,
        }
    }

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(PROTOCOL_VERSION, &sample());
        let (v, msg) = decode_frame(&frame, supported_versions()).expect("roundtrip");
        assert_eq!(v, PROTOCOL_VERSION);
        assert_eq!(msg, sample());
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = encode_frame(PROTOCOL_VERSION, &sample());
        for cut in [0, 3, HEADER_LEN - 1, frame.len() - 1] {
            assert_eq!(
                decode_frame(&frame[..cut], supported_versions()),
                Err(FrameError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(PROTOCOL_VERSION, &sample());
        frame[0] = b'X';
        assert!(matches!(
            decode_frame(&frame, supported_versions()),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let frame = encode_frame(99, &sample());
        assert_eq!(
            decode_frame(&frame, supported_versions()),
            Err(FrameError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn oversized_length_rejected() {
        let mut frame = encode_frame(PROTOCOL_VERSION, &sample());
        frame[6..10].copy_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert_eq!(
            decode_frame(&frame, supported_versions()),
            Err(FrameError::Oversized(MAX_FRAME + 1))
        );
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, PROTOCOL_VERSION, &sample()).expect("write");
        let mut cursor = std::io::Cursor::new(buf);
        let got = read_frame(&mut cursor, supported_versions())
            .expect("io")
            .expect("frame");
        assert_eq!(got, (PROTOCOL_VERSION, sample()));
    }
}
