//! Deterministic binary encoding for protocol payloads.
//!
//! The vendored `serde` is a no-op marker stub (see `vendor/README.md`),
//! so the wire format is hand-rolled here and — deliberately — *fully
//! specified*: big-endian fixed-width integers, `f64` as its IEEE-754 bit
//! pattern, `u8` discriminant tags for enums, and `u32` length prefixes
//! for sequences and strings. There is no padding, no alignment, and no
//! map type whose iteration order could leak into the bytes: every
//! sequence is encoded in the order the sending state machine produced
//! it, which the workspace keeps deterministic (`dyrs-verify -- lint`
//! bans hash-ordered iteration in decision paths). The same value
//! therefore always encodes to the same bytes, which
//! `tests/determinism.rs` pins with a digest.

use dyrs::master::{BlockRequest, JobHint};
use dyrs::slave::HeartbeatReport;
use dyrs::types::{BoundMigration, JobRef, Migration, MigrationId};
use dyrs::EvictionMode;
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, FileId, JobId};
use dyrs_obs::{FlightEntry, FlightRecord, GaugeSample, StatsSnapshot};
use simkit::{SimDuration, SimTime};
use std::fmt;

/// Longest sequence the decoder will allocate for (elements). Protects
/// against a corrupt or hostile length prefix causing an OOM before the
/// frame-level size cap can help.
pub const MAX_SEQ_LEN: u32 = 1 << 20;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeded [`MAX_SEQ_LEN`].
    OversizedSeq(u32),
    /// A string's bytes were not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadTag { what, tag } => {
                write!(f, "unknown tag {tag:#04x} while decoding {what}")
            }
            DecodeError::OversizedSeq(n) => {
                write!(f, "sequence length {n} exceeds the {MAX_SEQ_LEN} cap")
            }
            DecodeError::BadUtf8 => write!(f, "string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// A value with a canonical binary encoding.
///
/// `decode(encode(v)) == v` for every value (pinned by proptest in
/// `crates/net/tests/codec.rs`), and `encode` is a pure function of the
/// value — no environment, time, or allocation order can change the
/// bytes.
pub trait Wire: Sized {
    /// Append this value's canonical encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the reader, consuming exactly the bytes
    /// `encode` produced.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                let arr: [u8; std::mem::size_of::<$t>()] =
                    bytes.try_into().map_err(|_| DecodeError::Truncated)?;
                Ok(<$t>::from_be_bytes(arr))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64);

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        // Bit pattern, not text: round-trips NaN payloads and subnormals
        // exactly, and is byte-stable across platforms.
        out.extend_from_slice(&self.to_bits().to_be_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }
}

/// `usize` travels as `u64` so 32- and 64-bit peers agree on the bytes.
impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u64::decode(r)? as usize)
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u32::decode(r)?;
        if len > MAX_SEQ_LEN {
            return Err(DecodeError::OversizedSeq(len));
        }
        let bytes = r.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u32::decode(r)?;
        if len > MAX_SEQ_LEN {
            return Err(DecodeError::OversizedSeq(len));
        }
        // Reserve conservatively: a corrupt prefix may claim more
        // elements than the buffer can hold, so cap by remaining bytes.
        let mut v = Vec::with_capacity((len as usize).min(r.remaining()));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

macro_rules! wire_newtype {
    ($($t:ty => $inner:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok(Self(<$inner>::decode(r)?))
            }
        }
    )*};
}

wire_newtype!(
    NodeId => u32,
    BlockId => u64,
    JobId => u64,
    FileId => u32,
    MigrationId => u64
);

impl Wire for SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_micros().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SimTime::from_micros(u64::decode(r)?))
    }
}

impl Wire for SimDuration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_micros().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SimDuration::from_micros(u64::decode(r)?))
    }
}

impl Wire for EvictionMode {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            EvictionMode::Explicit => 0,
            EvictionMode::Implicit => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(EvictionMode::Explicit),
            1 => Ok(EvictionMode::Implicit),
            tag => Err(DecodeError::BadTag {
                what: "EvictionMode",
                tag,
            }),
        }
    }
}

impl Wire for JobRef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.job.encode(out);
        self.eviction.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(JobRef {
            job: JobId::decode(r)?,
            eviction: EvictionMode::decode(r)?,
        })
    }
}

impl Wire for Migration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.block.encode(out);
        self.bytes.encode(out);
        self.jobs.encode(out);
        self.replicas.encode(out);
        self.attempt.encode(out);
        self.dest_tier.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Migration {
            id: MigrationId::decode(r)?,
            block: BlockId::decode(r)?,
            bytes: u64::decode(r)?,
            jobs: Vec::decode(r)?,
            replicas: Vec::decode(r)?,
            attempt: u32::decode(r)?,
            dest_tier: u8::decode(r)?,
        })
    }
}

impl Wire for BoundMigration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.migration.encode(out);
        self.node.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BoundMigration {
            migration: Migration::decode(r)?,
            node: NodeId::decode(r)?,
        })
    }
}

impl Wire for HeartbeatReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.secs_per_byte.encode(out);
        self.queued_bytes.encode(out);
        self.queue_space.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(HeartbeatReport {
            secs_per_byte: f64::decode(r)?,
            queued_bytes: u64::decode(r)?,
            queue_space: usize::decode(r)?,
        })
    }
}

impl Wire for BlockRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.block.encode(out);
        self.bytes.encode(out);
        self.replicas.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockRequest {
            block: BlockId::decode(r)?,
            bytes: u64::decode(r)?,
            replicas: Vec::decode(r)?,
        })
    }
}

impl Wire for JobHint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.expected_launch.encode(out);
        self.total_bytes.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(JobHint {
            expected_launch: SimTime::decode(r)?,
            total_bytes: u64::decode(r)?,
        })
    }
}

impl Wire for GaugeSample {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.key.encode(out);
        self.value.encode(out);
        self.at.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(GaugeSample {
            name: String::decode(r)?,
            key: u64::decode(r)?,
            value: f64::decode(r)?,
            at: SimTime::decode(r)?,
        })
    }
}

impl Wire for StatsSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        self.enabled.encode(out);
        self.counters.encode(out);
        self.gauges.encode(out);
        self.open_spans.encode(out);
        self.top_winners.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StatsSnapshot {
            at: SimTime::decode(r)?,
            enabled: bool::decode(r)?,
            counters: Vec::decode(r)?,
            gauges: Vec::decode(r)?,
            open_spans: Vec::decode(r)?,
            top_winners: Vec::decode(r)?,
        })
    }
}

impl Wire for FlightEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        self.migration.encode(out);
        self.block.encode(out);
        self.state.encode(out);
        self.node.encode(out);
        self.cause.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FlightEntry {
            at: SimTime::decode(r)?,
            migration: u64::decode(r)?,
            block: u64::decode(r)?,
            state: String::decode(r)?,
            node: Option::decode(r)?,
            cause: String::decode(r)?,
        })
    }
}

impl Wire for FlightRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.reason.encode(out);
        self.node.encode(out);
        self.at.encode(out);
        self.dropped.encode(out);
        self.entries.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FlightRecord {
            reason: String::decode(r)?,
            node: Option::decode(r)?,
            at: SimTime::decode(r)?,
            dropped: u64::decode(r)?,
            entries: Vec::decode(r)?,
        })
    }
}

/// Convenience: encode a value into a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Convenience: decode a value that must consume the whole buffer.
pub fn from_bytes<T: Wire>(buf: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(buf);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        // Trailing garbage means sender and receiver disagree on the
        // schema — surface it rather than silently ignoring bytes.
        return Err(DecodeError::Truncated);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes), Ok(v));
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(1.5f64);
        roundtrip(true);
        roundtrip(String::from("héllo"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(7u32));
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let bytes = to_bytes(&weird);
        let back = from_bytes::<f64>(&bytes).expect("decodes");
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn encoding_is_big_endian_and_prefix_free() {
        assert_eq!(to_bytes(&0x0102_0304u32), vec![1, 2, 3, 4]);
        assert_eq!(to_bytes(&String::from("ab")), vec![0, 0, 0, 2, b'a', b'b']);
    }

    #[test]
    fn truncation_is_an_error() {
        let bytes = to_bytes(&0xAABB_CCDDu32);
        assert_eq!(from_bytes::<u32>(&bytes[..3]), Err(DecodeError::Truncated));
    }

    #[test]
    fn oversized_seq_rejected_without_allocation() {
        let mut buf = Vec::new();
        (MAX_SEQ_LEN + 1).encode(&mut buf);
        assert_eq!(
            from_bytes::<Vec<u64>>(&buf),
            Err(DecodeError::OversizedSeq(MAX_SEQ_LEN + 1))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert_eq!(from_bytes::<u32>(&bytes), Err(DecodeError::Truncated));
    }
}
