//! Localhost cluster smoke test: one master, three slaves and a client
//! over real TCP sockets on 127.0.0.1. The client submits a mini
//! workload (six 16 MiB blocks), reads every block back and evicts the
//! job; the test then runs the orderly-shutdown barrier and asserts
//!
//! * every migration reached a terminal state (all obs spans closed),
//! * the frame accounting proves zero lost messages in both directions
//!   on every connection,
//! * no peer observed a protocol violation.
//!
//! Everything runs on an OS-assigned port, so the test is safe to run
//! concurrently with itself; end-to-end it takes a few seconds, well
//! under the 60 s CI budget.

use dyrs::master::{BlockRequest, JobHint};
use dyrs::EvictionMode;
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_net::node::{run_master, run_slave, MasterConfig, MasterProgress, SlaveConfig};
use dyrs_net::stats::scrape_stats;
use dyrs_net::tcp::{TcpAcceptor, TcpConfig, TcpConnector};
use dyrs_net::{Message, Peer, Role, StatsScope, Transport};
use simkit::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SLAVES: u32 = 3;
const BLOCKS: u64 = 6;
const BLOCK_BYTES: u64 = 16 << 20;

/// Spin until `cond` holds or `deadline` passes; true on success.
fn wait_until(deadline: Instant, mut cond: impl FnMut() -> bool) -> bool {
    while !cond() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

fn reached(counter: &Arc<AtomicU64>, n: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let counter = Arc::clone(counter);
    assert!(
        wait_until(deadline, || counter.load(Ordering::SeqCst) >= n),
        "timed out waiting for {n} {what} (got {})",
        counter.load(Ordering::SeqCst)
    );
}

#[test]
fn localhost_cluster_completes_mini_workload_with_zero_loss() {
    // Master endpoint on an OS-assigned port.
    let acceptor =
        TcpAcceptor::bind("127.0.0.1:0", TcpConfig::default()).expect("bind 127.0.0.1:0");
    let addr = acceptor.local_addr().to_string();

    // Three slave daemons, each on its own connection and thread.
    let slave_stop = Arc::new(AtomicBool::new(false));
    let slaves: Vec<_> = (0..SLAVES)
        .map(|n| {
            let addr = addr.clone();
            let stop = Arc::clone(&slave_stop);
            std::thread::spawn(move || {
                let conn = TcpConnector::connect(&addr, Role::Slave, n, TcpConfig::default())
                    .unwrap_or_else(|e| panic!("slave {n} connect: {e:?}"));
                let report = run_slave(&conn, &SlaveConfig::new(NodeId(n)), &stop);
                conn.shutdown();
                report
            })
        })
        .collect();

    // Master daemon, once all three slaves finished their handshakes.
    assert!(
        acceptor.wait_for_peers(SLAVES as usize, Duration::from_secs(20)),
        "slaves did not all connect: {:?}",
        acceptor.connected_peers()
    );
    let master_stop = Arc::new(AtomicBool::new(false));
    let progress = MasterProgress::default();
    let master = {
        let stop = Arc::clone(&master_stop);
        let progress = progress.clone();
        let acceptor = acceptor; // moved into the thread, shut down there
        std::thread::spawn(move || {
            let report = run_master(
                &acceptor,
                &MasterConfig::new(SLAVES as usize),
                &stop,
                &progress,
            );
            acceptor.shutdown();
            report
        })
    };

    // The client: submit the workload, read it back, release it.
    let client = TcpConnector::connect(&addr, Role::Client, 0, TcpConfig::default())
        .expect("client connect");
    let job = JobId(1);
    let requests: Vec<BlockRequest> = (0..BLOCKS)
        .map(|i| BlockRequest {
            block: BlockId(i),
            bytes: BLOCK_BYTES,
            replicas: (0..SLAVES.min(3))
                .map(|r| NodeId((i as u32 + r) % SLAVES))
                .collect(),
        })
        .collect();
    client
        .send(
            Peer::Master,
            &Message::RequestMigration {
                job,
                blocks: requests,
                eviction: EvictionMode::Explicit,
                hint: JobHint {
                    expected_launch: SimTime::from_micros(0),
                    total_bytes: BLOCKS * BLOCK_BYTES,
                },
            },
        )
        .expect("submit job");

    // All six blocks must land in memory via heartbeat-pulled bindings.
    reached(&progress.completed, BLOCKS, "migration completions");

    // -- live admin plane: scrape every daemon mid-run ------------------
    // A second client connection (distinct id) plays `dyrs-node stat`:
    // master first, then each slave through the master relay.
    let admin = TcpConnector::connect(&addr, Role::Client, 99, TcpConfig::default())
        .expect("admin connect");
    let scrape_timeout = Duration::from_secs(10);
    let scrape_all = || -> Vec<(String, dyrs_obs::StatsSnapshot)> {
        let mut out = vec![(
            "master".to_owned(),
            scrape_stats(&admin, Peer::Master, StatsScope::Local, scrape_timeout)
                .expect("master answers a mid-run scrape"),
        )];
        for n in 0..SLAVES {
            out.push((
                format!("slave-{n}"),
                scrape_stats(&admin, Peer::Master, StatsScope::Node(n), scrape_timeout)
                    .unwrap_or_else(|e| panic!("slave {n} scrape: {e:?}")),
            ));
        }
        out
    };
    let first = scrape_all();
    let master_snap = &first[0].1;
    assert!(master_snap.enabled, "master scrape is live");
    // The master's span lifecycle stops at `bound` (started/finished are
    // the executing slave's transitions), so a fully-drained backlog
    // scrapes as six bindings.
    assert_eq!(
        master_snap.counter("span.bound"),
        BLOCKS,
        "all bindings visible to the scrape: {:?}",
        master_snap.counters
    );
    assert!(
        master_snap.gauge("sched.pending_depth", 0).is_some(),
        "scheduler depth gauge sampled: {:?}",
        master_snap.gauges
    );
    for (label, snap) in &first[1..] {
        assert!(snap.enabled, "{label} scrape is live");
        assert!(
            snap.counter("span.finished") > 0,
            "{label} migrated at least one block: {:?}",
            snap.counters
        );
    }
    // Counters are monotone between successive scrapes, on every daemon.
    let second = scrape_all();
    for ((label, a), (_, b)) in first.iter().zip(&second) {
        for (name, v) in &a.counters {
            assert!(
                b.counter(name) >= *v,
                "{label}: counter {name} went backwards ({} < {v})",
                b.counter(name)
            );
        }
    }
    admin.shutdown();

    // The job reads its input, then finishes: explicit eviction releases
    // every buffer.
    for i in 0..BLOCKS {
        client
            .send(
                Peer::Master,
                &Message::ReadNotify {
                    block: BlockId(i),
                    job,
                },
            )
            .expect("read notify");
    }
    client
        .send(Peer::Master, &Message::EvictJobRequest { job })
        .expect("evict job");
    reached(&progress.evicted, BLOCKS, "evictions");
    client.shutdown();

    // Orderly shutdown: the master runs the two-way counting barrier.
    master_stop.store(true, Ordering::SeqCst);
    let master_report = master.join().expect("master thread");
    slave_stop.store(true, Ordering::SeqCst);
    let slave_reports: Vec<_> = slaves
        .into_iter()
        .map(|h| h.join().expect("slave thread"))
        .collect();

    // -- no protocol violations anywhere -------------------------------
    assert!(
        master_report.errors.is_empty(),
        "master errors: {:?}",
        master_report.errors
    );
    for (n, r) in slave_reports.iter().enumerate() {
        assert!(r.errors.is_empty(), "slave {n} errors: {:?}", r.errors);
    }

    // -- the workload actually ran -------------------------------------
    assert_eq!(master_report.completed.len() as u64, BLOCKS);
    let slave_completed: u64 = slave_reports.iter().map(|r| r.completed).sum();
    let slave_evicted: u64 = slave_reports.iter().map(|r| r.evicted).sum();
    assert_eq!(slave_completed, BLOCKS, "every block migrated exactly once");
    assert_eq!(slave_evicted, BLOCKS, "every buffer released");

    // -- zero lost messages, proven by the counting barrier ------------
    assert!(
        master_report.zero_loss(),
        "master accounting mismatch: sent {:?} received {:?} byes {:?}",
        master_report.sent,
        master_report.received,
        master_report.byes
    );
    for (n, r) in slave_reports.iter().enumerate() {
        assert!(
            r.zero_loss(),
            "slave {n} accounting mismatch: advertised {:?}, received {}",
            r.advertised,
            r.received
        );
        // Cross-check the two ledgers: what the slave counted must match
        // what the master counted for that connection.
        assert_eq!(
            master_report.sent.get(&(n as u32)),
            r.advertised.as_ref(),
            "slave {n}: master sent-count vs Shutdown advertisement"
        );
        assert_eq!(
            master_report.received.get(&(n as u32)),
            Some(&r.sent),
            "slave {n}: master received-count vs slave sent-count"
        );
    }

    // -- every migration span closed -----------------------------------
    let obs = &master_report.obs;
    assert!(obs.enabled, "daemons run with observability on by default");
    let spans = obs.spans();
    assert_eq!(spans.len() as u64, BLOCKS, "one span per block");
    for (mig, events) in spans {
        let last = events.last().expect("span has events");
        assert!(
            last.state.is_terminal(),
            "migration {mig} ended in non-terminal state {:?}",
            last.state
        );
    }
}
