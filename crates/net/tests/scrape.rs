//! Admin-plane scrape over the deterministic loopback transport: a
//! client scrapes a live master (and, via master relay, a slave) while
//! the daemons run, without perturbing the protocol.
//!
//! * the master answers `StatsScope::Local` with the live scheduler
//!   backlog (`sched.pending_depth`) and the open-span census,
//! * `Node(n)`/`NodeFlight(n)` scopes relay through the master to the
//!   slave and come back with the scope rewritten,
//! * the detector's `node.health` gauges surface once heartbeats flow,
//! * counters are monotone across successive scrapes, and the `watch`
//!   table renders refresh after refresh.

use dyrs::config::FailureDetectorConfig;
use dyrs::master::{BlockRequest, JobHint};
use dyrs::EvictionMode;
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_net::node::{run_master, run_slave, MasterConfig, MasterProgress, SlaveConfig};
use dyrs_net::stats::{render_watch_table, scrape_flight, scrape_stats, Scrape};
use dyrs_net::{LoopbackHub, Message, Peer, StatsScope, Transport};
use simkit::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BLOCKS: u64 = 6;
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

fn submit(client: &impl Transport, blocks: u64, replicas: u32) {
    let requests: Vec<BlockRequest> = (0..blocks)
        .map(|i| BlockRequest {
            block: BlockId(i),
            bytes: 16 << 20,
            replicas: (0..replicas.max(1))
                .map(|r| NodeId((i as u32 + r) % replicas.max(1)))
                .collect(),
        })
        .collect();
    client
        .send(
            Peer::Master,
            &Message::RequestMigration {
                job: JobId(1),
                blocks: requests,
                eviction: EvictionMode::Explicit,
                hint: JobHint {
                    expected_launch: SimTime::from_micros(0),
                    total_bytes: blocks * (16 << 20),
                },
            },
        )
        .expect("submit job");
}

/// A master with no slaves connected: nothing ever pulls work, so the
/// backlog a scrape reports is exactly the submitted block count — a
/// deterministic assertion, not a race against migration progress.
#[test]
fn master_scrape_reports_live_backlog() {
    let hub = LoopbackHub::new();
    let master_ep = hub.endpoint(Peer::Master);
    let client = hub.endpoint(Peer::Client(9));

    let stop = Arc::new(AtomicBool::new(false));
    let master = {
        let stop = Arc::clone(&stop);
        let progress = MasterProgress::default();
        std::thread::spawn(move || run_master(&master_ep, &MasterConfig::new(3), &stop, &progress))
    };

    submit(&client, BLOCKS, 3);
    // The loopback inbox is ordered per sender, so this scrape is
    // processed strictly after the submission above.
    let first = scrape_stats(&client, Peer::Master, StatsScope::Local, SCRAPE_TIMEOUT)
        .expect("master answers a Local scrape");
    assert!(first.enabled, "daemons run with observability on");
    assert_eq!(
        first.gauge("sched.pending_depth", 0),
        Some(BLOCKS as f64),
        "scrape sees the live scheduler backlog"
    );
    assert_eq!(
        first.open_total(),
        BLOCKS,
        "one open span per unfinished migration: {:?}",
        first.open_spans
    );
    assert_eq!(first.counter("span.pending"), BLOCKS);

    // Counters are monotone scrape-over-scrape, and each round renders a
    // non-empty watch-table refresh.
    let mut tables = Vec::new();
    let mut prev = first;
    for _ in 0..2 {
        let snap = scrape_stats(&client, Peer::Master, StatsScope::Local, SCRAPE_TIMEOUT)
            .expect("repeat scrape");
        for (name, v) in &prev.counters {
            assert!(
                snap.counter(name) >= *v,
                "counter {name} went backwards: {} < {v}",
                snap.counter(name)
            );
        }
        tables.push(render_watch_table(&[Scrape {
            label: "master".into(),
            snapshot: snap.clone(),
        }]));
        prev = snap;
    }
    assert_eq!(tables.len(), 2, "watch renders at least two refreshes");
    for t in &tables {
        assert!(t.contains("daemon") && t.contains("master"), "{t}");
        assert!(t.contains('6'), "backlog visible in the table: {t}");
    }

    stop.store(true, Ordering::SeqCst);
    let report = master.join().expect("master thread");
    assert!(report.errors.is_empty(), "scrapes are not protocol errors");
}

/// A 1-master/1-slave loopback cluster: Node-scoped scrapes relay
/// through the master, flight dumps come back naming the slave, and the
/// detector's health gauges surface in the master's snapshot.
#[test]
fn node_scope_scrapes_relay_through_master() {
    let hub = LoopbackHub::new();
    let master_ep = hub.endpoint(Peer::Master);
    let slave_ep = hub.endpoint(Peer::Slave(0));
    let client = hub.endpoint(Peer::Client(9));

    let master_stop = Arc::new(AtomicBool::new(false));
    let slave_stop = Arc::new(AtomicBool::new(false));
    let master = {
        let stop = Arc::clone(&master_stop);
        let progress = MasterProgress::default();
        let mut cfg = MasterConfig::new(1);
        // Generous deadlines: the daemons advance virtual time per poll,
        // so these measure scheduling jitter — sized to never fire here.
        cfg.detector = Some(FailureDetectorConfig {
            suspect_after: SimDuration::from_secs(3600),
            ..cfg.dyrs.failure_detector.clone()
        });
        std::thread::spawn(move || run_master(&master_ep, &cfg, &stop, &progress))
    };
    let slave = {
        let stop = Arc::clone(&slave_stop);
        std::thread::spawn(move || run_slave(&slave_ep, &SlaveConfig::new(NodeId(0)), &stop))
    };

    // Wait for heartbeats: once the master knows the slave, its Local
    // snapshot carries the node.health gauge.
    let deadline = Instant::now() + Duration::from_secs(20);
    let healthy = loop {
        let snap = scrape_stats(&client, Peer::Master, StatsScope::Local, SCRAPE_TIMEOUT)
            .expect("master answers");
        if let Some(h) = snap.gauge("node.health", 0) {
            break h;
        }
        assert!(
            Instant::now() < deadline,
            "node.health never surfaced: {:?}",
            snap.gauges
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(healthy, 0.0, "a heartbeating slave is healthy");

    // Node scope: relayed to the slave, answered with the scope
    // rewritten so the client can match its request.
    let node_snap = scrape_stats(&client, Peer::Master, StatsScope::Node(0), SCRAPE_TIMEOUT)
        .expect("slave answers through the master relay");
    assert!(node_snap.enabled, "slave runs with observability on");

    // NodeFlight scope: the slave's flight recorder, named after it.
    let record = scrape_flight(
        &client,
        Peer::Master,
        StatsScope::NodeFlight(0),
        SCRAPE_TIMEOUT,
    )
    .expect("slave flight dump through the master relay");
    assert_eq!(record.reason, "on-demand");
    assert_eq!(record.node, Some(0), "the dump names the slave");

    // LocalFlight on the master itself.
    let record = scrape_flight(
        &client,
        Peer::Master,
        StatsScope::LocalFlight,
        SCRAPE_TIMEOUT,
    )
    .expect("master flight dump");
    assert_eq!(record.reason, "on-demand");
    assert_eq!(record.node, None);

    // Stop the master first: its shutdown barrier advertises the final
    // send count to the (still running) slave, which answers `Bye` and
    // exits. Sharing one stop flag would race the slave out of its loop
    // before `Shutdown` arrives, leaving `advertised` unset.
    master_stop.store(true, Ordering::SeqCst);
    let master_report = master.join().expect("master thread");
    slave_stop.store(true, Ordering::SeqCst);
    let slave_report = slave.join().expect("slave thread");
    assert!(
        master_report.errors.is_empty(),
        "master errors: {:?}",
        master_report.errors
    );
    assert!(
        slave_report.errors.is_empty(),
        "slave errors: {:?}",
        slave_report.errors
    );
    // Scrape relays ride the counted per-slave ledgers: the barrier must
    // still prove zero loss with admin traffic interleaved.
    assert!(
        master_report.zero_loss(),
        "master accounting mismatch: sent {:?} received {:?} byes {:?}",
        master_report.sent,
        master_report.received,
        master_report.byes
    );
    assert!(
        slave_report.zero_loss(),
        "slave accounting mismatch: advertised {:?}, received {}",
        slave_report.advertised,
        slave_report.received
    );
}
