//! TCP membership soak: a real localhost cluster (one master, four
//! slave daemons) churned by live admin commands while a workload
//! migrates — drain → decommission ack → re-join → checkpoint scrape,
//! repeated — then the counting shutdown barrier proves zero lost
//! frames on every connection and every migration span terminal.
//!
//! The loopback half of the soak (a seeded membership storm through
//! the simulator's wire seam) lives in `tests/membership_soak.rs` at
//! the workspace root.

use dyrs::master::{BlockRequest, JobHint};
use dyrs::{EvictionMode, Membership};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_net::node::{run_master, run_slave, MasterConfig, MasterProgress, SlaveConfig};
use dyrs_net::tcp::{TcpAcceptor, TcpConfig, TcpConnector};
use dyrs_net::{checkpoint_from_bytes, Message, Peer, Role, Transport};
use simkit::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SLAVES: u32 = 4;
const BLOCKS_PER_JOB: u64 = 8;
const BLOCK_BYTES: u64 = 16 << 20;
const CHURN_NODE: u32 = 3;

fn wait_until(deadline: Instant, mut cond: impl FnMut() -> bool) -> bool {
    while !cond() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

fn reached(counter: &Arc<AtomicU64>, n: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let counter = Arc::clone(counter);
    assert!(
        wait_until(deadline, || counter.load(Ordering::SeqCst) >= n),
        "timed out waiting for {n} {what} (got {})",
        counter.load(Ordering::SeqCst)
    );
}

/// Send an admin message and wait for its reply, skipping unrelated
/// frames, until `accept` returns `Some`.
fn admin_await<T: Transport, R>(
    conn: &T,
    msg: &Message,
    accept: impl Fn(&Message) -> Option<R>,
) -> R {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        conn.send(Peer::Master, msg).expect("admin send");
        let attempt_deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < attempt_deadline {
            match conn.recv_timeout(Duration::from_millis(200)) {
                Ok((_, reply)) => {
                    if let Some(r) = accept(&reply) {
                        return r;
                    }
                }
                Err(_) => break,
            }
        }
        assert!(
            Instant::now() < deadline,
            "admin request {msg:?} never answered"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn submit_job(client: &impl Transport, job: u64, first_block: u64) {
    let requests: Vec<BlockRequest> = (0..BLOCKS_PER_JOB)
        .map(|i| BlockRequest {
            block: BlockId(first_block + i),
            bytes: BLOCK_BYTES,
            replicas: (0..3)
                .map(|r| NodeId(((first_block + i) as u32 + r) % SLAVES))
                .collect(),
        })
        .collect();
    client
        .send(
            Peer::Master,
            &Message::RequestMigration {
                job: JobId(job),
                blocks: requests,
                eviction: EvictionMode::Explicit,
                hint: JobHint {
                    expected_launch: SimTime::from_micros(0),
                    total_bytes: BLOCKS_PER_JOB * BLOCK_BYTES,
                },
            },
        )
        .expect("submit job");
}

#[test]
fn tcp_cluster_survives_membership_churn_with_zero_loss() {
    let acceptor =
        TcpAcceptor::bind("127.0.0.1:0", TcpConfig::default()).expect("bind 127.0.0.1:0");
    let addr = acceptor.local_addr().to_string();

    let slave_stop = Arc::new(AtomicBool::new(false));
    let slaves: Vec<_> = (0..SLAVES)
        .map(|n| {
            let addr = addr.clone();
            let stop = Arc::clone(&slave_stop);
            std::thread::spawn(move || {
                let conn = TcpConnector::connect(&addr, Role::Slave, n, TcpConfig::default())
                    .unwrap_or_else(|e| panic!("slave {n} connect: {e:?}"));
                let report = run_slave(&conn, &SlaveConfig::new(NodeId(n)), &stop);
                conn.shutdown();
                report
            })
        })
        .collect();
    assert!(
        acceptor.wait_for_peers(SLAVES as usize, Duration::from_secs(20)),
        "slaves did not all connect: {:?}",
        acceptor.connected_peers()
    );
    let master_stop = Arc::new(AtomicBool::new(false));
    let progress = MasterProgress::default();
    let master = {
        let stop = Arc::clone(&master_stop);
        let progress = progress.clone();
        let acceptor = acceptor;
        std::thread::spawn(move || {
            let report = run_master(
                &acceptor,
                &MasterConfig::new(SLAVES as usize),
                &stop,
                &progress,
            );
            acceptor.shutdown();
            report
        })
    };

    let client = TcpConnector::connect(&addr, Role::Client, 0, TcpConfig::default())
        .expect("client connect");
    let admin = TcpConnector::connect(&addr, Role::Client, 99, TcpConfig::default())
        .expect("admin connect");

    let drain_to_removal = || {
        let code = Membership::Removed.code();
        admin_await(
            &admin,
            &Message::DrainNode { node: CHURN_NODE },
            |reply| match reply {
                Message::DecommissionAck { node, membership }
                    if *node == CHURN_NODE && *membership == code =>
                {
                    Some(())
                }
                _ => None,
            },
        );
    };
    let rejoin = || {
        let code = Membership::Joining.code();
        admin_await(
            &admin,
            &Message::JoinRequest { node: CHURN_NODE },
            |reply| match reply {
                Message::DecommissionAck { node, membership }
                    if *node == CHURN_NODE && *membership == code =>
                {
                    Some(())
                }
                _ => None,
            },
        );
    };
    let checkpoint = || {
        let data = admin_await(&admin, &Message::CheckpointRequest, |reply| match reply {
            Message::Checkpoint { data } => Some(data.clone()),
            _ => None,
        });
        let cp = checkpoint_from_bytes(&data).expect("checkpoint bytes decode");
        assert_eq!(cp.version, dyrs::CHECKPOINT_VERSION);
        assert_eq!(cp.nodes.len(), SLAVES as usize);
        cp
    };

    // Two full churn cycles: drain an (idle) node to removal, run a job
    // without it, snapshot the master, bring the node back through the
    // admission ramp, run another job that can use it again. Each job is
    // evicted before the next drain — a decommissioned machine leaves
    // the cluster with whatever it buffers, so buffers must be released
    // while their host is still a member.
    let mut submitted = 0u64;
    let run_job = |job: u64, first_block: u64, what: &str| {
        submit_job(&client, job, first_block);
        reached(&progress.completed, first_block + BLOCKS_PER_JOB, what);
        client
            .send(Peer::Master, &Message::EvictJobRequest { job: JobId(job) })
            .expect("evict job");
        reached(&progress.evicted, first_block + BLOCKS_PER_JOB, "evictions");
    };
    for cycle in 0..2u64 {
        drain_to_removal();
        run_job(
            2 * cycle + 1,
            submitted * BLOCKS_PER_JOB,
            "migration completions with the churn node removed",
        );
        submitted += 1;
        let cp = checkpoint();
        assert!(
            cp.nodes[CHURN_NODE as usize].removed,
            "checkpoint must capture the decommissioned node"
        );
        rejoin();
        run_job(
            2 * cycle + 2,
            submitted * BLOCKS_PER_JOB,
            "migration completions after the re-join",
        );
        submitted += 1;
    }
    let total = submitted * BLOCKS_PER_JOB;
    admin.shutdown();
    client.shutdown();

    // Orderly shutdown: the counting barrier proves zero loss.
    master_stop.store(true, Ordering::SeqCst);
    let master_report = master.join().expect("master thread");
    slave_stop.store(true, Ordering::SeqCst);
    let slave_reports: Vec<_> = slaves
        .into_iter()
        .map(|h| h.join().expect("slave thread"))
        .collect();

    assert!(
        master_report.errors.is_empty(),
        "master errors: {:?}",
        master_report.errors
    );
    for (n, r) in slave_reports.iter().enumerate() {
        assert!(r.errors.is_empty(), "slave {n} errors: {:?}", r.errors);
    }
    assert_eq!(master_report.completed.len() as u64, total);
    assert!(
        master_report.zero_loss(),
        "master accounting mismatch: sent {:?} received {:?} byes {:?}",
        master_report.sent,
        master_report.received,
        master_report.byes
    );
    for (n, r) in slave_reports.iter().enumerate() {
        assert!(
            r.zero_loss(),
            "slave {n} accounting mismatch: advertised {:?}, received {}",
            r.advertised,
            r.received
        );
    }

    // Zero stranded migrations: every master-side span is terminal and
    // none needed the run-end sweep.
    let spans = master_report.obs.spans();
    assert_eq!(spans.len() as u64, total, "one span per block");
    for (mig, events) in spans {
        let last = events.last().expect("span has events");
        assert!(
            last.state.is_terminal(),
            "migration {mig} ended in non-terminal state {:?}",
            last.state
        );
        assert_ne!(
            last.cause,
            dyrs_obs::cause::RUN_END,
            "migration {mig} was stranded (closed only by run-end)"
        );
    }
}
