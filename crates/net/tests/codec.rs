//! Codec properties: every [`Message`] variant roundtrips through the
//! framed wire format byte-exactly, encoding is deterministic, and the
//! decoder rejects malformed input (truncation, bad magic, oversized
//! lengths, unknown versions, trailing bytes) instead of misparsing it.

use dyrs::master::{BlockRequest, JobHint};
use dyrs::slave::HeartbeatReport;
use dyrs::types::{JobRef, Migration, MigrationId};
use dyrs::EvictionMode;
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_net::frame::{
    self, decode_frame, encode_frame, supported_versions, FrameError, MAX_FRAME,
};
use dyrs_net::wire::{from_bytes, to_bytes, DecodeError};
use dyrs_net::{Message, Role, StatsScope, PROTOCOL_VERSION};
use dyrs_obs::{FlightEntry, FlightRecord, GaugeSample, StatsSnapshot};
use proptest::prelude::*;
use proptest::{Strategy, TestRng};
use simkit::SimTime;

// ---------------------------------------------------------------------------
// Generators: one arbitrary value per payload type, then an arbitrary
// Message covering ALL eighteen variants (the tag is drawn uniformly).
// ---------------------------------------------------------------------------

fn arb_f64(rng: &mut TestRng) -> f64 {
    // Finite and positive: the wire moves any bit pattern, but Message's
    // PartialEq (and the daemons) never deal in NaN, and NaN != NaN would
    // fail the roundtrip equality check for the wrong reason.
    rng.unit_f64() * 1e6
}

fn arb_string(rng: &mut TestRng) -> String {
    let len = rng.below(24) as usize;
    (0..len)
        .map(|_| char::from(b' ' + rng.below(95) as u8))
        .collect()
}

fn arb_job_ref(rng: &mut TestRng) -> JobRef {
    JobRef {
        job: JobId(rng.next_u64()),
        eviction: if rng.below(2) == 0 {
            EvictionMode::Explicit
        } else {
            EvictionMode::Implicit
        },
    }
}

fn arb_migration(rng: &mut TestRng) -> Migration {
    Migration {
        id: MigrationId(rng.next_u64()),
        block: BlockId(rng.next_u64()),
        bytes: rng.next_u64(),
        jobs: (0..rng.below(4)).map(|_| arb_job_ref(rng)).collect(),
        replicas: (0..rng.below(4))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect(),
        attempt: rng.below(5) as u32,
        dest_tier: rng.below(4) as u8,
    }
}

fn arb_block_request(rng: &mut TestRng) -> BlockRequest {
    BlockRequest {
        block: BlockId(rng.next_u64()),
        bytes: rng.next_u64(),
        replicas: (0..rng.below(4))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect(),
    }
}

fn arb_stats_scope(rng: &mut TestRng) -> StatsScope {
    match rng.below(4) {
        0 => StatsScope::Local,
        1 => StatsScope::Node(rng.below(64) as u32),
        2 => StatsScope::LocalFlight,
        _ => StatsScope::NodeFlight(rng.below(64) as u32),
    }
}

fn arb_gauge_sample(rng: &mut TestRng) -> GaugeSample {
    GaugeSample {
        name: arb_string(rng),
        key: rng.next_u64(),
        value: arb_f64(rng),
        at: SimTime::from_micros(rng.next_u64() >> 16),
    }
}

fn arb_snapshot(rng: &mut TestRng) -> StatsSnapshot {
    StatsSnapshot {
        at: SimTime::from_micros(rng.next_u64() >> 16),
        enabled: rng.below(2) == 0,
        counters: (0..rng.below(4))
            .map(|_| (arb_string(rng), rng.next_u64()))
            .collect(),
        gauges: (0..rng.below(4)).map(|_| arb_gauge_sample(rng)).collect(),
        open_spans: (0..rng.below(4))
            .map(|_| (arb_string(rng), rng.next_u64()))
            .collect(),
        top_winners: (0..rng.below(4))
            .map(|_| (rng.below(64) as u32, rng.next_u64()))
            .collect(),
    }
}

fn arb_flight_record(rng: &mut TestRng) -> FlightRecord {
    FlightRecord {
        reason: arb_string(rng),
        node: if rng.below(2) == 0 {
            Some(rng.below(64) as u32)
        } else {
            None
        },
        at: SimTime::from_micros(rng.next_u64() >> 16),
        dropped: rng.next_u64(),
        entries: (0..rng.below(4))
            .map(|_| FlightEntry {
                at: SimTime::from_micros(rng.next_u64() >> 16),
                migration: rng.next_u64(),
                block: rng.next_u64(),
                state: arb_string(rng),
                node: if rng.below(2) == 0 {
                    Some(rng.below(64) as u32)
                } else {
                    None
                },
                cause: arb_string(rng),
            })
            .collect(),
    }
}

fn arb_message(rng: &mut TestRng) -> Message {
    match rng.below(18) {
        0 => Message::Hello {
            role: if rng.below(2) == 0 {
                Role::Slave
            } else {
                Role::Client
            },
            node: rng.below(1 << 16) as u32,
            min_version: rng.below(8) as u16,
            max_version: rng.below(8) as u16,
        },
        1 => Message::Welcome {
            version: rng.below(8) as u16,
        },
        2 => Message::Reject {
            reason: arb_string(rng),
        },
        3 => Message::Heartbeat {
            node: NodeId(rng.below(64) as u32),
            report: HeartbeatReport {
                secs_per_byte: arb_f64(rng),
                queued_bytes: rng.next_u64(),
                queue_space: rng.below(1 << 20) as usize,
            },
            at: SimTime::from_micros(rng.next_u64() >> 16),
        },
        4 => Message::MigrationComplete {
            node: NodeId(rng.below(64) as u32),
            block: BlockId(rng.next_u64()),
        },
        5 => Message::Evicted {
            node: NodeId(rng.below(64) as u32),
            block: BlockId(rng.next_u64()),
        },
        6 => Message::Bye {
            sent: rng.next_u64(),
        },
        7 => Message::Bind {
            migrations: (0..rng.below(5)).map(|_| arb_migration(rng)).collect(),
        },
        8 => Message::AddRef {
            block: BlockId(rng.next_u64()),
            job: arb_job_ref(rng),
        },
        9 => Message::Revoke {
            block: BlockId(rng.next_u64()),
        },
        10 => Message::EvictJob {
            job: JobId(rng.next_u64()),
        },
        11 => Message::Shutdown {
            sent: rng.next_u64(),
        },
        12 => Message::RequestMigration {
            job: JobId(rng.next_u64()),
            blocks: (0..rng.below(5)).map(|_| arb_block_request(rng)).collect(),
            eviction: if rng.below(2) == 0 {
                EvictionMode::Explicit
            } else {
                EvictionMode::Implicit
            },
            hint: JobHint {
                expected_launch: SimTime::from_micros(rng.next_u64() >> 16),
                total_bytes: rng.next_u64(),
            },
        },
        13 => Message::ReadNotify {
            block: BlockId(rng.next_u64()),
            job: JobId(rng.next_u64()),
        },
        14 => Message::EvictJobRequest {
            job: JobId(rng.next_u64()),
        },
        15 => Message::StatsRequest {
            scope: arb_stats_scope(rng),
        },
        16 => Message::StatsReply {
            scope: arb_stats_scope(rng),
            snapshot: arb_snapshot(rng),
        },
        _ => Message::FlightDump {
            scope: arb_stats_scope(rng),
            record: arb_flight_record(rng),
        },
    }
}

/// Strategy wrapper so `proptest!` can draw whole messages.
#[derive(Debug)]
struct ArbMessage;

impl Strategy for ArbMessage {
    type Value = Message;
    fn generate(&self, rng: &mut TestRng) -> Message {
        arb_message(rng)
    }
}

// ---------------------------------------------------------------------------
// Roundtrip + determinism properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Payload codec: encode → decode is the identity for every variant,
    /// and `from_bytes` consumes every byte it was given.
    #[test]
    fn payload_roundtrips(msg in ArbMessage) {
        let bytes = to_bytes(&msg);
        prop_assert_eq!(bytes[0], msg.tag(), "first byte is the variant tag");
        let back = from_bytes::<Message>(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&msg));
    }

    /// Frame codec: header + payload roundtrips at the negotiated
    /// version and reports the version it decoded.
    #[test]
    fn frame_roundtrips(msg in ArbMessage) {
        let bytes = encode_frame(PROTOCOL_VERSION, &msg);
        prop_assert_eq!(&bytes[0..4], &frame::MAGIC);
        let (ver, back) = match decode_frame(&bytes, supported_versions()) {
            Ok(v) => v,
            Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e}"))),
        };
        prop_assert_eq!(ver, PROTOCOL_VERSION);
        prop_assert_eq!(back, msg);
    }

    /// Encoding is a pure function of the value: two encodes of the same
    /// message are byte-identical (the sorted-collection satellite —
    /// nothing on the wire depends on hash order or ambient state).
    #[test]
    fn encoding_is_deterministic(msg in ArbMessage) {
        prop_assert_eq!(to_bytes(&msg), to_bytes(&msg.clone()));
        prop_assert_eq!(
            encode_frame(PROTOCOL_VERSION, &msg),
            encode_frame(PROTOCOL_VERSION, &msg)
        );
    }

    /// Every strict prefix of a valid frame is rejected, never misread:
    /// header cuts yield `Truncated`, payload cuts yield `Truncated` or a
    /// payload error — but no prefix ever decodes successfully.
    #[test]
    fn truncated_frames_rejected(msg in ArbMessage) {
        let bytes = encode_frame(PROTOCOL_VERSION, &msg);
        for cut in 0..bytes.len() {
            let r = decode_frame(&bytes[..cut], supported_versions());
            prop_assert!(r.is_err(), "prefix of length {cut} decoded: {r:?}");
        }
    }

    /// A frame followed by trailing bytes is a protocol violation, not a
    /// silently-ignored suffix.
    #[test]
    fn trailing_bytes_rejected(msg in ArbMessage) {
        let mut bytes = encode_frame(PROTOCOL_VERSION, &msg);
        bytes.push(0);
        let r = decode_frame(&bytes, supported_versions());
        prop_assert!(r.is_err(), "frame with trailing byte decoded: {r:?}");
    }
}

// ---------------------------------------------------------------------------
// Targeted rejection tests
// ---------------------------------------------------------------------------

#[test]
fn bad_magic_rejected() {
    let mut bytes = encode_frame(PROTOCOL_VERSION, &Message::Bye { sent: 1 });
    bytes[0] = b'X';
    assert_eq!(
        decode_frame(&bytes, supported_versions()),
        Err(FrameError::BadMagic([b'X', b'Y', b'R', b'S']))
    );
}

#[test]
fn unknown_version_rejected() {
    // A frame from a hypothetical future build: valid magic and payload,
    // version outside the supported range.
    let bytes = encode_frame(PROTOCOL_VERSION + 1, &Message::Bye { sent: 1 });
    assert_eq!(
        decode_frame(&bytes, supported_versions()),
        Err(FrameError::UnsupportedVersion(PROTOCOL_VERSION + 1))
    );
    // ...and version 0, predating the protocol.
    let bytes = encode_frame(0, &Message::Bye { sent: 1 });
    assert_eq!(
        decode_frame(&bytes, supported_versions()),
        Err(FrameError::UnsupportedVersion(0))
    );
}

#[test]
fn oversized_length_rejected() {
    // Forge a header whose length field exceeds the cap; the decoder must
    // reject on the header alone without trusting the length.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&frame::MAGIC);
    bytes.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    bytes.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
    assert_eq!(
        decode_frame(&bytes, supported_versions()),
        Err(FrameError::Oversized(MAX_FRAME + 1))
    );
}

#[test]
fn oversized_sequence_inside_payload_rejected() {
    // A Bind whose vec length prefix claims 2^20 + 1 migrations: the
    // payload decoder must refuse before allocating.
    let mut payload = vec![7u8]; // Bind tag
    payload.extend_from_slice(&(dyrs_net::wire::MAX_SEQ_LEN + 1).to_be_bytes());
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&frame::MAGIC);
    bytes.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    bytes.extend_from_slice(&payload);
    assert_eq!(
        decode_frame(&bytes, supported_versions()),
        Err(FrameError::Payload(DecodeError::OversizedSeq(
            dyrs_net::wire::MAX_SEQ_LEN + 1
        )))
    );
}

#[test]
fn unknown_message_tag_rejected() {
    let payload = vec![0xEEu8];
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&frame::MAGIC);
    bytes.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    bytes.extend_from_slice(&payload);
    assert_eq!(
        decode_frame(&bytes, supported_versions()),
        Err(FrameError::Payload(DecodeError::BadTag {
            what: "Message",
            tag: 0xEE
        }))
    );
}

#[test]
fn every_tag_is_covered_by_the_generator() {
    // The roundtrip property is only as strong as its generator: check it
    // actually reaches all eighteen variants.
    let mut rng = TestRng::from_seed(7);
    let mut seen = [false; 18];
    for _ in 0..2_000 {
        seen[arb_message(&mut rng).tag() as usize] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "generator missed a variant: {seen:?}"
    );
}

#[test]
fn oversized_snapshot_reply_rejected_by_frame_cap() {
    // A stats reply is operator traffic riding the same 16 MiB frame cap
    // as the protocol: a pathological snapshot (say a runaway counter
    // namespace) must be refused at the framing layer, not OOM the peer.
    let big_name = "x".repeat(1 << 10);
    let snapshot = StatsSnapshot {
        at: SimTime::from_micros(1),
        enabled: true,
        counters: (0..(MAX_FRAME as u64 / 1024 + 16))
            .map(|i| (big_name.clone(), i))
            .collect(),
        gauges: Vec::new(),
        open_spans: Vec::new(),
        top_winners: Vec::new(),
    };
    let msg = Message::StatsReply {
        scope: StatsScope::Local,
        snapshot,
    };
    let bytes = encode_frame(PROTOCOL_VERSION, &msg);
    assert!(bytes.len() > MAX_FRAME as usize);
    let len = u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
    assert_eq!(
        decode_frame(&bytes, supported_versions()),
        Err(FrameError::Oversized(len))
    );
}
