//! # dyrs-sim — the integrated DYRS simulator
//!
//! Wires the substrate crates into one deterministic event-driven world:
//!
//! * `dyrs-cluster` — nodes, fluid-share disks/NICs/memory buses,
//!   interference;
//! * `dyrs-dfs` — namespace, replicas, NameNode read planning;
//! * `dyrs` — the DYRS master/slaves and the baseline policies;
//! * `dyrs-engine` — jobs, tasks, slot scheduling.
//!
//! The entry point is [`Simulation`]: build it from a [`SimConfig`] and a
//! list of [`JobSpec`](dyrs_engine::JobSpec)s, call [`Simulation::run`],
//! and get a [`SimResult`] with every per-job/per-task/per-node metric the
//! paper's tables and figures are rendered from.
//!
//! ```
//! use dyrs::MigrationPolicy;
//! use dyrs_engine::JobSpec;
//! use dyrs_dfs::JobId;
//! use dyrs_sim::{FileSpec, SimConfig, Simulation};
//! use simkit::SimTime;
//!
//! let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 42);
//! cfg.files.push(FileSpec::new("input", 2 * 256 << 20));
//! let job = JobSpec::map_only(JobId(0), "quick", SimTime::ZERO, vec!["input".into()]);
//! let result = Simulation::new(cfg, vec![job]).run();
//! assert_eq!(result.jobs.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod events;
pub mod result;

pub use config::{FailureEvent, FileSpec, GrayFault, SimConfig};
pub use driver::Simulation;
pub use result::{BlockReadRecord, NodeReport, SimResult};

/// One-line import for simulation scripts and examples.
///
/// ```
/// use dyrs_sim::prelude::*;
///
/// let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 1);
/// cfg.files.push(FileSpec::new("data", 256 << 20));
/// let job = JobSpec::map_only(JobId(0), "j", SimTime::ZERO, vec!["data".into()]);
/// let result = Simulation::new(cfg, vec![job]).run();
/// assert_eq!(result.jobs.len(), 1);
/// ```
pub mod prelude {
    pub use crate::{FailureEvent, FileSpec, GrayFault, SimConfig, SimResult, Simulation};
    pub use dyrs::{DyrsConfig, MigrationOrder, MigrationPolicy};
    pub use dyrs_cluster::{ClusterSpec, InterferenceSchedule, NodeId, NodeSpec};
    pub use dyrs_dfs::JobId;
    pub use dyrs_engine::{EngineConfig, JobSpec};
    pub use simkit::{SimDuration, SimTime};
}
