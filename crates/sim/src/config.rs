//! Simulation configuration.

use dyrs::{DyrsConfig, MigrationPolicy};
use dyrs_cluster::{ClusterSpec, InterferenceSchedule, NodeId};
use dyrs_dfs::JobId;
use dyrs_engine::EngineConfig;
use serde::{Deserialize, Serialize};
use simkit::SimTime;

/// A file that exists in the DFS before the workload starts (all
/// evaluation inputs are cold, pre-existing data).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSpec {
    /// Name (referenced by `JobSpec::input_files`).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
}

impl FileSpec {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, bytes: u64) -> Self {
        FileSpec {
            name: name.into(),
            bytes,
        }
    }
}

/// Failure injections, applied at fixed instants (§III-C).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureEvent {
    /// DYRS master process restart: all soft migration state is lost.
    /// The process comes straight back on the same server ("we can
    /// restart it on the same server and it can immediately start
    /// receiving migration requests", §III-C1).
    MasterRestart {
        /// When it happens.
        at: SimTime,
    },
    /// The master's *server* fails (§III-C1): a new master must be
    /// launched elsewhere and clients rerouted, which takes `reroute`
    /// time — unless the deployment pre-lists a live backup, in which
    /// case `reroute` is (near) zero. While unreachable, migration
    /// requests are lost and slaves cannot bind new work; jobs keep
    /// running, just without migration speedup.
    MasterServerFailure {
        /// When it happens.
        at: SimTime,
        /// Time until the replacement master answers (0 = live backup).
        reroute: simkit::SimDuration,
    },
    /// DYRS slave process restart on one node: its buffers are reclaimed
    /// and the master told to drop state about them.
    SlaveRestart {
        /// When it happens.
        at: SimTime,
        /// Which node's slave restarts.
        node: NodeId,
    },
    /// A job dies without issuing its evict command (§III-C3).
    KillJob {
        /// When it happens.
        at: SimTime,
        /// Which job dies.
        job: JobId,
    },
    /// Whole-server failure: nothing on the node is reachable.
    NodeDown {
        /// When it happens.
        at: SimTime,
        /// Which node fails.
        node: NodeId,
    },
    /// Failed server comes back (with empty memory buffers).
    NodeUp {
        /// When it happens.
        at: SimTime,
        /// Which node recovers.
        node: NodeId,
    },
    /// Operator-initiated drain: the node stops receiving new binds, its
    /// bound-but-unstarted work is re-targeted through the successor
    /// path, and once its queues empty it is decommissioned. In-flight
    /// streams finish naturally — a drain is planned, not a failure.
    DrainNode {
        /// When the drain is requested.
        at: SimTime,
        /// Which node drains.
        node: NodeId,
    },
    /// Operator-initiated (re)join: the node enters the `Joining`
    /// admission ramp and warms back up to full bind candidacy.
    JoinNode {
        /// When the join is requested.
        at: SimTime,
        /// Which node joins.
        node: NodeId,
    },
    /// Master checkpoint immediately followed by a restart that restores
    /// from that checkpoint: scheduler, reference-list, and detector
    /// state survive, so the restarted master rebuilds bindings without
    /// mass-suspecting the fleet (contrast [`FailureEvent::MasterRestart`],
    /// which loses all soft state).
    CheckpointRestart {
        /// When the checkpoint+restart happens.
        at: SimTime,
    },
}

/// Gray-fault injections: the node stays "up" the whole time — nothing
/// crashes, nothing is marked dead — but some part of it silently stops
/// keeping its promises. These are the failures the paper's fail-stop
/// model (§III-C) cannot see and the master's failure detector exists to
/// catch. Every fault flows through the fluid model, so degraded disks and
/// frozen streams contend with real traffic instead of being modeled as
/// instantaneous state flips.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrayFault {
    /// The node's disk silently degrades to `factor_milli`/1000 of its
    /// spec bandwidth (a dying disk, a firmware retry storm). Every stream
    /// on the disk — reads, migrations, repairs — slows down together.
    DiskDegrade {
        /// When the degradation sets in.
        at: SimTime,
        /// Victim node.
        node: NodeId,
        /// New bandwidth as thousandths of spec (e.g. 100 = 1/10th).
        /// Clamped to at least 1 so the resource stays live.
        factor_milli: u64,
    },
    /// The disk recovers to its spec bandwidth.
    DiskRestore {
        /// When the disk recovers.
        at: SimTime,
        /// Recovering node.
        node: NodeId,
    },
    /// The node's heartbeats to the DYRS *master* are lost in
    /// `[at, until)`: the slave process runs, its DFS heartbeats still
    /// reach the NameNode, but the master hears nothing and cannot bind
    /// work to it (a partial network partition or a wedged RPC thread).
    HeartbeatLoss {
        /// Window start.
        at: SimTime,
        /// Victim node.
        node: NodeId,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Migration streams on the node freeze in `[at, until)`: in-flight
    /// and newly started migration reads make (almost) no progress while
    /// everything else on the disk proceeds — a hung IO path that only
    /// afflicts the slave's sequential reads.
    StuckStreams {
        /// Window start.
        at: SimTime,
        /// Victim node.
        node: NodeId,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// The node flaps: `times` crash/recover cycles of `downtime` each,
    /// one every `period`, starting at `at`. Expands into the ordinary
    /// fail-stop [`FailureEvent::NodeDown`]/[`FailureEvent::NodeUp`] pair
    /// so recovery goes through the full rejoin path every cycle.
    Flap {
        /// First crash instant.
        at: SimTime,
        /// Flapping node.
        node: NodeId,
        /// How long each outage lasts.
        downtime: simkit::SimDuration,
        /// Number of crash/recover cycles.
        times: u32,
        /// Spacing between consecutive crashes (must exceed `downtime`).
        period: simkit::SimDuration,
    },
}

impl GrayFault {
    /// When the fault (or its window) begins.
    pub fn at(&self) -> SimTime {
        match self {
            GrayFault::DiskDegrade { at, .. }
            | GrayFault::DiskRestore { at, .. }
            | GrayFault::HeartbeatLoss { at, .. }
            | GrayFault::StuckStreams { at, .. }
            | GrayFault::Flap { at, .. } => *at,
        }
    }
}

/// How master↔slave (and client↔master) interactions travel inside the
/// simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireMode {
    /// Direct method calls on the in-process state machines — the
    /// historical fast path.
    #[default]
    InProcess,
    /// Every interaction is encoded to wire bytes, routed through the
    /// deterministic loopback transport (`dyrs-net`), and decoded on the
    /// far side before touching the state machine. Same virtual clock,
    /// same event order — a run must produce an identical trace digest
    /// in either mode, which is the codec-correctness headline test.
    Loopback,
}

/// Everything needed to build a [`crate::Simulation`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Hardware.
    pub cluster: ClusterSpec,
    /// Migration scheme under test.
    pub policy: MigrationPolicy,
    /// DYRS tunables.
    pub dyrs: DyrsConfig,
    /// Execution-engine tunables.
    pub engine: EngineConfig,
    /// DFS block size.
    pub block_size: u64,
    /// Replication factor.
    pub replication: usize,
    /// RNG seed (placement, Ignem choices, workload jitter).
    pub seed: u64,
    /// Files pre-loaded into the DFS.
    pub files: Vec<FileSpec>,
    /// Disk interference sources.
    pub interference: Vec<InterferenceSchedule>,
    /// Failure injections.
    pub failures: Vec<FailureEvent>,
    /// Gray-fault injections (degraded disks, lost heartbeats, frozen
    /// streams, flapping nodes).
    #[serde(default)]
    pub gray_faults: Vec<GrayFault>,
    /// Hard wall on simulated time (safety net against runaway runs).
    pub horizon: SimTime,
    /// Per-node migration-buffer hard limit override (bytes); `None` uses
    /// the node spec's memory capacity.
    pub mem_limit: Option<u64>,
    /// Re-replicate blocks lost with a failed server (HDFS behaviour).
    /// The repair traffic contends with reads and migrations for disk
    /// bandwidth, exactly like production.
    #[serde(default = "default_re_replication")]
    pub re_replication: bool,
    /// Grace period before repairs start after a node is confirmed down
    /// (HDFS waits ~10 min by default; shortened to simulation timescales).
    #[serde(default = "default_re_replication_delay")]
    pub re_replication_delay: simkit::SimDuration,
    /// Whether protocol interactions go through the wire codec
    /// ([`WireMode::Loopback`]) or direct calls ([`WireMode::InProcess`]).
    #[serde(default)]
    pub wire: WireMode,
    /// Admin-plane scrape cadence. Every `scrape_interval` of simulated
    /// time the driver snapshots the live observability state and pushes
    /// it through the full wire roundtrip (encode → frame → decode),
    /// exactly what answering a `dyrs-node stat` client costs. A scrape
    /// is a pure read: it must not change the trace digest, any exported
    /// series, or the wire-frame accounting (tests/determinism.rs pins
    /// this). `None` disables scraping.
    #[serde(default)]
    pub scrape_interval: Option<simkit::SimDuration>,
    /// Batch failure-detector processing instead of running a full
    /// detector sweep on every heartbeat arrival. With `n` nodes the
    /// per-heartbeat sweep costs O(n) per arrival — O(n²) per heartbeat
    /// round — which dominates large-cluster runs; batched mode defers
    /// the sweep to the periodic retarget pass, processing all arrivals
    /// since the last pass in one O(n) scan. Off by default: the event
    /// stream (and thus every replay digest) is unchanged unless a run
    /// opts in.
    #[serde(default)]
    pub batch_heartbeats: bool,
}

fn default_re_replication() -> bool {
    true
}

fn default_re_replication_delay() -> simkit::SimDuration {
    simkit::SimDuration::from_secs(30)
}

impl SimConfig {
    /// The paper's testbed (§V-A): 7 worker nodes, 256 MB blocks, 3×
    /// replication, defaults everywhere else.
    pub fn paper_default(policy: MigrationPolicy, seed: u64) -> Self {
        SimConfig {
            cluster: ClusterSpec::paper_default(),
            policy,
            dyrs: DyrsConfig::default(),
            engine: EngineConfig::default(),
            block_size: dyrs_dfs::DEFAULT_BLOCK_SIZE,
            replication: dyrs_dfs::DEFAULT_REPLICATION,
            seed,
            files: Vec::new(),
            interference: Vec::new(),
            failures: Vec::new(),
            gray_faults: Vec::new(),
            horizon: SimTime::from_secs(24 * 3600),
            mem_limit: None,
            re_replication: default_re_replication(),
            re_replication_delay: default_re_replication_delay(),
            wire: WireMode::default(),
            scrape_interval: None,
            batch_heartbeats: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let c = SimConfig::paper_default(MigrationPolicy::Dyrs, 1);
        assert_eq!(c.cluster.len(), 7);
        assert_eq!(c.replication, 3);
        assert_eq!(c.block_size, 256 << 20);
        assert!(c.files.is_empty());
    }

    #[test]
    fn file_spec_shorthand() {
        let f = FileSpec::new("x", 10);
        assert_eq!(f.name, "x");
        assert_eq!(f.bytes, 10);
    }
}
