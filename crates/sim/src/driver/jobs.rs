//! Job and task lifecycle: submission → lead-time → scheduling → read →
//! compute → completion.

use super::Simulation;
use crate::events::{Ev, ResourceKind, StreamMeta};
use crate::result::BlockReadRecord;
use dyrs::master::BlockRequest;
use dyrs::types::{EvictionMode, JobRef};
use dyrs_cluster::NodeId;
use dyrs_dfs::{JobId, Medium};
use dyrs_engine::scheduler::SlotKind;
use dyrs_engine::{JobMetrics, JobState, JobStatus, TaskId, TaskMetrics, TaskPhase, TaskState};

fn node_of_task(sim: &Simulation, tid: TaskId) -> NodeId {
    sim.tasks[tid.0 as usize]
        .node
        .expect("running task is placed")
}

impl Simulation {
    /// A job's submission instant: create its state and tasks, fire the
    /// migration request (the paper inserts the migration call in the
    /// job-submitter, §IV-B), and start the lead-time clock.
    pub(crate) fn on_submit_job(&mut self, id: JobId) {
        let spec = self
            .pending_specs
            .remove(&id)
            .expect("submitted job must have a spec");
        let mut state = JobState::new(spec.clone(), self.now);

        // Resolve input files to blocks.
        let file_names: Vec<&str> = spec.input_files.iter().map(|s| s.as_str()).collect();
        let blocks = self.namenode.namespace.blocks_of_files(file_names);
        let mut requests = Vec::with_capacity(blocks.len());
        let mut task_ids = Vec::with_capacity(blocks.len());
        for &b in &blocks {
            let info = self.namenode.blocks.expect(b);
            let bytes = info.size;
            let replicas = info.replicas.clone();
            let tid = TaskId(self.tasks.len() as u64);
            self.tasks.push(TaskState::map(tid, id, b, bytes, self.now));
            self.attempts.push(0);
            self.avoid_node.push(None);
            task_ids.push(tid);
            requests.push(BlockRequest {
                block: b,
                bytes,
                replicas,
            });
        }
        state.set_map_count(task_ids.len());
        self.jobs.insert(id, state);
        self.job_read_bytes.insert(id, (0, 0));

        // Migration request at submission — uses the whole lead-time.
        let eviction = if spec.implicit_eviction {
            EvictionMode::Implicit
        } else {
            EvictionMode::Explicit
        };
        let hint = dyrs::JobHint {
            expected_launch: self.now + self.cfg.engine.platform_overhead + spec.extra_lead_time,
            total_bytes: requests.iter().map(|r| r.bytes).sum(),
        };
        // A migration request to an unreachable master is simply lost —
        // the job proceeds cold (the §III-C1 degradation).
        let outcome = if self.master_reachable() {
            // The submitter's request crosses the wire seam before the
            // master sees it (the paper's job-submitter RPC, §IV-B).
            let (id, requests, eviction, hint) =
                self.wire.request_migration(id, requests, eviction, hint);
            self.master
                .request_migration_hinted(id, requests, eviction, hint)
        } else {
            dyrs::master::RequestOutcome::default()
        };
        for (node, block, jref) in outcome.add_refs {
            let (block, jref) = self.wire.add_ref(node, block, jref);
            self.slaves[node.index()].add_ref(block, jref);
        }
        if !outcome.immediate.is_empty() {
            // Ignem: group by node, bind, and start the disks.
            let mut by_node: Vec<Vec<dyrs::Migration>> = vec![Vec::new(); self.cluster.len()];
            for b in outcome.immediate {
                by_node[b.node.index()].push(b.migration);
            }
            for (i, migs) in by_node.into_iter().enumerate() {
                if !migs.is_empty() {
                    let node = NodeId(i as u32);
                    let migs = self.wire.bind(node, migs);
                    self.slaves[i].on_bind(migs);
                    self.try_start_migrations(node);
                }
            }
        }

        // Tasks become runnable after platform overhead (+ artificial
        // lead-time for the Fig. 11 experiments).
        let launch_at = self.now + self.cfg.engine.platform_overhead + spec.extra_lead_time;
        self.queue.schedule(launch_at, Ev::LaunchJob(id));

        // Empty job (no input): nothing will ever run; complete directly.
        if task_ids.is_empty() && spec.reduce_tasks == 0 {
            self.complete_job(id);
        } else {
            // Defer making tasks ready until LaunchJob.
            let job = self.jobs.get_mut(&id).expect("just inserted");
            job.status = JobStatus::Submitted;
        }
    }

    /// Lead-time elapsed: the job becomes runnable; its containers are
    /// granted over several allocation rounds (YARN pacing), so tasks join
    /// the ready queue in batches rather than all at once.
    pub(crate) fn on_launch_job(&mut self, id: JobId) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return; // killed before launch
        };
        if job.status != JobStatus::Submitted {
            return;
        }
        job.status = JobStatus::Running;
        job.launched_at = Some(self.now);
        // Lead-time utilization (§IV-B): how much of the job's input the
        // migration pipeline made memory-resident before the first task
        // could run. 1.0 means the lead-time fully hid the migration.
        if self.obs.is_enabled() {
            let blocks: Vec<dyrs_dfs::BlockId> = self
                .tasks
                .iter()
                .filter(|t| t.job == id && t.is_map())
                .filter_map(|t| t.block)
                .collect();
            if !blocks.is_empty() {
                let now = self.now;
                let ready = blocks
                    .iter()
                    .filter(|&&b| self.namenode.has_memory_replica(b, now))
                    .count();
                self.obs.gauge(
                    "job.lead_time_ready_fraction",
                    id.0,
                    ready as f64 / blocks.len() as f64,
                );
            }
        }
        let task_ids: std::collections::VecDeque<TaskId> = self
            .tasks
            .iter()
            .filter(|t| t.job == id && t.is_map() && t.phase == TaskPhase::Ready)
            .map(|t| t.id)
            .collect();
        self.ungranted.insert(id, task_ids);
        self.on_grant_containers(id);
    }

    /// One container-grant round: release the next batch of the job's
    /// tasks and re-arm if more remain.
    pub(crate) fn on_grant_containers(&mut self, id: JobId) {
        if !self.job_alive(id) {
            self.ungranted.remove(&id);
            return;
        }
        let Some(queue) = self.ungranted.get_mut(&id) else {
            return;
        };
        for _ in 0..self.cfg.engine.container_grant_per_tick {
            let Some(t) = queue.pop_front() else { break };
            self.tasks[t.0 as usize].ready_at = self.now;
            self.ready_maps.push_back(t);
        }
        if self
            .ungranted
            .get(&id)
            .map(|q| q.is_empty())
            .unwrap_or(true)
        {
            self.ungranted.remove(&id);
        } else {
            self.queue.schedule(
                self.now + self.cfg.engine.container_grant_tick,
                Ev::GrantContainers(id),
            );
        }
        self.kick_schedule();
    }

    /// Debounced scheduling pass: place ready tasks on free slots.
    pub(crate) fn on_schedule(&mut self) {
        self.schedule_pending = false;
        // Map tasks: FIFO with locality preference.
        let mut unplaced = std::collections::VecDeque::new();
        while let Some(tid) = self.ready_maps.pop_front() {
            let t = &self.tasks[tid.0 as usize];
            if t.phase != TaskPhase::Ready || !self.job_alive(t.job) {
                continue; // cancelled / failed job
            }
            let block = t.block.expect("map task");
            let avoid = self.avoid_node[tid.0 as usize];
            // Preference: memory replica holders, then disk replicas —
            // minus the node a previous attempt straggled on.
            let mut preferred = self.namenode.live_memory_replicas(block, self.now);
            preferred.extend(
                self.namenode
                    .blocks
                    .live_replicas(block, |n| self.node_alive(n)),
            );
            preferred.retain(|&n| Some(n) != avoid);
            let placed = self.slots.acquire(SlotKind::Map, &preferred, |n| {
                self.cluster.node(n).up && Some(n) != avoid
            });
            match placed {
                Some(node) => self.start_map_task(tid, node),
                None => {
                    unplaced.push_back(tid);
                    break; // cluster full for maps; keep FIFO order
                }
            }
        }
        while let Some(t) = self.ready_maps.pop_front() {
            unplaced.push_back(t);
        }
        self.ready_maps = unplaced;

        // Reduce tasks: no locality preference.
        let mut unplaced = std::collections::VecDeque::new();
        while let Some(tid) = self.ready_reduces.pop_front() {
            let t = &self.tasks[tid.0 as usize];
            if t.phase != TaskPhase::Ready || !self.job_alive(t.job) {
                continue;
            }
            let placed = self
                .slots
                .acquire(SlotKind::Reduce, &[], |n| self.cluster.node(n).up);
            match placed {
                Some(node) => self.start_reduce_task(tid, node),
                None => {
                    unplaced.push_back(tid);
                    break;
                }
            }
        }
        while let Some(t) = self.ready_reduces.pop_front() {
            unplaced.push_back(t);
        }
        self.ready_reduces = unplaced;
    }

    pub(crate) fn job_alive(&self, id: JobId) -> bool {
        self.jobs
            .get(&id)
            .map(|j| matches!(j.status, JobStatus::Submitted | JobStatus::Running))
            .unwrap_or(false)
    }

    pub(crate) fn node_alive(&self, n: NodeId) -> bool {
        self.cluster.node(n).up
    }

    /// False while a failed master server is being replaced (§III-C1).
    pub(crate) fn master_reachable(&self) -> bool {
        match self.master_down_until {
            Some(until) => self.now >= until,
            None => true,
        }
    }

    fn start_map_task(&mut self, tid: TaskId, node: NodeId) {
        let now = self.now;
        let (job_id, block, bytes) = {
            let t = &mut self.tasks[tid.0 as usize];
            t.node = Some(node);
            t.started_at = Some(now);
            t.phase = TaskPhase::Reading;
            (t.job, t.block.expect("map"), t.bytes)
        };
        if let Some(job) = self.jobs.get_mut(&job_id) {
            if job.first_task_at.is_none() {
                job.first_task_at = Some(now);
            }
        }
        // Plan the read: memory > disk, local > remote.
        let plan = self.namenode.plan_read(block, node, now, |n| {
            self.cluster.node(n).disk.active_streams() as u64
        });
        let Some(mut plan) = plan else {
            // No live replica anywhere: the job cannot make progress.
            self.fail_job(job_id);
            return;
        };
        // Ignem's read path trusts the submission-time binding: if the
        // block is not (yet) in memory, the read is served by the bound
        // node's disk — even when that node is the handicapped one. This
        // is what keeps Ignem's per-node read counts uniform in Fig. 8
        // and what makes it slower than plain HDFS under heterogeneity.
        if self.cfg.policy == dyrs::MigrationPolicy::Ignem && !plan.medium.is_memory() {
            if let Some(target) = self.master.ignem_read_target(block) {
                plan.source = target;
                plan.medium = if target == node {
                    Medium::LocalDisk
                } else {
                    Medium::RemoteDisk
                };
            }
        }
        // A demoted (or tier-targeted) copy on a live replica holder beats
        // a disk read: serve off the fastest middle tier instead. Lowest
        // tier wins, then lowest node id — deterministic. Never fires on
        // the legacy stack (no middle tiers → no residents). Accounting
        // keeps the disk medium: a tier read is not a memory read.
        let mut tier_source: Option<(u8, NodeId)> = None;
        if !plan.medium.is_memory() && self.cfg.policy != dyrs::MigrationPolicy::Ignem {
            for n in self
                .namenode
                .blocks
                .live_replicas(block, |n| self.node_alive(n))
            {
                if let Some(r) = self.slaves[n.index()].tier_resident(block) {
                    let cand = (r.tier.0, n);
                    if tier_source.map(|b| cand < b).unwrap_or(true) {
                        tier_source = Some(cand);
                    }
                }
            }
            if let Some((_, n)) = tier_source {
                plan.source = n;
                plan.medium = if n == node {
                    Medium::LocalDisk
                } else {
                    Medium::RemoteDisk
                };
            }
        }
        {
            let t = &mut self.tasks[tid.0 as usize];
            t.read_medium = Some(plan.medium);
        }
        let (res_node, res_kind, cap) = match plan.medium {
            Medium::LocalMemory => (node, ResourceKind::Membus, self.cfg.engine.mem_read_cap),
            Medium::RemoteMemory => (plan.source, ResourceKind::Nic, self.cfg.engine.mem_read_cap),
            Medium::LocalDisk | Medium::RemoteDisk => match tier_source {
                // A middle-tier device is fast like memory from the
                // client's perspective, so the memory-side read cap
                // applies, not the disk one.
                Some((t, _)) => (
                    plan.source,
                    ResourceKind::Tier(t),
                    self.cfg.engine.mem_read_cap,
                ),
                None => (
                    plan.source,
                    ResourceKind::Disk,
                    self.cfg.engine.disk_read_cap,
                ),
            },
        };
        let attempt = self.attempts[tid.0 as usize];
        let sid = self.start_stream_capped(
            res_node,
            res_kind,
            bytes,
            cap,
            StreamMeta::TaskRead { task: tid, attempt },
        );
        self.task_streams.insert(tid, (res_node, res_kind, sid));
    }

    fn start_reduce_task(&mut self, tid: TaskId, node: NodeId) {
        let now = self.now;
        let (bytes, attempt) = {
            let t = &mut self.tasks[tid.0 as usize];
            t.node = Some(node);
            t.started_at = Some(now);
            t.phase = TaskPhase::Computing;
            (t.bytes, self.attempts[tid.0 as usize])
        };
        let dur = self.cfg.engine.reduce_duration(bytes);
        self.queue
            .schedule(now + dur, Ev::TaskCompute { task: tid, attempt });
    }

    /// A map task's input read stream completed.
    pub(crate) fn on_task_read_done(
        &mut self,
        tid: TaskId,
        attempt: u32,
        served_by: NodeId,
        kind: ResourceKind,
    ) {
        if self.attempts[tid.0 as usize] != attempt
            || self.tasks[tid.0 as usize].phase != TaskPhase::Reading
        {
            return; // stale (task re-executed or cancelled)
        }
        self.task_streams.remove(&tid);
        let now = self.now;
        let (job_id, block, bytes, medium) = {
            let t = &mut self.tasks[tid.0 as usize];
            t.read_done_at = Some(now);
            t.phase = TaskPhase::Computing;
            (
                t.job,
                t.block.expect("map"),
                t.bytes,
                t.read_medium.expect("set at start"),
            )
        };
        // Serving-side accounting.
        if medium.is_memory() {
            self.datanodes[served_by.index()].record_memory_read(bytes);
        } else {
            self.datanodes[served_by.index()].record_disk_read(bytes);
        }
        self.reads.push(BlockReadRecord {
            at: now,
            block,
            source: served_by,
            medium,
            job: job_id,
            bytes,
        });
        let acc = self.job_read_bytes.entry(job_id).or_insert((0, 0));
        if medium.is_memory() {
            acc.0 += bytes;
        }
        acc.1 += bytes;

        // Read notifications (§III-C3, §IV-A): the master cancels a still
        // -pending migration (missed read); the serving slave and any slave
        // holding the bound migration see the read for implicit eviction /
        // queued-cancellation.
        let (block, job_id) = self.wire.read_notify_to_master(block, job_id);
        self.master.on_block_read(block);
        self.notify_read(block, job_id, served_by);

        // Hotness promotion: a read served off a middle tier pulls the
        // block back into memory when the serving slave's policy says so
        // and the copy survived the read notification (a copy whose last
        // interested job just read it is dropped instead — promoting it
        // would pin memory nobody wants).
        if matches!(kind, ResourceKind::Tier(_)) && self.slaves[served_by.index()].promote_on_read()
        {
            let eviction = if self
                .jobs
                .get(&job_id)
                .map(|j| j.spec.implicit_eviction)
                .unwrap_or(false)
            {
                EvictionMode::Implicit
            } else {
                EvictionMode::Explicit
            };
            let r = JobRef {
                job: job_id,
                eviction,
            };
            if self.slaves[served_by.index()].promote(block, r).is_some() {
                self.datanodes[served_by.index()].add_memory_replica(block);
                self.namenode.register_memory_replica(block, served_by);
                self.buffer_series[served_by.index()]
                    .record(now, self.slaves[served_by.index()].buffered_bytes() as f64);
            }
        }

        // Compute phase: map function + (folded-in) shuffle-output write.
        let job = self.jobs.get(&job_id).expect("job exists");
        let shuffle_share = if job.maps_total > 0 {
            job.spec.shuffle_bytes / job.maps_total as u64
        } else {
            0
        };
        let cpu_factor = job.spec.cpu_factor;
        let mut dur = self.cfg.engine.map_compute(bytes, cpu_factor);
        if self.cfg.engine.model_spill_writes {
            // spill hits the mapper's disk as a real stream, overlapped
            // with compute (fire-and-forget; does not gate completion)
            if shuffle_share > 0 {
                self.start_stream(
                    node_of_task(self, tid),
                    ResourceKind::Disk,
                    shuffle_share,
                    StreamMeta::SpillWrite,
                );
            }
        } else {
            // calibrated default: write time folded into the task
            let write_secs = shuffle_share as f64 / self.cfg.engine.shuffle_bw;
            dur += simkit::SimDuration::from_secs_f64(write_secs);
        }
        self.queue
            .schedule(now + dur, Ev::TaskCompute { task: tid, attempt });
    }

    /// A task's compute phase completed.
    pub(crate) fn on_task_compute(&mut self, tid: TaskId, attempt: u32) {
        if self.attempts[tid.0 as usize] != attempt
            || self.tasks[tid.0 as usize].phase != TaskPhase::Computing
        {
            return;
        }
        let now = self.now;
        let (job_id, node, is_map) = {
            let t = &mut self.tasks[tid.0 as usize];
            t.phase = TaskPhase::Done;
            t.done_at = Some(now);
            (t.job, t.node.expect("placed"), t.is_map())
        };
        if !self.job_alive(job_id) {
            // Job was killed mid-flight; slot was already released.
            return;
        }
        self.slots.release(
            node,
            if is_map {
                SlotKind::Map
            } else {
                SlotKind::Reduce
            },
        );
        {
            let t = &self.tasks[tid.0 as usize];
            self.done_tasks.push(TaskMetrics {
                job: job_id,
                is_map,
                node,
                bytes: t.bytes,
                read_medium: t.read_medium,
                read_time: t.read_duration().unwrap_or(simkit::SimDuration::ZERO),
                duration: t.duration().expect("done"),
            });
        }
        let job = self.jobs.get_mut(&job_id).expect("alive");
        if is_map {
            if job.on_map_done(now) {
                // Map stage finished → spawn reduces or finish.
                let reduces = job.spec.reduce_tasks;
                if reduces == 0 {
                    self.complete_job(job_id);
                } else {
                    let share = job.spec.shuffle_bytes / reduces as u64;
                    for _ in 0..reduces {
                        let rid = TaskId(self.tasks.len() as u64);
                        self.tasks.push(TaskState::reduce(rid, job_id, share, now));
                        self.attempts.push(0);
                        self.avoid_node.push(None);
                        self.ready_reduces.push_back(rid);
                    }
                }
            }
        } else if job.on_reduce_done() {
            self.complete_job(job_id);
        }
        self.kick_schedule();
    }

    /// All stages done: finalize metrics, evict the job's migrated data
    /// ("DYRS pro-actively evicts data as jobs finish or read the data",
    /// §V-E3), and submit dependents.
    pub(crate) fn complete_job(&mut self, id: JobId) {
        let now = self.now;
        let job = self.jobs.get_mut(&id).expect("completing unknown job");
        job.status = JobStatus::Completed;
        job.completed_at = Some(now);
        let (mem, total) = self.job_read_bytes.get(&id).copied().unwrap_or((0, 0));
        let input_bytes: u64 = self
            .tasks
            .iter()
            .filter(|t| t.job == id && t.is_map())
            .map(|t| t.bytes)
            .sum();
        let job = self.jobs.get(&id).expect("just updated");
        self.done_jobs.push(JobMetrics {
            job: id,
            name: job.spec.name.clone(),
            input_bytes,
            map_tasks: job.maps_total,
            submitted_at: job.submitted_at,
            completed_at: now,
            duration: job.duration().expect("completed"),
            lead_time: job.lead_time().unwrap_or(simkit::SimDuration::ZERO),
            map_phase: job.map_phase().unwrap_or(simkit::SimDuration::ZERO),
            memory_read_fraction: if total == 0 {
                0.0
            } else {
                mem as f64 / total as f64
            },
        });
        self.jobs_remaining -= 1;

        // Explicit eviction through the master (also a safety net for
        // implicit jobs whose blocks were migrated after their read).
        let evict_id = self.wire.evict_job_request(id);
        let nodes = self.master.evict_job(evict_id);
        for node in nodes {
            let job = self.wire.evict_job(node, evict_id);
            let evictions = self.slaves[node.index()].evict_job(job);
            self.apply_evictions(node, evictions);
        }
        self.resolve_dependents(id);
    }

    /// A job failed (kill injection or unservable read).
    pub(crate) fn fail_job(&mut self, id: JobId) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if matches!(job.status, JobStatus::Completed | JobStatus::Failed) {
            return;
        }
        job.status = JobStatus::Failed;
        self.failed_jobs.push(id);
        self.jobs_remaining -= 1;
        // Cancel in-flight task reads and release slots of running tasks.
        let running: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|t| t.job == id && matches!(t.phase, TaskPhase::Reading | TaskPhase::Computing))
            .map(|t| t.id)
            .collect();
        for tid in running {
            if let Some((n, k, sid)) = self.task_streams.remove(&tid) {
                self.cancel_stream(n, k, sid);
            }
            let t = &mut self.tasks[tid.0 as usize];
            let node = t.node.expect("running task is placed");
            let kind = if t.is_map() {
                SlotKind::Map
            } else {
                SlotKind::Reduce
            };
            t.phase = TaskPhase::Done;
            self.attempts[tid.0 as usize] += 1; // invalidate pending events
            self.slots.release(node, kind);
        }
        // NOTE: deliberately no eviction — a failed job never issues its
        // evict command; the slaves' scavenge pass reclaims its buffers
        // (§III-C3), which the failure tests verify.
        self.resolve_dependents(id);
        self.kick_schedule();
    }

    /// Speculative execution (standard MapReduce straggler mitigation):
    /// kill-and-requeue map tasks running far behind their *peers* —
    /// Hadoop/LATE-style, a task is a straggler relative to the job's
    /// completed-task durations, not an absolute clock. A re-queued task
    /// gets a fresh placement and read plan; by then its block is often
    /// in memory (DYRS) or a less-loaded disk replica is available.
    /// Called once per heartbeat interval.
    pub(crate) fn check_speculation(&mut self) {
        let max_att = self.cfg.engine.speculative_max_attempts;
        if max_att <= 1 {
            return;
        }
        let now = self.now;
        let factor = self.cfg.engine.speculative_factor;
        let slack = self.cfg.engine.speculative_slack;
        let cap = self.cfg.engine.disk_read_cap;
        // Per-job median completed-map duration (the peer baseline).
        let mut per_job: std::collections::BTreeMap<JobId, Vec<f64>> = Default::default();
        for t in &self.done_tasks {
            if t.is_map {
                per_job
                    .entry(t.job)
                    .or_default()
                    .push(t.duration.as_secs_f64());
            }
        }
        let median = |xs: &mut Vec<f64>| -> f64 {
            xs.sort_by(f64::total_cmp);
            xs[xs.len() / 2]
        };
        let baselines: std::collections::BTreeMap<JobId, f64> = per_job
            .into_iter()
            .filter(|(_, xs)| xs.len() >= 4) // need peers to compare against
            .map(|(j, mut xs)| (j, median(&mut xs)))
            .collect();
        let candidates: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|t| {
                t.phase == TaskPhase::Reading
                    && t.read_medium.map(|m| !m.is_memory()).unwrap_or(false)
                    && self.attempts[t.id.0 as usize] + 1 < max_att
            })
            .filter(|t| {
                let elapsed = now.saturating_since(t.started_at.expect("reading"));
                // peer-relative when peers exist, absolute-pace fallback
                let expected = baselines
                    .get(&t.job)
                    .copied()
                    .unwrap_or_else(|| t.bytes as f64 / cap);
                let threshold =
                    simkit::SimDuration::from_secs_f64(expected).mul_f64(factor) + slack;
                elapsed > threshold && self.job_alive(t.job)
            })
            .filter(|t| {
                // A speculative copy only helps if it could read from
                // somewhere better. Under Ignem the read path pins the
                // block to its submission-time binding, so until the block
                // is actually in memory the copy would hit the very same
                // disk — speculation cannot rescue Ignem's stragglers
                // (consistent with the slowdowns the paper measured).
                if self.cfg.policy != dyrs::MigrationPolicy::Ignem {
                    return true;
                }
                let block = t.block.expect("map task");
                self.namenode.has_memory_replica(block, now)
                    || self.master.ignem_read_target(block).is_none()
            })
            .map(|t| t.id)
            .collect();
        for tid in candidates {
            self.speculate(tid);
        }
    }

    fn speculate(&mut self, tid: TaskId) {
        if let Some((n, k, sid)) = self.task_streams.remove(&tid) {
            self.cancel_stream(n, k, sid);
        }
        let node = self.tasks[tid.0 as usize]
            .node
            .expect("reading task placed");
        self.slots.release(node, SlotKind::Map);
        self.speculations += 1;
        // Hadoop never re-runs an attempt on the node it straggled on.
        self.avoid_node[tid.0 as usize] = Some(node);
        self.requeue_task(tid);
        self.kick_schedule();
    }

    fn resolve_dependents(&mut self, completed: JobId) {
        let Some(deps) = self.dependents.remove(&completed) else {
            return;
        };
        for d in deps {
            let remaining = self.waiting_deps.get_mut(&d).expect("dependent registered");
            *remaining -= 1;
            if *remaining == 0 {
                self.waiting_deps.remove(&d);
                let submit_at = self
                    .pending_specs
                    .get(&d)
                    .map(|s| s.submit_at)
                    .unwrap_or(self.now)
                    .max(self.now);
                self.queue.schedule(submit_at, Ev::SubmitJob(d));
            }
        }
    }
}
