//! Failure injection (paper §III-C): master restarts, slave restarts, job
//! kills and whole-server failures. In every case DYRS degrades to plain
//! HDFS behaviour; the only loss is migration speedup.

use super::Simulation;
use crate::config::FailureEvent;
use crate::events::{ResourceKind, StreamMeta};
use dyrs_cluster::NodeId;
use dyrs_engine::scheduler::SlotKind;
use dyrs_engine::{TaskId, TaskPhase};

impl Simulation {
    pub(crate) fn on_failure(&mut self, f: FailureEvent) {
        match f {
            FailureEvent::MasterRestart { .. } => self.master_restart(),
            FailureEvent::MasterServerFailure { reroute, .. } => {
                self.master_restart();
                // New master elsewhere: clients need rerouting before any
                // migration traffic flows again (zero for a live backup).
                self.master_down_until = Some(self.now + reroute);
            }
            FailureEvent::SlaveRestart { node, .. } => self.slave_restart(node),
            FailureEvent::KillJob { job, .. } => self.fail_job(job),
            FailureEvent::NodeDown { node, .. } => self.node_down(node),
            FailureEvent::NodeUp { node, .. } => self.node_up(node),
            FailureEvent::DrainNode { node, .. } => self.drain_node(node),
            FailureEvent::JoinNode { node, .. } => self.join_node(node),
            FailureEvent::CheckpointRestart { .. } => self.checkpoint_restart(),
        }
    }

    /// DYRS master process restart (§III-C1): all soft state lost. The new
    /// master "starts up with no state about which blocks are in memory at
    /// the slaves" — reads fall back to disk until slaves clean up.
    fn master_restart(&mut self) {
        self.soft_state_reset = true;
        self.master.restart();
        self.namenode.clear_memory_registry();
    }

    /// Slave process restart (§III-C2): the OS reclaims buffer space; the
    /// new slave "directs the master to drop state about blocks that were
    /// previously buffered on that server".
    fn slave_restart(&mut self, node: NodeId) {
        self.soft_state_reset = true;
        // Abort any in-flight migrations' disk streams.
        for (_, sid) in std::mem::take(&mut self.active_migration_stream[node.index()]) {
            self.cancel_stream(node, ResourceKind::Disk, sid);
        }
        let dropped = self.slaves[node.index()].restart();
        for block in dropped {
            self.datanodes[node.index()].drop_memory_replica(block);
            self.namenode.unregister_memory_replica(block, node);
            self.master.on_evicted(block);
        }
        // The fresh slave process re-probes its disk before pulling work.
        if self.cluster.node(node).up {
            self.start_calibration(node);
        }
    }

    /// Whole-server failure: everything it serves becomes unreachable.
    /// Reads fail over to surviving replicas; its running tasks re-execute
    /// elsewhere (the compute framework's standard retry).
    fn node_down(&mut self, node: NodeId) {
        if !self.cluster.node(node).up {
            return;
        }
        self.cluster.node_mut(node).up = false;
        self.namenode.mark_dead(node);
        self.master.set_node_up(node, false);

        // Its migration state is gone (same as a slave restart).
        self.slave_restart(node);
        // Interference and background streams die with the node.
        for sid in std::mem::take(&mut self.interference_streams[node.index()]) {
            self.cancel_stream(node, ResourceKind::Disk, sid);
        }
        if let Some(sid) = self.background_stream[node.index()].take() {
            self.cancel_stream(node, ResourceKind::Disk, sid);
        }

        // Reads *served by* this node fail over: cancel and re-plan.
        let served_here: Vec<TaskId> = self
            .task_streams
            .iter()
            .filter(|(_, &(n, _, _))| n == node)
            .map(|(&t, _)| t)
            .collect();
        for tid in served_here {
            let (n, k, sid) = self.task_streams.remove(&tid).expect("listed");
            self.cancel_stream(n, k, sid);
            self.replan_read(tid);
        }

        // HDFS will restore the lost replicas after a grace period.
        self.schedule_re_replication(node);

        // Tasks *running on* this node re-execute from scratch elsewhere.
        let running_here: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|t| {
                t.node == Some(node) && matches!(t.phase, TaskPhase::Reading | TaskPhase::Computing)
            })
            .map(|t| t.id)
            .collect();
        for tid in running_here {
            if let Some((n, k, sid)) = self.task_streams.remove(&tid) {
                self.cancel_stream(n, k, sid);
            }
            let is_map = self.tasks[tid.0 as usize].is_map();
            self.slots.release(
                node,
                if is_map {
                    SlotKind::Map
                } else {
                    SlotKind::Reduce
                },
            );
            self.requeue_task(tid);
        }
        self.kick_schedule();
    }

    /// Failed server comes back with empty buffers.
    fn node_up(&mut self, node: NodeId) {
        if self.cluster.node(node).up {
            return;
        }
        self.cluster.node_mut(node).up = true;
        self.namenode.mark_alive(node, self.now);
        self.master.set_node_up(node, true);
        self.start_calibration(node);
        self.kick_schedule();
    }

    /// Operator drain: the master stops binding to the node and its
    /// bound-but-unstarted work is revoked and re-targeted through the
    /// successor path. Active migration streams are left to finish —
    /// a drain is planned, not a failure, so nothing is lost.
    fn drain_node(&mut self, node: NodeId) {
        let bound = self.master.drain_node(node);
        let queued: std::collections::BTreeSet<dyrs_dfs::BlockId> =
            self.slaves[node.index()].queued_blocks().collect();
        for block in bound {
            if !queued.contains(&block) {
                continue; // in-flight stream: completes naturally
            }
            let block = self.wire.revoke(node, block);
            self.slaves[node.index()].revoke(block);
            self.master.on_drain_unbound(node, block);
        }
        self.emit_membership(node);
        self.maybe_decommission(node);
    }

    /// Operator (re)join: the node enters the `Joining` admission ramp and
    /// re-probes its disk before pulling any work.
    fn join_node(&mut self, node: NodeId) {
        self.master.join_node(node);
        self.emit_membership(node);
        if self.cluster.node(node).up {
            self.start_calibration(node);
        }
    }

    /// If `node` is draining and its queues have emptied, complete the
    /// removal: the master forgets it as a reference target and the
    /// slave's memory buffers are released (the operator is taking the
    /// machine away). Called after drains, completions and heartbeats.
    pub(crate) fn maybe_decommission(&mut self, node: NodeId) {
        if !self.master.drain_complete(node) || !self.master.decommission(node) {
            return;
        }
        let dropped = self.slaves[node.index()].restart();
        for block in dropped {
            self.datanodes[node.index()].drop_memory_replica(block);
            self.namenode.unregister_memory_replica(block, node);
        }
        self.emit_membership(node);
    }

    pub(crate) fn emit_membership(&mut self, node: NodeId) {
        if self.obs.is_enabled() {
            self.obs.gauge(
                "node.membership",
                node.0 as u64,
                self.master.membership(node).as_gauge(),
            );
        }
    }

    /// Master checkpoint immediately followed by a restart restored from
    /// it: the snapshot makes the full encode→decode roundtrip through
    /// the versioned checkpoint codec, so the sim exercises exactly the
    /// bytes `dyrs-node checkpoint` would put on disk. Soft state
    /// survives — no `soft_state_reset`, no memory-registry clear, and
    /// heartbeat timers re-arm so the fleet is not mass-suspected.
    fn checkpoint_restart(&mut self) {
        self.obs.counter_add("membership.checkpoints", 1);
        let bytes = dyrs_net::checkpoint_to_bytes(&self.master.checkpoint());
        let cp = dyrs_net::checkpoint_from_bytes(&bytes)
            .expect("checkpoint roundtrip cannot fail on bytes we just encoded");
        self.master
            .restore_from(&cp)
            .expect("restoring a same-config checkpoint cannot fail");
        // The restarted master re-runs Algorithm 1 over the restored
        // pending set before the next scheduled pass.
        self.master.retarget();
    }

    /// Re-plan an interrupted read on its (still-running) task's node.
    fn replan_read(&mut self, tid: TaskId) {
        let t = &self.tasks[tid.0 as usize];
        if t.phase != TaskPhase::Reading || !self.job_alive(t.job) {
            return;
        }
        let node = t.node.expect("reading task is placed");
        let block = t.block.expect("map task");
        let bytes = t.bytes;
        let job = t.job;
        let plan = self.namenode.plan_read(block, node, self.now, |n| {
            self.cluster.node(n).disk.active_streams() as u64
        });
        let Some(plan) = plan else {
            // Every replica host is down: the read — and the job — fails.
            self.fail_job(job);
            return;
        };
        self.tasks[tid.0 as usize].read_medium = Some(plan.medium);
        let (res_node, res_kind, cap) = match plan.medium {
            dyrs_dfs::Medium::LocalMemory => {
                (node, ResourceKind::Membus, self.cfg.engine.mem_read_cap)
            }
            dyrs_dfs::Medium::RemoteMemory => {
                (plan.source, ResourceKind::Nic, self.cfg.engine.mem_read_cap)
            }
            dyrs_dfs::Medium::LocalDisk | dyrs_dfs::Medium::RemoteDisk => (
                plan.source,
                ResourceKind::Disk,
                self.cfg.engine.disk_read_cap,
            ),
        };
        let attempt = self.attempts[tid.0 as usize];
        let sid = self.start_stream_capped(
            res_node,
            res_kind,
            bytes, // restart from the beginning (HDFS re-reads the block)
            cap,
            StreamMeta::TaskRead { task: tid, attempt },
        );
        self.task_streams.insert(tid, (res_node, res_kind, sid));
    }

    /// Put a task back in the ready queue for a fresh attempt.
    pub(crate) fn requeue_task(&mut self, tid: TaskId) {
        self.attempts[tid.0 as usize] += 1;
        let t = &mut self.tasks[tid.0 as usize];
        t.phase = TaskPhase::Ready;
        t.node = None;
        t.read_medium = None;
        t.started_at = None;
        t.read_done_at = None;
        t.ready_at = self.now;
        if t.is_map() {
            self.ready_maps.push_back(tid);
        } else {
            self.ready_reduces.push_back(tid);
        }
    }
}
