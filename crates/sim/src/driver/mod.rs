//! The simulation driver: owns every component and the event loop.
//!
//! Submodules split the driver by concern:
//!
//! * [`streams`](self) (in `streams.rs`) — fluid-resource plumbing:
//!   starting/cancelling streams, completion dispatch, rescheduling;
//! * `jobs.rs` — job submission, task scheduling and lifecycle;
//! * `migration.rs` — the DYRS protocol: heartbeats, pulls, retargeting,
//!   migration execution, eviction;
//! * `failures.rs` — failure injections.

#[cfg(feature = "verify-audit")]
mod audit;
mod failures;
mod grayfault;
mod jobs;
mod migration;
mod repair;
mod streams;
mod wirelink;

use crate::config::SimConfig;
use crate::events::{Ev, ResourceKind, StreamMeta};
use crate::result::{BlockReadRecord, NodeReport, SimResult};
use dyrs::{Master, Slave};
use dyrs_cluster::{Cluster, NodeId};
use dyrs_dfs::{DataNode, JobId, NameNode};
use dyrs_engine::{JobMetrics, JobSpec, JobState, SlotPool, TaskId, TaskMetrics, TaskState};
use simkit::stats::TimeSeries;
use simkit::{EventQueue, Rng, SimDuration, SimTime, StreamId};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// The integrated DYRS simulation.
///
/// Build with [`Simulation::new`], run with [`Simulation::run`]. One
/// instance simulates one cluster under one policy for one workload; runs
/// are fully deterministic given the config's seed.
pub struct Simulation {
    pub(crate) cfg: SimConfig,
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) cluster: Cluster,
    pub(crate) namenode: NameNode,
    pub(crate) datanodes: Vec<DataNode>,
    pub(crate) master: Master,
    pub(crate) slaves: Vec<Slave>,
    pub(crate) slots: SlotPool,
    /// Live job state, keyed by id (BTreeMap for deterministic iteration).
    pub(crate) jobs: BTreeMap<JobId, JobState>,
    /// Specs not yet submitted (waiting on their dependencies).
    pub(crate) pending_specs: HashMap<JobId, JobSpec>,
    /// Unresolved dependency count per waiting job.
    pub(crate) waiting_deps: HashMap<JobId, usize>,
    /// Reverse dependency edges.
    pub(crate) dependents: HashMap<JobId, Vec<JobId>>,
    /// All tasks; `TaskId` indexes this vector.
    pub(crate) tasks: Vec<TaskState>,
    /// Execution attempt per task (bumped on re-execution after failure).
    pub(crate) attempts: Vec<u32>,
    /// Node a re-executed task must avoid (where its previous attempt ran).
    pub(crate) avoid_node: Vec<Option<NodeId>>,
    /// Tasks awaiting a container grant round, per job.
    pub(crate) ungranted: HashMap<JobId, VecDeque<TaskId>>,
    pub(crate) ready_maps: VecDeque<TaskId>,
    pub(crate) ready_reduces: VecDeque<TaskId>,
    pub(crate) schedule_pending: bool,
    /// Stream payloads in a generational slab; fluid tags are slab keys.
    /// Completion and cancellation both free the slot, so the footprint
    /// tracks concurrent streams, not total streams ever started.
    pub(crate) stream_meta: simkit::Slab<StreamMeta>,
    /// Per-node in-flight migration streams, keyed by block (at most one
    /// entry under the paper's serialized default). BTreeMap: slave
    /// restarts drain this map, and the cancellation order must not
    /// depend on hash order.
    pub(crate) active_migration_stream: Vec<BTreeMap<dyrs_dfs::BlockId, StreamId>>,
    /// Per-node live interference streams.
    pub(crate) interference_streams: Vec<Vec<StreamId>>,
    /// Per-node trace-driven background stream (rate-capped, infinite).
    pub(crate) background_stream: Vec<Option<StreamId>>,
    /// Blocks awaiting a re-replication repair.
    pub(crate) repair_queue: VecDeque<dyrs_dfs::BlockId>,
    /// Per-node: a repair copy is currently reading from this disk.
    pub(crate) repair_active: Vec<bool>,
    /// Completed repair copies.
    pub(crate) repairs_completed: u64,
    /// Events dispatched by the run loop (throughput accounting).
    pub(crate) events_processed: u64,
    /// Admin-plane scrapes performed by the run loop (see
    /// [`SimConfig::scrape_interval`]).
    pub(crate) scrapes: u64,
    /// FNV-1a digest over the dispatched event stream: same scenario +
    /// same seed must reproduce it bit-for-bit (tests/determinism.rs).
    pub(crate) trace_digest: simkit::audit::TraceDigest,
    /// True once a master or slave restart has discarded soft state
    /// (§III-C): cross-component audits that assume the master's view is
    /// authoritative are skipped from then on.
    #[cfg_attr(not(feature = "verify-audit"), allow(dead_code))]
    pub(crate) soft_state_reset: bool,
    /// The DYRS master is unreachable until this instant (master-server
    /// failure, §III-C1). `None` = reachable.
    pub(crate) master_down_until: Option<SimTime>,
    /// Per-node: heartbeats to the DYRS master are lost until this instant
    /// (gray fault). DFS heartbeats to the NameNode are unaffected.
    pub(crate) hb_lost_until: Vec<SimTime>,
    /// Per-node: migration streams are frozen until this instant (gray
    /// fault).
    pub(crate) stuck_until: Vec<SimTime>,
    /// task → (serving node, resource, stream) for cancellation. BTreeMap:
    /// node failures iterate this to find reads served by the dead node,
    /// and the re-plan order must not depend on hash order.
    pub(crate) task_streams: BTreeMap<TaskId, (NodeId, ResourceKind, StreamId)>,
    /// Per-job (memory bytes, total bytes) read accumulators.
    pub(crate) job_read_bytes: HashMap<JobId, (u64, u64)>,
    pub(crate) done_jobs: Vec<JobMetrics>,
    pub(crate) done_tasks: Vec<TaskMetrics>,
    pub(crate) reads: Vec<BlockReadRecord>,
    pub(crate) failed_jobs: Vec<JobId>,
    pub(crate) estimate_series: Vec<TimeSeries>,
    pub(crate) buffer_series: Vec<TimeSeries>,
    /// Measured per-node disk utilization (busy fraction per heartbeat
    /// interval) — the run's own Fig.-1-style trace.
    pub(crate) utilization_series: Vec<TimeSeries>,
    /// Disk busy-time at the previous utilization sample.
    pub(crate) last_disk_busy: Vec<simkit::SimDuration>,
    /// Per-node, per-buffer-tier device busy-time at the previous
    /// heartbeat sample (tier 0 = membus, then `mid_tiers`). Feeds the
    /// `tier.utilization` gauges; read lazily — never advances a
    /// resource, so sampling stays invisible to the event stream.
    pub(crate) last_tier_busy: Vec<Vec<simkit::SimDuration>>,
    pub(crate) jobs_remaining: usize,
    pub(crate) speculations: u64,
    /// Per-node calibration probe start time.
    pub(crate) calib_start: Vec<SimTime>,
    /// Per-node: a calibration probe is currently in flight.
    pub(crate) calib_inflight: Vec<bool>,
    /// Per-node time of the last estimator signal (migration or probe).
    pub(crate) last_estimate_signal: Vec<SimTime>,
    /// Observability recorder shared with the master and every slave
    /// (lifecycle spans, metrics registry, Algorithm 1 provenance). A
    /// zero-sized no-op without the `obs` feature.
    pub(crate) obs: dyrs_obs::ObsHandle,
    /// Seam between the state machines and the wire: direct calls under
    /// `WireMode::InProcess`, encode→loopback→decode under `Loopback`.
    pub(crate) wire: wirelink::WireLink,
    #[allow(dead_code)]
    pub(crate) rng: Rng,
}

impl Simulation {
    /// Build a simulation of `cfg` running `workload`.
    ///
    /// Files in `cfg.files` are created (and replicated) up front; under
    /// the `InstantRam` policy every block additionally gets an in-memory
    /// replica on its first disk replica's node, modeling the paper's
    /// vmtouch setup.
    pub fn new(cfg: SimConfig, workload: Vec<JobSpec>) -> Self {
        let n = cfg.cluster.len();
        assert!(n > 0, "empty cluster");
        let rng = Rng::new(cfg.seed);
        let cluster = cfg.cluster.build();
        // Rack-aware placement kicks in automatically when the cluster
        // spec assigns more than one rack (HDFS's default policy).
        let placement = dyrs_dfs::PlacementPolicy::rack_aware(
            cfg.cluster.racks(),
            cfg.replication,
            rng.derive(1),
        );
        let mut namenode =
            NameNode::with_placement(placement, n as u32, cfg.dyrs.heartbeat_interval * 3);
        let mut datanodes: Vec<DataNode> =
            (0..n as u32).map(|i| DataNode::new(NodeId(i))).collect();
        // Pre-create all input files.
        for f in &cfg.files {
            let id = namenode.create_file(f.name.clone(), f.bytes, cfg.block_size);
            let meta = namenode.namespace.get(id).expect("just created").clone();
            for &b in &meta.blocks {
                for &r in &namenode.blocks.expect(b).replicas.clone() {
                    datanodes[r.index()].add_disk_replica(b);
                }
            }
        }
        // InstantRam: pin everything in memory before the workload starts.
        if cfg.policy == dyrs::MigrationPolicy::InstantRam {
            let all: Vec<(dyrs_dfs::BlockId, NodeId)> = namenode
                .blocks
                .iter()
                .map(|b| (b.id, b.replicas[0]))
                .collect();
            for (b, node) in all {
                datanodes[node.index()].add_memory_replica(b);
                namenode.register_memory_replica(b, node);
            }
        }
        let obs = dyrs_obs::ObsHandle::new();
        let mut master = Master::new(cfg.policy, n, cfg.cluster.nodes[0].disk_bw, rng.derive(2));
        master.set_order(cfg.dyrs.migration_order);
        master.set_sched_config(cfg.dyrs.scheduler);
        master.attach_obs(obs.clone());
        master.configure_detector(cfg.dyrs.failure_detector.clone());
        let mem_limit = |spec_cap: u64| cfg.mem_limit.unwrap_or(spec_cap);
        let slaves: Vec<Slave> = cfg
            .cluster
            .nodes
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let stack = s.tier_stack();
                let mut caps = stack.buffer_capacities();
                caps[0] = mem_limit(caps[0]);
                let policy = dyrs::TierPolicy::new(cfg.dyrs.tier_policy, rng.derive(4 + i as u64));
                let mut sl = Slave::new_tiered(
                    NodeId(i as u32),
                    cfg.dyrs.clone(),
                    s.disk_bw,
                    &caps,
                    cfg.block_size,
                    policy,
                );
                sl.attach_obs(obs.clone());
                sl
            })
            .collect();
        // Tell Algorithm 1 which destination tiers each node offers. The
        // Baseline policy only ever targets memory at factor 1.0 —
        // identical to the scheduler's default, so legacy runs see no
        // state change at all.
        let dest_policy = dyrs::TierPolicy::new(cfg.dyrs.tier_policy, rng.derive(4));
        for (i, s) in cfg.cluster.nodes.iter().enumerate() {
            let dests: Vec<(u8, f64)> = dest_policy
                .dest_tiers(&s.tier_stack())
                .into_iter()
                .map(|(t, f)| (t.0, f))
                .collect();
            master.set_node_tiers(NodeId(i as u32), dests);
        }
        let slots = SlotPool::new(
            n,
            cfg.engine.map_slots_per_node,
            cfg.engine.reduce_slots_per_node,
        );

        let mut sim = Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(1024),
            cluster,
            namenode,
            datanodes,
            master,
            slaves,
            slots,
            jobs: BTreeMap::new(),
            pending_specs: HashMap::new(),
            waiting_deps: HashMap::new(),
            dependents: HashMap::new(),
            tasks: Vec::new(),
            attempts: Vec::new(),
            avoid_node: Vec::new(),
            ungranted: HashMap::new(),
            ready_maps: VecDeque::new(),
            ready_reduces: VecDeque::new(),
            schedule_pending: false,
            stream_meta: simkit::Slab::new(),
            active_migration_stream: vec![BTreeMap::new(); n],
            interference_streams: vec![Vec::new(); n],
            background_stream: vec![None; n],
            repair_queue: VecDeque::new(),
            repair_active: vec![false; n],
            repairs_completed: 0,
            events_processed: 0,
            scrapes: 0,
            trace_digest: simkit::audit::TraceDigest::new(),
            soft_state_reset: false,
            master_down_until: None,
            hb_lost_until: vec![SimTime::ZERO; n],
            stuck_until: vec![SimTime::ZERO; n],
            task_streams: BTreeMap::new(),
            job_read_bytes: HashMap::new(),
            done_jobs: Vec::new(),
            done_tasks: Vec::new(),
            reads: Vec::new(),
            failed_jobs: Vec::new(),
            estimate_series: vec![TimeSeries::new(); n],
            buffer_series: vec![TimeSeries::new(); n],
            utilization_series: vec![TimeSeries::new(); n],
            last_disk_busy: vec![simkit::SimDuration::ZERO; n],
            last_tier_busy: cfg
                .cluster
                .nodes
                .iter()
                .map(|s| vec![simkit::SimDuration::ZERO; s.tier_stack().num_buffer_tiers()])
                .collect(),
            jobs_remaining: workload.len(),
            speculations: 0,
            calib_start: vec![SimTime::ZERO; n],
            calib_inflight: vec![false; n],
            last_estimate_signal: vec![SimTime::ZERO; n],
            obs,
            wire: wirelink::WireLink::new(cfg.wire, n),
            rng: rng.derive(3),
            cfg,
        };
        sim.seed_events(workload);
        sim
    }

    fn seed_events(&mut self, workload: Vec<JobSpec>) {
        // Initial heartbeats: register every slave immediately so the
        // master and NameNode know the cluster before any job arrives,
        // then stagger by 50 ms per node to avoid artificial lockstep.
        for node in 0..self.cluster.len() as u32 {
            self.namenode.heartbeat(NodeId(node), SimTime::ZERO);
            self.queue.schedule(
                SimTime::from_millis(50 * node as u64),
                Ev::Heartbeat(NodeId(node)),
            );
        }
        if self.cfg.policy.uses_targeting() {
            self.queue.schedule(
                SimTime::ZERO + self.cfg.dyrs.retarget_interval,
                Ev::Retarget,
            );
        }
        // Interference: trace-driven schedules become background-load
        // samples; on/off patterns become toggles.
        for sched in self.cfg.interference.clone() {
            if let Some(samples) = sched.background_samples(self.cfg.horizon) {
                for (at, u) in samples {
                    self.queue.schedule(
                        at,
                        Ev::Background {
                            node: sched.node,
                            frac_milli: (u * 1000.0).round() as u64,
                        },
                    );
                }
                continue;
            }
            for t in sched.toggles(self.cfg.horizon) {
                self.queue.schedule(
                    t.at,
                    Ev::Interference {
                        node: sched.node,
                        on: t.on,
                        streams: sched.streams,
                        weight_milli: (sched.weight * 1000.0).round() as u64,
                    },
                );
            }
        }
        // Calibration probes: scheduled after the interference toggles so
        // a probe at t=0 measures the disk *with* any t=0 interference
        // already attached (same-time events fire in scheduling order).
        for node in 0..self.cluster.len() as u32 {
            self.queue
                .schedule(SimTime::ZERO, Ev::Calibrate(NodeId(node)));
        }
        // Failure injections.
        for f in self.cfg.failures.clone() {
            let at = match &f {
                crate::config::FailureEvent::MasterRestart { at }
                | crate::config::FailureEvent::MasterServerFailure { at, .. }
                | crate::config::FailureEvent::SlaveRestart { at, .. }
                | crate::config::FailureEvent::KillJob { at, .. }
                | crate::config::FailureEvent::NodeDown { at, .. }
                | crate::config::FailureEvent::NodeUp { at, .. }
                | crate::config::FailureEvent::DrainNode { at, .. }
                | crate::config::FailureEvent::JoinNode { at, .. }
                | crate::config::FailureEvent::CheckpointRestart { at } => *at,
            };
            self.queue.schedule(at, Ev::Failure(f));
        }
        // Gray-fault injections.
        for f in self.cfg.gray_faults.clone() {
            self.queue.schedule(f.at(), Ev::GrayFault(f));
        }
        // Workload: jobs without dependencies are submitted on schedule;
        // dependent jobs wait for completions.
        for spec in workload {
            let id = spec.id;
            let deps = spec.depends_on.clone();
            if deps.is_empty() {
                self.queue.schedule(spec.submit_at, Ev::SubmitJob(id));
                self.pending_specs.insert(id, spec);
            } else {
                self.waiting_deps.insert(id, deps.len());
                for d in deps {
                    self.dependents.entry(d).or_default().push(id);
                }
                self.pending_specs.insert(id, spec);
            }
        }
    }

    /// Drive the event loop to completion and return the results.
    ///
    /// The loop ends when every job has completed or failed (periodic
    /// events alone do not keep it alive), or at the configured horizon.
    pub fn run(mut self) -> SimResult {
        // Admin-plane scrapes are an inline hook, NOT queue events: every
        // dispatched event is folded into the trace digest, so a scrape
        // that entered the queue would change the digest and break the
        // "scraping is invisible" contract (tests/determinism.rs).
        let mut next_scrape = self.cfg.scrape_interval.map(|iv| SimTime::ZERO + iv);
        while self.jobs_remaining > 0 {
            let Some((t, ev)) = self.queue.pop() else {
                break;
            };
            if t > self.cfg.horizon {
                break;
            }
            self.now = t;
            self.obs.set_now(t);
            if let Some(due) = next_scrape {
                if t >= due {
                    self.scrape();
                    let iv = self
                        .cfg
                        .scrape_interval
                        .expect("next_scrape implies interval");
                    let mut d = due + iv;
                    while d <= t {
                        d += iv;
                    }
                    next_scrape = Some(d);
                }
            }
            self.events_processed += 1;
            {
                use std::fmt::Write as _;
                let _ = write!(self.trace_digest, "{t:?}|{ev:?};");
            }
            self.dispatch(ev);
        }
        self.finish()
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::SubmitJob(id) => self.on_submit_job(id),
            Ev::LaunchJob(id) => self.on_launch_job(id),
            Ev::Schedule => self.on_schedule(),
            Ev::StreamDone { node, kind, gen } => self.on_stream_done(node, kind, gen),
            Ev::TaskCompute { task, attempt } => self.on_task_compute(task, attempt),
            Ev::Heartbeat(node) => self.on_heartbeat(node),
            Ev::Retarget => self.on_retarget(),
            Ev::Interference {
                node,
                on,
                streams,
                weight_milli,
            } => self.on_interference(node, on, streams, weight_milli as f64 / 1000.0),
            Ev::Failure(f) => self.on_failure(f),
            Ev::GrayFault(f) => self.on_gray_fault(f),
            Ev::UnstickStreams(node) => self.on_unstick_streams(node),
            Ev::Calibrate(node) => self.start_calibration(node),
            Ev::GrantContainers(job) => self.on_grant_containers(job),
            Ev::Background { node, frac_milli } => {
                self.on_background(node, frac_milli as f64 / 1000.0)
            }
            Ev::ReReplicate(node) => self.on_re_replicate(node),
        }
    }

    /// One admin-plane scrape: take a live snapshot (shared borrows only
    /// — no span opened or closed, no counter or gauge written) and pay
    /// the full wire roundtrip a `dyrs-node stat` client would: encode →
    /// frame → decode for both the request and the reply.
    ///
    /// Deliberately bypasses [`WireLink`](wirelink::WireLink): the hub's
    /// frame/byte counters are exported into the obs report, and a scrape
    /// must leave every exported artifact byte-identical.
    fn scrape(&mut self) {
        let version = dyrs_net::PROTOCOL_VERSION;
        let versions = dyrs_net::frame::supported_versions();
        let req = dyrs_net::frame::encode_frame(
            version,
            &dyrs_net::proto::Message::StatsRequest {
                scope: dyrs_net::proto::StatsScope::Local,
            },
        );
        let (_, decoded) = dyrs_net::frame::decode_frame(&req, versions.clone())
            .expect("scrape request frame roundtrips");
        let scope = match decoded {
            dyrs_net::proto::Message::StatsRequest { scope } => scope,
            other => unreachable!("scrape request decodes as itself, got {other:?}"),
        };
        let reply = dyrs_net::frame::encode_frame(
            version,
            &dyrs_net::proto::Message::StatsReply {
                scope,
                snapshot: self.obs.snapshot(),
            },
        );
        let (_, decoded) =
            dyrs_net::frame::decode_frame(&reply, versions).expect("scrape reply frame roundtrips");
        debug_assert!(matches!(
            decoded,
            dyrs_net::proto::Message::StatsReply { .. }
        ));
        self.scrapes += 1;
    }

    /// Debounced request for a scheduling pass at the current instant.
    pub(crate) fn kick_schedule(&mut self) {
        if !self.schedule_pending {
            self.schedule_pending = true;
            self.queue.schedule(self.now, Ev::Schedule);
        }
    }

    pub(crate) fn hb_interval(&self) -> SimDuration {
        self.cfg.dyrs.heartbeat_interval
    }

    /// Number of live (not yet completed/failed) jobs — exposed for tests.
    pub fn jobs_remaining(&self) -> usize {
        self.jobs_remaining
    }

    fn finish(self) -> SimResult {
        // Whatever cut the run short (last job done, horizon), no span is
        // left dangling: open migrations get a terminal `run-end` abort.
        self.obs.close_dangling(dyrs_obs::cause::RUN_END);
        let wire_frames = self.wire.frames();
        let wire_bytes = self.wire.bytes();
        if wire_frames > 0 {
            self.obs
                .counter_add(dyrs_obs::rpc::WIRE_FRAMES, wire_frames);
            self.obs.counter_add(dyrs_obs::rpc::WIRE_BYTES, wire_bytes);
        }
        let nodes = (0..self.cluster.len())
            .map(|i| {
                let dn = &self.datanodes[i];
                let sl = &self.slaves[i];
                let node = NodeId(i as u32);
                NodeReport {
                    node,
                    disk_reads: dn.disk_reads,
                    memory_reads: dn.memory_reads,
                    disk_bytes: dn.disk_bytes,
                    memory_bytes: dn.memory_bytes,
                    peak_buffer_bytes: sl.memory().peak(),
                    slave: sl.stats(),
                    disk_busy: self.cluster.node(node).disk.busy_time(),
                    estimate_series: self.estimate_series[i].clone(),
                    buffer_series: self.buffer_series[i].clone(),
                    utilization_series: self.utilization_series[i].clone(),
                }
            })
            .collect();
        SimResult {
            jobs: self.done_jobs,
            tasks: self.done_tasks,
            nodes,
            master: self.master.stats(),
            reads: self.reads,
            failed_jobs: self.failed_jobs,
            speculations: self.speculations,
            repairs: self.repairs_completed,
            events_processed: self.events_processed,
            scrapes: self.scrapes,
            trace_digest: self.trace_digest.value(),
            end_time: self.now,
            wire_frames,
            wire_bytes,
            obs: self.obs.take_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FileSpec;
    use dyrs::MigrationPolicy;
    use dyrs_engine::JobSpec;

    fn base_cfg() -> SimConfig {
        SimConfig::paper_default(MigrationPolicy::Dyrs, 1)
    }

    #[test]
    fn empty_workload_terminates_immediately() {
        let r = Simulation::new(base_cfg(), Vec::new()).run();
        assert!(r.jobs.is_empty());
        assert_eq!(r.end_time, SimTime::ZERO);
        assert_eq!(r.master.requested_blocks, 0);
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_rejected() {
        let mut cfg = base_cfg();
        cfg.cluster.nodes.clear();
        let _ = Simulation::new(cfg, Vec::new());
    }

    #[test]
    fn unknown_input_file_completes_as_empty_job() {
        // blocks_of_files skips unknown names → zero map tasks → the job
        // completes immediately rather than wedging the run
        let job = JobSpec::map_only(JobId(0), "j", SimTime::ZERO, vec!["nope".into()]);
        let r = Simulation::new(base_cfg(), vec![job]).run();
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].map_tasks, 0);
    }

    #[test]
    fn jobs_remaining_tracks_progress() {
        let mut cfg = base_cfg();
        cfg.files.push(FileSpec::new("f", 256 << 20));
        let job = JobSpec::map_only(JobId(0), "j", SimTime::ZERO, vec!["f".into()]);
        let sim = Simulation::new(cfg, vec![job]);
        assert_eq!(sim.jobs_remaining(), 1);
        let r = sim.run();
        assert_eq!(r.jobs.len(), 1);
    }

    #[test]
    fn events_are_counted() {
        let mut cfg = base_cfg();
        cfg.files.push(FileSpec::new("f", 4 * (256 << 20)));
        let job = JobSpec::map_only(JobId(0), "j", SimTime::ZERO, vec!["f".into()]);
        let r = Simulation::new(cfg, vec![job]).run();
        assert!(
            r.events_processed > 50,
            "a real run dispatches many events: {}",
            r.events_processed
        );
    }

    #[test]
    fn instant_ram_prepins_every_block() {
        let mut cfg = SimConfig::paper_default(MigrationPolicy::InstantRam, 1);
        cfg.files.push(FileSpec::new("f", 6 * (256 << 20)));
        let job = JobSpec::map_only(JobId(0), "j", SimTime::ZERO, vec!["f".into()]);
        let sim = Simulation::new(cfg, vec![job]);
        assert_eq!(sim.namenode.memory_replica_count(), 6);
        let r = sim.run();
        assert!((r.memory_read_fraction() - 1.0).abs() < 1e-9);
    }
}
