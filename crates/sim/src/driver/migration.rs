//! The DYRS protocol wiring: heartbeats, pulls, retargeting, migration
//! execution, read notifications and evictions.

use super::Simulation;
use crate::events::{Ev, ResourceKind, StreamMeta};
use dyrs::slave::Eviction;
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};

/// Size of the slave startup probe read (small enough to be cheap, large
/// enough to average over interference).
pub(crate) const CALIBRATION_BYTES: u64 = 8 << 20;

/// An idle slave re-probes its disk this often so its advertised estimate
/// tracks current conditions even when no migrations are being assigned
/// to it (without this, a node whose estimate spiked during interference
/// would be avoided forever — the estimate could never recover, unlike
/// the continuous tracking of the paper's Fig. 9).
pub(crate) const REPROBE_INTERVAL: simkit::SimDuration = simkit::SimDuration::from_secs(3);

impl Simulation {
    /// Heartbeat from `node`'s slave: refresh estimates, report to the
    /// master, pull new migrations, record figure series, and scavenge
    /// under memory pressure.
    pub(crate) fn on_heartbeat(&mut self, node: NodeId) {
        // Always re-arm first so heartbeats survive node failures.
        self.queue
            .schedule(self.now + self.hb_interval(), Ev::Heartbeat(node));
        if !self.cluster.node(node).up {
            return;
        }
        if node.index() == 0 {
            self.check_speculation();
        }
        let now = self.now;
        let report = self.slaves[node.index()].on_heartbeat(now);
        // The DFS heartbeat always goes through: a gray heartbeat-loss
        // window only severs the slave ↔ DYRS-master channel, so job reads
        // and replica liveness are unaffected (the node is not dead).
        self.namenode.heartbeat(node, now);
        let hb_lost = now < self.hb_lost_until[node.index()];
        if self.master_reachable() && !hb_lost {
            // The wire seam: under `WireMode::Loopback` the report the
            // master sees is the one that survived encode→frame→decode.
            let report = self.wire.heartbeat(node, report, now);
            self.master
                .on_heartbeat_at(node, report.secs_per_byte, report.queued_bytes, now);

            // Failure-detector pass: this heartbeat's arrival is also the
            // master's chance to notice *other* nodes going quiet or
            // sitting on stuck migrations. Batched mode defers the sweep
            // to the retarget tick — at 1k nodes the per-arrival sweep is
            // an O(n²)-per-round hot spot.
            if self.master.detector_enabled() && !self.cfg.batch_heartbeats {
                let health = self.master.check_health(now);
                self.apply_health_report(health);
            }

            // Delayed binding: the slave pulls just enough work to stay
            // busy until the next heartbeat (§III-A1).
            let pulled = self.master.on_slave_pull(node, report.queue_space);
            if !pulled.is_empty() {
                let pulled = self.wire.bind(node, pulled);
                self.slaves[node.index()].on_bind(pulled);
                self.try_start_migrations(node);
            }
        }
        if self.master.detector_enabled() && self.obs.is_enabled() {
            self.obs.gauge(
                "node.health",
                node.0 as u64,
                self.master.node_health(node).as_gauge(),
            );
        }
        // Membership lifecycle: a draining node whose queues have emptied
        // is decommissioned on the next heartbeat that observes it; the
        // gauge is emitted regardless of detector state (membership is an
        // operator concern, not a failure-detector one).
        self.maybe_decommission(node);
        self.emit_membership(node);

        // Figure series: per-block migration-time estimate (Fig. 9) and
        // buffer footprint (Fig. 7). The estimate is only meaningful once
        // the startup probe has measured the disk.
        if self.slaves[node.index()].is_calibrated() {
            let est = self.slaves[node.index()]
                .estimator()
                .estimate(self.cfg.block_size)
                .as_secs_f64();
            self.estimate_series[node.index()].record(now, est);
            self.obs
                .gauge("node.estimate_secs_per_block", node.0 as u64, est);
        }
        self.buffer_series[node.index()]
            .record(now, self.slaves[node.index()].buffered_bytes() as f64);
        // Measured utilization: disk busy fraction over the last interval.
        // Advance the fluid state first — busy time accrues lazily.
        self.touch(node, crate::events::ResourceKind::Disk);
        let busy = self.cluster.node(node).disk.busy_time();
        let delta = busy.saturating_sub(self.last_disk_busy[node.index()]);
        self.last_disk_busy[node.index()] = busy;
        let util = delta.as_secs_f64() / self.hb_interval().as_secs_f64().max(1e-9);
        self.utilization_series[node.index()].record(now, util.min(1.0));
        if self.obs.is_enabled() {
            let key = node.0 as u64;
            self.obs
                .gauge("node.queue_backlog_bytes", key, report.queued_bytes as f64);
            self.obs.gauge(
                "node.buffer_bytes",
                key,
                self.slaves[node.index()].buffered_bytes() as f64,
            );
            self.obs.gauge("node.disk_utilization", key, util.min(1.0));
            // Per-tier occupancy and device-utilization gauges, keyed
            // `(node << 8) | tier` (tier 0 = memory over the membus).
            // Busy time is read lazily — no resource is advanced, so the
            // sample can never perturb the event stream.
            let iv = self.hb_interval().as_secs_f64().max(1e-9);
            for t in 0..self.slaves[node.index()].memory().num_tiers() {
                let gkey = (key << 8) | t as u64;
                let used = self.slaves[node.index()]
                    .memory()
                    .tier_used(dyrs::TierId(t as u8));
                self.obs.gauge("tier.occupancy_bytes", gkey, used as f64);
                let busy = self
                    .resource(
                        node,
                        if t == 0 {
                            ResourceKind::Membus
                        } else {
                            ResourceKind::Tier(t as u8)
                        },
                    )
                    .busy_time();
                let delta = busy.saturating_sub(self.last_tier_busy[node.index()][t]);
                self.last_tier_busy[node.index()][t] = busy;
                self.obs.gauge(
                    "tier.utilization",
                    gkey,
                    (delta.as_secs_f64() / iv).min(1.0),
                );
            }
        }

        // Idle estimate freshness: if nothing has exercised this disk's
        // estimator recently and no migration is running, send a re-probe.
        if !self.slaves[node.index()].is_migrating()
            && !self.calib_inflight[node.index()]
            && now.saturating_since(self.last_estimate_signal[node.index()]) >= REPROBE_INTERVAL
        {
            self.start_calibration(node);
        }

        // Memory-pressure scavenge (§III-C3): query the scheduler for live
        // jobs and drop references of dead ones.
        if self.slaves[node.index()].needs_scavenge() {
            let alive: std::collections::HashSet<JobId> = self
                .jobs
                .iter()
                .filter(|(_, j)| {
                    matches!(
                        j.status,
                        dyrs_engine::JobStatus::Submitted | dyrs_engine::JobStatus::Running
                    )
                })
                .map(|(&id, _)| id)
                .collect();
            let evictions = self.slaves[node.index()].scavenge(|j| alive.contains(&j));
            self.apply_evictions(node, evictions);
        }

        #[cfg(feature = "verify-audit")]
        self.audit_heartbeat(node);
    }

    /// Act on a failure-detector report: revoke the queued work of newly
    /// suspect nodes and confirm (or refute) stuck-migration flags.
    ///
    /// Terminal-event ownership: [`dyrs::Slave::revoke`] is obs-silent;
    /// the master's `on_unbound` emits the single abort for each revoked
    /// binding and mints the retry successor.
    pub(crate) fn apply_health_report(&mut self, report: dyrs::HealthReport) {
        for node in report.newly_suspect {
            // Unbind bound-but-unstarted migrations so Algorithm 1 can
            // re-target surviving replicas. Active streams are left to the
            // stuck detector — they may well complete.
            let queued: Vec<BlockId> = self.slaves[node.index()].queued_blocks().collect();
            for block in queued {
                let block = self.wire.revoke(node, block);
                self.slaves[node.index()].revoke(block);
                self.master
                    .on_unbound(node, block, dyrs::obs::cause::NODE_SUSPECT);
            }
        }
        for (node, block) in report.stuck {
            // Confirm against the slave before punishing: the completion
            // may simply not have reached the master yet.
            if self.slaves[node.index()].has_pending(block) {
                let block = self.wire.revoke(node, block);
                if let dyrs::slave::Revoked::Active = self.slaves[node.index()].revoke(block) {
                    if let Some(sid) = self.active_migration_stream[node.index()].remove(&block) {
                        self.cancel_stream(node, ResourceKind::Disk, sid);
                    }
                }
                self.master
                    .on_unbound(node, block, dyrs::obs::cause::STUCK_STREAM);
                self.try_start_migrations(node);
            } else {
                // The binding is gone slave-side (completed, evicted, or
                // restarted away): forget the record without a strike.
                self.master.discard_bound(block);
            }
        }
    }

    /// Start a slave's calibration probe: a small raw sequential read that
    /// measures what migration currently costs on this disk. Until it
    /// completes the slave reports zero queue space, so no migration is
    /// ever bound on a stale idle-disk prior.
    pub(crate) fn start_calibration(&mut self, node: NodeId) {
        if !self.cluster.node(node).up || self.calib_inflight[node.index()] {
            return;
        }
        self.calib_inflight[node.index()] = true;
        self.calib_start[node.index()] = self.now;
        self.start_stream(
            node,
            crate::events::ResourceKind::Disk,
            CALIBRATION_BYTES,
            StreamMeta::Calibration { node },
        );
    }

    /// The probe finished: seed the estimator with the measured rate.
    pub(crate) fn on_calibration_done(&mut self, node: NodeId) {
        self.calib_inflight[node.index()] = false;
        self.last_estimate_signal[node.index()] = self.now;
        let dur = self.now.saturating_since(self.calib_start[node.index()]);
        self.slaves[node.index()].calibrate(CALIBRATION_BYTES, dur);
    }

    /// Periodic Algorithm 1 pass.
    pub(crate) fn on_retarget(&mut self) {
        // Batched heartbeat mode: the arrivals since the last pass were
        // recorded without detector sweeps; run the deferred sweep once
        // here, before retargeting, so Algorithm 1 still sees the same
        // liveness view a per-arrival sweep would have converged to.
        if self.cfg.batch_heartbeats && self.master.detector_enabled() {
            let health = self.master.check_health(self.now);
            self.apply_health_report(health);
        }
        self.master.retarget();
        // Scheduler health gauges, one series key per range shard: how
        // much of the pass each shard rescored, and the depth it was
        // working against. A one-shard store emits exactly the legacy
        // key-0 series.
        if self.obs.is_enabled() {
            let rescored = self.master.sched_shard_rescored().to_vec();
            let depths = self.master.sched_shard_depths();
            for (s, (r, d)) in rescored.iter().zip(&depths).enumerate() {
                self.obs.gauge("sched.dirty_entries", s as u64, *r as f64);
                self.obs.gauge("sched.pending_depth", s as u64, *d as f64);
            }
        }
        self.queue
            .schedule(self.now + self.cfg.dyrs.retarget_interval, Ev::Retarget);
    }

    /// Start queued migrations on `node` up to the configured concurrency
    /// (exactly one under the paper's serialized default, §III-B). Called
    /// after binds, completions and evictions.
    pub(crate) fn try_start_migrations(&mut self, node: NodeId) {
        if !self.cluster.node(node).up {
            return;
        }
        let now = self.now;
        let stuck = self.streams_stuck(node);
        while let Some(start) = self.slaves[node.index()].try_start(now) {
            let sid = self.start_stream(
                node,
                ResourceKind::Disk,
                start.bytes,
                StreamMeta::Migration {
                    node,
                    block: start.block,
                },
            );
            if stuck {
                // The node's migration IO path is wedged (gray fault): the
                // new stream starts frozen and thaws with the window.
                self.touch(node, ResourceKind::Disk);
                let _ = self.cluster.node_mut(node).disk.set_stream_cap(
                    now,
                    sid,
                    super::grayfault::FROZEN_STREAM_CAP,
                );
                self.reschedule(node, ResourceKind::Disk);
            }
            self.active_migration_stream[node.index()].insert(start.block, sid);
        }
    }

    /// A migration's disk stream finished: the block is in memory.
    pub(crate) fn on_migration_stream_done(&mut self, node: NodeId, block: BlockId) {
        self.active_migration_stream[node.index()].remove(&block);
        let now = self.now;
        let done = self.slaves[node.index()].on_migration_complete_block(now, block);
        self.last_estimate_signal[node.index()] = now;
        debug_assert_eq!(done.block, block);
        if !done.evicted_immediately {
            if done.tier == 0 {
                self.datanodes[node.index()].add_memory_replica(block);
                self.namenode.register_memory_replica(block, node);
            } else {
                // Middle-tier landing: not a DFS memory replica (reads
                // find it via the slave's tier store), but the device
                // write it cost is real — model it as an overlapped
                // stream on the tier's resource.
                self.start_stream(
                    node,
                    ResourceKind::Tier(done.tier),
                    done.bytes,
                    StreamMeta::TierWrite,
                );
            }
            let (node, block) = self.wire.migration_complete(node, block);
            self.master.on_migration_complete(node, block);
        }
        self.buffer_series[node.index()]
            .record(now, self.slaves[node.index()].buffered_bytes() as f64);
        self.try_start_migrations(node);
    }

    /// Propagate a completed read of `block` by `job` to the migration
    /// layer: the serving slave sees the read directly (implicit-eviction
    /// path, §IV-A1) and the master forwards the missed-read signal to any
    /// slave it bound the block's migration to.
    pub(crate) fn notify_read(&mut self, block: BlockId, job: JobId, served_by: NodeId) {
        let mut notified = [false; 64];
        // `forwarded` marks master-relayed notifications, which travel the
        // wire under `WireMode::Loopback`; the serving slave sees the read
        // directly on its own data path, so that one never hits the wire.
        let mut notify = |sim: &mut Simulation, n: NodeId, forwarded: bool| {
            if !notified[n.index()] {
                notified[n.index()] = true;
                let (block, job) = if forwarded {
                    sim.wire.read_notify_to_slave(n, block, job)
                } else {
                    (block, job)
                };
                let evictions = sim.slaves[n.index()].on_read(block, job);
                sim.apply_evictions(n, evictions);
            }
        };
        notify(self, served_by, false);
        // Slaves holding the block queued or active (bound migrations).
        let holders: Vec<NodeId> = (0..self.cluster.len() as u32)
            .map(NodeId)
            .filter(|&n| self.slaves[n.index()].has_pending(block))
            .collect();
        for n in holders {
            notify(self, n, true);
        }
        // The slave buffering the block (implicit eviction on remote reads).
        if let Some(host) = self.master.memory_location(block) {
            notify(self, host, true);
        }
    }

    /// Apply slave-reported evictions: unregister everywhere and let the
    /// disk pick up any migration that was stalled on memory.
    pub(crate) fn apply_evictions(&mut self, node: NodeId, evictions: Vec<Eviction>) {
        if evictions.is_empty() {
            return;
        }
        for ev in evictions {
            self.datanodes[node.index()].drop_memory_replica(ev.block);
            self.namenode.unregister_memory_replica(ev.block, node);
            if let Some(t) = ev.demoted_to {
                // The demoted copy's write lands on the receiving tier's
                // device — overlapped, like a spill (the tier store has
                // already accounted the occupancy).
                self.start_stream(node, ResourceKind::Tier(t), ev.bytes, StreamMeta::TierWrite);
            }
            let block = self.wire.evicted(node, ev.block);
            self.master.on_evicted(block);
        }
        self.buffer_series[node.index()]
            .record(self.now, self.slaves[node.index()].buffered_bytes() as f64);
        self.try_start_migrations(node);
    }
}
