//! Fluid-resource plumbing: every byte that moves in the simulation moves
//! through here.
//!
//! Invariants:
//!
//! * a resource is always `advance`d to `self.now` before its membership
//!   changes (handled by [`Simulation::touch`]);
//! * after any membership change a fresh `StreamDone` event is scheduled,
//!   stamped with the resource generation; stale events are ignored.

use super::Simulation;
use crate::events::{ResourceKind, StreamMeta};
use dyrs_cluster::NodeId;
use simkit::{FluidResource, StreamId};

impl Simulation {
    pub(crate) fn resource_mut(&mut self, node: NodeId, kind: ResourceKind) -> &mut FluidResource {
        let n = self.cluster.node_mut(node);
        match kind {
            ResourceKind::Disk => &mut n.disk,
            ResourceKind::Membus => &mut n.membus,
            ResourceKind::Nic => &mut n.nic,
            ResourceKind::Tier(t) => n.mid_tier_mut(t),
        }
    }

    pub(crate) fn resource(&self, node: NodeId, kind: ResourceKind) -> &FluidResource {
        let n = self.cluster.node(node);
        match kind {
            ResourceKind::Disk => &n.disk,
            ResourceKind::Membus => &n.membus,
            ResourceKind::Nic => &n.nic,
            ResourceKind::Tier(t) => n.mid_tier(t),
        }
    }

    /// Advance a resource to now, dispatch any completions that fell due,
    /// and reschedule its next completion event.
    pub(crate) fn touch(&mut self, node: NodeId, kind: ResourceKind) {
        let now = self.now;
        let completions = self.resource_mut(node, kind).advance(now);
        for c in completions {
            // Completion frees the metadata slot; a tag that somehow
            // outlived its record resolves to the inert Dead variant.
            let meta = self.stream_meta.take(c.tag).unwrap_or(StreamMeta::Dead);
            self.on_stream_complete(node, kind, meta);
        }
        self.reschedule(node, kind);
    }

    /// Schedule the resource's next completion check.
    pub(crate) fn reschedule(&mut self, node: NodeId, kind: ResourceKind) {
        if let Some(at) = self.resource(node, kind).next_completion() {
            let gen = self.resource(node, kind).generation();
            self.queue.schedule(
                at.max(self.now),
                crate::events::Ev::StreamDone { node, kind, gen },
            );
        }
    }

    /// `StreamDone` event handler: fire only if the generation still
    /// matches (membership changes invalidate in-flight events).
    pub(crate) fn on_stream_done(&mut self, node: NodeId, kind: ResourceKind, gen: u64) {
        if self.resource(node, kind).generation() != gen {
            return; // stale — whoever changed membership rescheduled
        }
        self.touch(node, kind);
    }

    /// Start a stream of `bytes` on `(node, kind)` carrying `meta`.
    /// Uncapped: used for migrations (full-speed sequential reads).
    pub(crate) fn start_stream(
        &mut self,
        node: NodeId,
        kind: ResourceKind,
        bytes: u64,
        meta: StreamMeta,
    ) -> StreamId {
        self.start_stream_capped(node, kind, bytes, f64::INFINITY, meta)
    }

    /// Start a rate-capped stream (application-level task reads).
    pub(crate) fn start_stream_capped(
        &mut self,
        node: NodeId,
        kind: ResourceKind,
        bytes: u64,
        cap: f64,
        meta: StreamMeta,
    ) -> StreamId {
        self.touch(node, kind);
        let tag = self.stream_meta.insert(meta);
        let now = self.now;
        let id = self
            .resource_mut(node, kind)
            .add_stream_capped(now, bytes as f64, 1.0, cap, tag);
        self.reschedule(node, kind);
        id
    }

    /// Start an interference stream (infinite bytes, never completes) with
    /// the configured per-reader weight.
    pub(crate) fn start_interference_stream(&mut self, node: NodeId, weight: f64) -> StreamId {
        self.touch(node, ResourceKind::Disk);
        let tag = self.stream_meta.insert(StreamMeta::Interference);
        let now = self.now;
        let id = self
            .cluster
            .node_mut(node)
            .disk
            .add_stream(now, f64::INFINITY, weight, tag);
        self.reschedule(node, ResourceKind::Disk);
        id
    }

    /// Cancel a stream before completion. Safe to call with an id that
    /// already completed (no-op).
    pub(crate) fn cancel_stream(&mut self, node: NodeId, kind: ResourceKind, id: StreamId) {
        self.touch(node, kind);
        let now = self.now;
        let tag = self.resource(node, kind).stream_tag(id);
        self.resource_mut(node, kind).remove_stream(now, id);
        if let Some(tag) = tag {
            // Cancelled streams used to leak their metadata slot for the
            // life of the run; the slab reclaims it.
            self.stream_meta.take(tag);
        }
        self.reschedule(node, kind);
    }

    /// Completion dispatch.
    fn on_stream_complete(&mut self, node: NodeId, kind: ResourceKind, meta: StreamMeta) {
        match meta {
            StreamMeta::TaskRead { task, attempt } => {
                self.on_task_read_done(task, attempt, node, kind)
            }
            StreamMeta::Migration {
                node: slave_node,
                block,
            } => {
                debug_assert_eq!(node, slave_node, "migration stream on wrong disk");
                self.on_migration_stream_done(slave_node, block);
            }
            StreamMeta::Calibration { node } => self.on_calibration_done(node),
            StreamMeta::SpillWrite => {} // overlapped spill: nothing to do
            StreamMeta::TierWrite => {}  // overlapped demotion write: ditto
            StreamMeta::Repair {
                block,
                source,
                target,
            } => self.on_repair_done(block, source, target),
            StreamMeta::Interference => {
                unreachable!("interference streams are infinite and never complete")
            }
            StreamMeta::Dead => {}
        }
    }

    /// Trace-driven background load: replace the node's background stream
    /// with a rate-capped infinite stream consuming `frac` of its base
    /// disk bandwidth (the §II Google-trace replay).
    pub(crate) fn on_background(&mut self, node: NodeId, frac: f64) {
        if let Some(id) = self.background_stream[node.index()].take() {
            self.cancel_stream(node, ResourceKind::Disk, id);
        }
        if frac <= 0.0 || !self.cluster.node(node).up {
            return;
        }
        let cap = self.cluster.node(node).spec.disk_bw * frac.min(0.99);
        self.touch(node, ResourceKind::Disk);
        let tag = self.stream_meta.insert(StreamMeta::Interference);
        let now = self.now;
        let id =
            self.cluster
                .node_mut(node)
                .disk
                .add_stream_capped(now, f64::INFINITY, 1.0, cap, tag);
        self.reschedule(node, ResourceKind::Disk);
        self.background_stream[node.index()] = Some(id);
    }

    /// Interference toggle handler.
    pub(crate) fn on_interference(&mut self, node: NodeId, on: bool, streams: u32, weight: f64) {
        // Always clear the current state first: toggles are idempotent.
        let existing = std::mem::take(&mut self.interference_streams[node.index()]);
        for id in existing {
            self.cancel_stream(node, ResourceKind::Disk, id);
        }
        if on {
            let ids: Vec<StreamId> = (0..streams)
                .map(|_| self.start_interference_stream(node, weight))
                .collect();
            self.interference_streams[node.index()] = ids;
        }
    }
}
