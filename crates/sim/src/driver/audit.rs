//! Heartbeat-boundary invariant auditing (the `verify-audit` feature).
//!
//! Each component checks its own conservation invariants via
//! [`simkit::audit::Audit`]; this module adds the cross-component checks
//! only the driver can see — the master's per-node backlog view against
//! the slaves' actual queues, binding uniqueness across slaves, and the
//! buffering records against the slaves and DataNodes that hold the
//! bytes. Any violation panics with the full report, pinning the failure
//! to the heartbeat where the invariant first broke.

use super::Simulation;
use dyrs_cluster::NodeId;
use dyrs_dfs::BlockId;
use simkit::audit::{Audit, AuditReport};
use std::collections::BTreeMap;

impl Simulation {
    /// Audit every component at the end of `node`'s heartbeat processing.
    pub(crate) fn audit_heartbeat(&self, node: NodeId) {
        let mut report = AuditReport::new();
        self.master.audit(&mut report);
        for slave in &self.slaves {
            slave.audit(&mut report);
        }

        // Buffering records always trail the truth conservatively: a block
        // the master believes buffered on a node must actually be there,
        // and registered with the DataNode (restarts clear the master's
        // record first, so this direction survives every failure drill).
        for (block, host) in self.master.buffered_locations() {
            report.check(
                self.slaves[host.index()].has_buffered(block),
                "driver",
                "§III-D: the master's buffering records match the slaves",
                || format!("master records {block} on {host}, slave does not hold it"),
            );
            report.check(
                self.datanodes[host.index()].has_memory_replica(block),
                "driver",
                "buffered blocks are registered as memory replicas",
                || format!("{block} buffered on {host} but missing from its DataNode"),
            );
        }

        // The remaining checks assume the master's soft state is
        // authoritative, which stops being true once a restart discards it
        // (§III-C): slaves may then hold bindings the new master never saw.
        if self.soft_state_reset {
            report.assert_clean(&format!("heartbeat({node}) @ {:?}", self.now));
            return;
        }

        // §III-A1: a block's migration is bound to at most one slave, and
        // a block still pending at the master is bound nowhere.
        let mut bound_on: BTreeMap<BlockId, NodeId> = BTreeMap::new();
        for slave in &self.slaves {
            for block in slave.bound_blocks() {
                if let Some(other) = bound_on.insert(block, slave.node) {
                    report.fail(
                        "driver",
                        "§III-A1: a migration is bound to at most one slave",
                        format!("{block} is bound on both {other} and {}", slave.node),
                    );
                }
            }
        }
        for block in self.master.pending_block_ids() {
            if let Some(holder) = bound_on.get(&block) {
                report.fail(
                    "driver",
                    "§III-A1: a pending migration is not yet bound anywhere",
                    format!("{block} is pending at the master but bound on {holder}"),
                );
            }
        }

        // §III-D: the master's queued-bytes view can only overestimate a
        // slave's true backlog between heartbeats (binds grow both sides
        // together; completions, cancellations and evictions shrink the
        // slave first and reach the master at its next heartbeat).
        for (i, slave) in self.slaves.iter().enumerate() {
            let view = self.master.queued_bytes_view(NodeId(i as u32));
            let backlog = slave.backlog_bytes() as f64;
            report.check(
                view + 1.0 >= backlog,
                "driver",
                "§III-D: the master's backlog view bounds the slave's true backlog",
                || format!("node {i}: master sees {view} B, slave holds {backlog} B"),
            );
        }

        report.assert_clean(&format!("heartbeat({node}) @ {:?}", self.now));
    }
}
