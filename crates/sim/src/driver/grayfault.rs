//! Gray-fault injection: faults that degrade a node without killing it.
//!
//! Unlike the fail-stop injections in `failures.rs`, nothing here marks a
//! node down or clears its state — the point is precisely that every
//! component still *looks* alive. Disk degradation and stream freezes are
//! applied to the node's fluid disk resource, so the fault's effect on
//! co-located traffic (task reads, repairs, interference) emerges from the
//! same water-filling model as everything else.

use super::Simulation;
use crate::config::{FailureEvent, GrayFault};
use crate::events::{Ev, ResourceKind};
use dyrs_cluster::NodeId;

/// Rate cap applied to frozen migration streams (bytes/sec). Small enough
/// that no block finishes within any realistic horizon, positive so the
/// fluid model's invariants hold.
pub(crate) const FROZEN_STREAM_CAP: f64 = 1e-3;

impl Simulation {
    pub(crate) fn on_gray_fault(&mut self, f: GrayFault) {
        match f {
            GrayFault::DiskDegrade {
                node, factor_milli, ..
            } => self.disk_degrade(node, factor_milli.max(1) as f64 / 1000.0),
            GrayFault::DiskRestore { node, .. } => self.disk_degrade(node, 1.0),
            GrayFault::HeartbeatLoss { node, until, .. } => {
                let cur = self.hb_lost_until[node.index()];
                self.hb_lost_until[node.index()] = cur.max(until);
            }
            GrayFault::StuckStreams { node, until, .. } => {
                let cur = self.stuck_until[node.index()];
                self.stuck_until[node.index()] = cur.max(until);
                self.set_migration_stream_caps(node, FROZEN_STREAM_CAP);
                self.queue.schedule(until, Ev::UnstickStreams(node));
            }
            GrayFault::Flap {
                node,
                downtime,
                times,
                period,
                ..
            } => {
                // Expand into ordinary fail-stop down/up pairs so recovery
                // exercises the full rejoin path each cycle.
                for k in 0..times as u64 {
                    let down_at = self.now + period * k;
                    let up_at = down_at + downtime;
                    self.queue.schedule(
                        down_at,
                        Ev::Failure(FailureEvent::NodeDown { at: down_at, node }),
                    );
                    self.queue
                        .schedule(up_at, Ev::Failure(FailureEvent::NodeUp { at: up_at, node }));
                }
            }
        }
    }

    /// Set the node's disk to `factor` of its spec bandwidth (1.0 =
    /// restore). In-flight streams are rescheduled under the new rate.
    fn disk_degrade(&mut self, node: NodeId, factor: f64) {
        if !self.cluster.node(node).up {
            return;
        }
        self.touch(node, ResourceKind::Disk);
        let now = self.now;
        let cap = self.cluster.node(node).spec.disk_bw * factor;
        self.cluster.node_mut(node).disk.set_base_capacity(now, cap);
        self.reschedule(node, ResourceKind::Disk);
    }

    /// The stuck-stream window elapsed: thaw any still-frozen migration
    /// streams (those the detector has not already revoked).
    pub(crate) fn on_unstick_streams(&mut self, node: NodeId) {
        if self.now < self.stuck_until[node.index()] {
            return; // a later window extended the freeze
        }
        self.set_migration_stream_caps(node, f64::INFINITY);
    }

    /// True while `node`'s migration streams are inside a freeze window.
    pub(crate) fn streams_stuck(&self, node: NodeId) -> bool {
        self.now < self.stuck_until[node.index()]
    }

    fn set_migration_stream_caps(&mut self, node: NodeId, cap: f64) {
        if self.active_migration_stream[node.index()].is_empty() {
            return;
        }
        self.touch(node, ResourceKind::Disk);
        let now = self.now;
        let ids: Vec<simkit::StreamId> = self.active_migration_stream[node.index()]
            .values()
            .copied()
            .collect();
        for sid in ids {
            // Returns false for streams that completed or were cancelled
            // in the meantime; the map is pruned on those paths, but the
            // touch above may have just completed one.
            let _ = self
                .cluster
                .node_mut(node)
                .disk
                .set_stream_cap(now, sid, cap);
        }
        self.reschedule(node, ResourceKind::Disk);
    }
}
