//! The simulator's seam between the state machines and the wire.
//!
//! Under [`WireMode::InProcess`] every protocol interaction is the
//! direct method call it always was — zero overhead, the historical
//! fast path. Under [`WireMode::Loopback`] the *same* interaction is
//! first packed into a [`Message`], encoded to wire bytes, routed
//! through `dyrs-net`'s deterministic loopback transport, decoded on
//! the far side, and only then applied to the state machine — exactly
//! the bytes the TCP daemons put on a socket.
//!
//! Because the event loop, the virtual clock and the state machines are
//! untouched, a scenario must produce an **identical trace digest** in
//! both modes; `tests/transport.rs` pins that equivalence. Any codec
//! asymmetry (a field dropped, a reordered map, a lossy float) shows up
//! as digest divergence rather than silent corruption.

use crate::config::WireMode;
use dyrs::master::BlockRequest;
use dyrs::types::{EvictionMode, JobRef, Migration};
use dyrs::{HeartbeatReport, JobHint};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_net::loopback::{LoopbackEndpoint, LoopbackHub};
use dyrs_net::proto::Message;
use dyrs_net::transport::{Peer, Transport};
use simkit::SimTime;

/// Routes protocol interactions either directly or through the codec.
pub(crate) enum WireLink {
    /// Direct calls; messages are never materialized.
    InProcess,
    /// Encode → loopback channel → decode for every interaction.
    Loopback {
        hub: LoopbackHub,
        master: LoopbackEndpoint,
        slaves: Vec<LoopbackEndpoint>,
        /// Stand-in for the job-submitter client (migration requests,
        /// read notifications, job-finished evictions).
        client: LoopbackEndpoint,
    },
}

impl WireLink {
    pub(crate) fn new(mode: WireMode, nodes: usize) -> Self {
        match mode {
            WireMode::InProcess => WireLink::InProcess,
            WireMode::Loopback => {
                let hub = LoopbackHub::new();
                let master = hub.endpoint(Peer::Master);
                let slaves = (0..nodes as u32)
                    .map(|n| hub.endpoint(Peer::Slave(n)))
                    .collect();
                let client = hub.endpoint(Peer::Client(0));
                WireLink::Loopback {
                    hub,
                    master,
                    slaves,
                    client,
                }
            }
        }
    }

    /// Total frames moved through the codec (0 in `InProcess` mode).
    pub(crate) fn frames(&self) -> u64 {
        match self {
            WireLink::InProcess => 0,
            WireLink::Loopback { hub, .. } => hub.frames_delivered(),
        }
    }

    /// Total encoded bytes moved (0 in `InProcess` mode).
    pub(crate) fn bytes(&self) -> u64 {
        match self {
            WireLink::InProcess => 0,
            WireLink::Loopback { hub, .. } => hub.bytes_moved(),
        }
    }

    /// Push `msg` from `from`'s endpoint to `to`, then pop and decode it
    /// at the destination. The driver is single-threaded and every send
    /// is immediately received, so the destination inbox holds exactly
    /// this one frame.
    fn route(&self, from: Peer, to: Peer, msg: Message) -> Message {
        let (src, dst) = match self {
            WireLink::InProcess => unreachable!("route is only called in Loopback mode"),
            WireLink::Loopback {
                master,
                slaves,
                client,
                ..
            } => {
                let pick = |p: Peer| -> &LoopbackEndpoint {
                    match p {
                        Peer::Master => master,
                        Peer::Slave(n) => &slaves[n as usize],
                        Peer::Client(_) => client,
                    }
                };
                (pick(from), pick(to))
            }
        };
        src.send(to, &msg).expect("loopback peer is registered");
        let (got_from, decoded) = dst
            .try_recv()
            .expect("loopback frame decodes")
            .expect("frame was just sent");
        debug_assert_eq!(got_from, from);
        decoded
    }

    /// Slave → master heartbeat.
    pub(crate) fn heartbeat(
        &self,
        node: NodeId,
        report: HeartbeatReport,
        at: SimTime,
    ) -> HeartbeatReport {
        match self {
            WireLink::InProcess => report,
            link => {
                let msg = link.route(
                    Peer::Slave(node.0),
                    Peer::Master,
                    Message::Heartbeat { node, report, at },
                );
                let Message::Heartbeat { report, .. } = msg else {
                    unreachable!("heartbeat decodes as heartbeat")
                };
                report
            }
        }
    }

    /// Master → slave binding (delayed-binding pull response, or Ignem's
    /// immediate submission-time binding).
    pub(crate) fn bind(&self, node: NodeId, migrations: Vec<Migration>) -> Vec<Migration> {
        match self {
            WireLink::InProcess => migrations,
            link => {
                let msg = link.route(
                    Peer::Master,
                    Peer::Slave(node.0),
                    Message::Bind { migrations },
                );
                let Message::Bind { migrations } = msg else {
                    unreachable!("bind decodes as bind")
                };
                migrations
            }
        }
    }

    /// Master → slave revocation of a bound migration.
    pub(crate) fn revoke(&self, node: NodeId, block: BlockId) -> BlockId {
        match self {
            WireLink::InProcess => block,
            link => {
                let msg = link.route(Peer::Master, Peer::Slave(node.0), Message::Revoke { block });
                let Message::Revoke { block } = msg else {
                    unreachable!("revoke decodes as revoke")
                };
                block
            }
        }
    }

    /// Slave → master migration-complete report.
    pub(crate) fn migration_complete(&self, node: NodeId, block: BlockId) -> (NodeId, BlockId) {
        match self {
            WireLink::InProcess => (node, block),
            link => {
                let msg = link.route(
                    Peer::Slave(node.0),
                    Peer::Master,
                    Message::MigrationComplete { node, block },
                );
                let Message::MigrationComplete { node, block } = msg else {
                    unreachable!("completion decodes as completion")
                };
                (node, block)
            }
        }
    }

    /// Slave → master eviction report.
    pub(crate) fn evicted(&self, node: NodeId, block: BlockId) -> BlockId {
        match self {
            WireLink::InProcess => block,
            link => {
                let msg = link.route(
                    Peer::Slave(node.0),
                    Peer::Master,
                    Message::Evicted { node, block },
                );
                let Message::Evicted { block, .. } = msg else {
                    unreachable!("eviction decodes as eviction")
                };
                block
            }
        }
    }

    /// Client → master read notification (drives missed-read migration
    /// cancellation on the master).
    pub(crate) fn read_notify_to_master(&self, block: BlockId, job: JobId) -> (BlockId, JobId) {
        match self {
            WireLink::InProcess => (block, job),
            link => {
                let msg = link.route(
                    Peer::Client(0),
                    Peer::Master,
                    Message::ReadNotify { block, job },
                );
                let Message::ReadNotify { block, job } = msg else {
                    unreachable!("read notify decodes as read notify")
                };
                (block, job)
            }
        }
    }

    /// Master → slave forwarded read notification (drives implicit
    /// eviction and queued-migration cancellation on the slave).
    pub(crate) fn read_notify_to_slave(
        &self,
        node: NodeId,
        block: BlockId,
        job: JobId,
    ) -> (BlockId, JobId) {
        match self {
            WireLink::InProcess => (block, job),
            link => {
                let msg = link.route(
                    Peer::Master,
                    Peer::Slave(node.0),
                    Message::ReadNotify { block, job },
                );
                let Message::ReadNotify { block, job } = msg else {
                    unreachable!("read notify decodes as read notify")
                };
                (block, job)
            }
        }
    }

    /// Client → master migration request at job submission.
    #[allow(clippy::type_complexity)]
    pub(crate) fn request_migration(
        &self,
        job: JobId,
        blocks: Vec<BlockRequest>,
        eviction: EvictionMode,
        hint: JobHint,
    ) -> (JobId, Vec<BlockRequest>, EvictionMode, JobHint) {
        match self {
            WireLink::InProcess => (job, blocks, eviction, hint),
            link => {
                let msg = link.route(
                    Peer::Client(0),
                    Peer::Master,
                    Message::RequestMigration {
                        job,
                        blocks,
                        eviction,
                        hint,
                    },
                );
                let Message::RequestMigration {
                    job,
                    blocks,
                    eviction,
                    hint,
                } = msg
                else {
                    unreachable!("request decodes as request")
                };
                (job, blocks, eviction, hint)
            }
        }
    }

    /// Master → slave reference registration (implicit-eviction lists).
    pub(crate) fn add_ref(&self, node: NodeId, block: BlockId, job: JobRef) -> (BlockId, JobRef) {
        match self {
            WireLink::InProcess => (block, job),
            link => {
                let msg = link.route(
                    Peer::Master,
                    Peer::Slave(node.0),
                    Message::AddRef { block, job },
                );
                let Message::AddRef { block, job } = msg else {
                    unreachable!("add-ref decodes as add-ref")
                };
                (block, job)
            }
        }
    }

    /// Client → master explicit eviction when a job finishes.
    pub(crate) fn evict_job_request(&self, job: JobId) -> JobId {
        match self {
            WireLink::InProcess => job,
            link => {
                let msg = link.route(
                    Peer::Client(0),
                    Peer::Master,
                    Message::EvictJobRequest { job },
                );
                let Message::EvictJobRequest { job } = msg else {
                    unreachable!("evict request decodes as evict request")
                };
                job
            }
        }
    }

    /// Master → slave job-eviction fan-out.
    pub(crate) fn evict_job(&self, node: NodeId, job: JobId) -> JobId {
        match self {
            WireLink::InProcess => job,
            link => {
                let msg = link.route(Peer::Master, Peer::Slave(node.0), Message::EvictJob { job });
                let Message::EvictJob { job } = msg else {
                    unreachable!("evict decodes as evict")
                };
                job
            }
        }
    }
}
