//! Re-replication repair (HDFS behaviour): once a failed server's grace
//! period expires, the NameNode restores the replication factor of every
//! block it hosted by copying from a surviving replica to a fresh node.
//!
//! Repairs are serialized per source disk (like HDFS's throttled
//! `dfs.namenode.replication.max-streams`) and their read traffic
//! contends with task reads, migrations and interference on the fluid
//! disk model — failure recovery is not free, exactly as in production.

use super::Simulation;
use crate::events::{Ev, ResourceKind, StreamMeta};
use dyrs_cluster::NodeId;
use dyrs_dfs::BlockId;

impl Simulation {
    /// Schedule the repair scan for a failed node (called by the
    /// `NodeDown` handler when re-replication is enabled).
    pub(crate) fn schedule_re_replication(&mut self, node: NodeId) {
        if !self.cfg.re_replication {
            return;
        }
        self.queue.schedule(
            self.now + self.cfg.re_replication_delay,
            Ev::ReReplicate(node),
        );
    }

    /// Grace period expired: if the node is still down, enqueue one repair
    /// per block it hosted and start pumping them.
    pub(crate) fn on_re_replicate(&mut self, node: NodeId) {
        if self.cluster.node(node).up {
            return; // came back within the grace period — nothing lost
        }
        let lost = self.namenode.blocks.blocks_on(node);
        self.datanodes[node.index()].clear_memory(); // defensive; cheap
        for block in lost {
            // The dead node's copy is gone for good.
            self.namenode.blocks.remove_replica(block, node);
            let survivors = self
                .namenode
                .blocks
                .live_replicas(block, |n| self.cluster.node(n).up);
            if survivors.is_empty() {
                continue; // unrecoverable (all replicas down); reads fail over later
            }
            if survivors.len() >= self.cfg.replication {
                continue; // already fully replicated
            }
            self.repair_queue.push_back(block);
        }
        self.pump_repairs();
    }

    /// Start queued repairs wherever a source disk is free (at most one
    /// repair stream per source node).
    pub(crate) fn pump_repairs(&mut self) {
        let mut requeue = std::collections::VecDeque::new();
        while let Some(block) = self.repair_queue.pop_front() {
            match self.try_start_repair(block) {
                RepairStart::Started => {}
                RepairStart::Busy => requeue.push_back(block),
                RepairStart::Unneeded => {}
            }
        }
        self.repair_queue = requeue;
    }

    fn try_start_repair(&mut self, block: BlockId) -> RepairStart {
        let info = match self.namenode.blocks.get(block) {
            Some(i) => i.clone(),
            None => return RepairStart::Unneeded,
        };
        let live: Vec<NodeId> = info
            .replicas
            .iter()
            .copied()
            .filter(|&n| self.cluster.node(n).up)
            .collect();
        if live.is_empty() || live.len() >= self.cfg.replication {
            return RepairStart::Unneeded;
        }
        // Source: a live holder whose disk has no active repair.
        let source = live
            .iter()
            .copied()
            .find(|&n| !self.repair_active[n.index()]);
        let Some(source) = source else {
            return RepairStart::Busy;
        };
        // Target: live node not holding a replica, fewest disk blocks first
        // (spreads repairs), lowest id tie-break.
        let target = self
            .cluster
            .ids()
            .filter(|&n| self.cluster.node(n).up && !info.replicas.contains(&n))
            .min_by_key(|&n| (self.datanodes[n.index()].disk_block_count(), n));
        let Some(target) = target else {
            return RepairStart::Unneeded; // no eligible target (tiny cluster)
        };
        self.repair_active[source.index()] = true;
        self.start_stream(
            source,
            ResourceKind::Disk,
            info.size,
            StreamMeta::Repair {
                block,
                source,
                target,
            },
        );
        RepairStart::Started
    }

    /// A repair copy finished: the target now hosts a disk replica.
    pub(crate) fn on_repair_done(&mut self, block: BlockId, source: NodeId, target: NodeId) {
        self.repair_active[source.index()] = false;
        if self.cluster.node(target).up {
            self.namenode.blocks.add_replica(block, target);
            self.datanodes[target.index()].add_disk_replica(block);
            self.repairs_completed += 1;
        } else {
            // target died mid-copy: try again elsewhere
            self.repair_queue.push_back(block);
        }
        self.pump_repairs();
    }
}

enum RepairStart {
    Started,
    Busy,
    Unneeded,
}
