//! Event and stream-payload types for the simulation loop.

use crate::config::{FailureEvent, GrayFault};
use dyrs_cluster::NodeId;
use dyrs_dfs::BlockId;
use dyrs_engine::TaskId;

/// Which fluid resource of a node a stream lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Spinning disk.
    Disk,
    /// Memory bus (local in-memory reads).
    Membus,
    /// NIC (remote in-memory reads).
    Nic,
    /// A middle buffer tier's device (NVMe/SSD between memory and the
    /// backing disk), tier index `1..`. Never constructed on the legacy
    /// 2-tier stack, so legacy trace digests are unaffected.
    Tier(u8),
}

/// What a fluid stream means. Streams carry a `u64` tag that indexes the
/// simulation's stream-metadata slab holding one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMeta {
    /// A task's input read; `attempt` guards against stale events after a
    /// task is re-executed (node failure).
    TaskRead {
        /// The reading task.
        task: TaskId,
        /// Its execution attempt.
        attempt: u32,
    },
    /// A DYRS migration running on `node`'s disk.
    Migration {
        /// The migrating slave's node.
        node: NodeId,
        /// The block being migrated.
        block: BlockId,
    },
    /// An interference reader (never completes, only cancelled).
    Interference,
    /// A slave's startup probe read measuring current disk conditions.
    Calibration {
        /// The probing slave's node.
        node: NodeId,
    },
    /// A re-replication repair copy: reading `block` from `source`'s disk
    /// to restore full replication on `target`.
    Repair {
        /// The block being re-replicated.
        block: BlockId,
        /// Node serving the copy.
        source: NodeId,
        /// Node receiving the new replica.
        target: NodeId,
    },
    /// A map task's shuffle-spill write (fire-and-forget disk load; does
    /// not gate task completion, mirroring overlapped spills).
    SpillWrite,
    /// A demotion's write landing on a middle buffer tier's device
    /// (fire-and-forget: the copy is already accounted in the tier store;
    /// the stream only models the device occupancy it costs).
    TierWrite,
    /// Slot already reclaimed (stream was cancelled).
    Dead,
}

/// Simulation events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ev {
    /// A job's (dependency-resolved) submission instant.
    SubmitJob(dyrs_dfs::JobId),
    /// A job's lead-time elapsed: its tasks become runnable.
    LaunchJob(dyrs_dfs::JobId),
    /// Debounced scheduling pass.
    Schedule,
    /// Possible completion on a node's fluid resource; `gen` detects
    /// staleness after membership changes.
    StreamDone {
        /// Node owning the resource.
        node: NodeId,
        /// Which resource.
        kind: ResourceKind,
        /// Resource generation at scheduling time.
        gen: u64,
    },
    /// A task's compute phase finished.
    TaskCompute {
        /// The task.
        task: TaskId,
        /// Its execution attempt.
        attempt: u32,
    },
    /// Slave heartbeat (also drives pulls, estimate refresh, series).
    Heartbeat(NodeId),
    /// Master retargeting pass (Algorithm 1).
    Retarget,
    /// Interference toggle.
    Interference {
        /// Victim node.
        node: NodeId,
        /// Turn on (true) or off (false).
        on: bool,
        /// Number of reader streams when turning on.
        streams: u32,
        /// Fluid weight per reader stream (micro-units: weight × 1000,
        /// kept integral so `Ev` stays `Eq`).
        weight_milli: u64,
    },
    /// A failure injection fires.
    Failure(FailureEvent),
    /// A gray-fault injection fires.
    GrayFault(GrayFault),
    /// A node's stuck-stream window ended: thaw its frozen migration
    /// streams.
    UnstickStreams(NodeId),
    /// Start a slave's calibration probe read.
    Calibrate(NodeId),
    /// Release the next batch of a job's tasks (container grant round).
    GrantContainers(dyrs_dfs::JobId),
    /// Begin re-replicating the blocks lost with a failed node.
    ReReplicate(NodeId),
    /// Set a node's trace-driven background disk load to `frac_milli`
    /// thousandths of its base bandwidth (0 clears it).
    Background {
        /// Victim node.
        node: NodeId,
        /// Background utilization × 1000 (integral so `Ev` stays `Eq`).
        frac_milli: u64,
    },
}
