//! Simulation outputs.

use dyrs::master::MasterStats;
use dyrs::slave::SlaveStats;
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId, Medium};
use dyrs_engine::{JobMetrics, TaskMetrics};
use serde::{Deserialize, Serialize};
use simkit::stats::TimeSeries;
use simkit::{SimDuration, SimTime};

/// One block read, as it completed (drives Figs. 8 and 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockReadRecord {
    /// When the read finished.
    pub at: SimTime,
    /// The block.
    pub block: BlockId,
    /// Node that served the bytes.
    pub source: NodeId,
    /// Storage tier / locality.
    pub medium: Medium,
    /// Reading job.
    pub job: JobId,
    /// Bytes served.
    pub bytes: u64,
}

/// Per-node roll-up.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Reads served from its disk.
    pub disk_reads: u64,
    /// Reads served from its memory (local or via NIC).
    pub memory_reads: u64,
    /// Bytes served from disk.
    pub disk_bytes: u64,
    /// Bytes served from memory.
    pub memory_bytes: u64,
    /// Peak migration-buffer footprint.
    pub peak_buffer_bytes: u64,
    /// Slave counters (completed migrations, migrated bytes, evictions —
    /// the single source of truth for migration roll-ups).
    pub slave: SlaveStats,
    /// Total time the disk had at least one active stream.
    pub disk_busy: SimDuration,
    /// Estimated migration time per reference block over time (Fig. 9).
    pub estimate_series: TimeSeries,
    /// Migration-buffer bytes over time (Fig. 7).
    pub buffer_series: TimeSeries,
    /// Measured disk utilization (busy fraction per heartbeat interval) —
    /// the run's own Fig.-1-style trace.
    pub utilization_series: TimeSeries,
}

/// Everything a run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-job metrics, in completion order.
    pub jobs: Vec<JobMetrics>,
    /// Per-task metrics, in completion order.
    pub tasks: Vec<TaskMetrics>,
    /// Per-node roll-ups.
    pub nodes: Vec<NodeReport>,
    /// Master counters.
    pub master: MasterStats,
    /// Every completed block read.
    pub reads: Vec<BlockReadRecord>,
    /// Jobs that failed (killed or unservable reads).
    pub failed_jobs: Vec<JobId>,
    /// Speculative task re-executions triggered.
    pub speculations: u64,
    /// Re-replication repair copies completed.
    pub repairs: u64,
    /// Discrete events the run loop dispatched.
    pub events_processed: u64,
    /// Admin-plane scrapes the run loop performed (see
    /// `SimConfig::scrape_interval`). Scrapes are pure reads layered on
    /// top of the event stream: any `scrapes > 0` run must produce the
    /// same `trace_digest` and the same exported report as the
    /// `scrapes == 0` run of the identical scenario.
    #[serde(default)]
    pub scrapes: u64,
    /// FNV-1a digest of the dispatched event stream (time + event, in
    /// order). Identical scenarios under identical seeds must reproduce
    /// this bit-for-bit; a mismatch means nondeterminism reached the
    /// event loop.
    pub trace_digest: u64,
    /// Simulated instant the last event fired.
    pub end_time: SimTime,
    /// Protocol frames moved through the wire codec. Zero under
    /// [`WireMode::InProcess`](crate::config::WireMode::InProcess); under
    /// `Loopback` every master↔slave interaction pays the full
    /// encode→frame→decode round trip and is counted here.
    #[serde(default)]
    pub wire_frames: u64,
    /// Encoded protocol bytes (headers included) moved through the wire
    /// codec; zero in `InProcess` mode.
    #[serde(default)]
    pub wire_bytes: u64,
    /// Observability report: migration lifecycle spans, metric registry,
    /// and Algorithm 1 decision provenance. Empty (with `enabled: false`)
    /// when the `obs` feature is off. Export with
    /// [`write_to_dir`](dyrs_obs::ObsReport::write_to_dir).
    pub obs: dyrs_obs::ObsReport,
}

impl SimResult {
    /// Mean job duration in seconds (the Table I statistic).
    pub fn mean_job_duration_secs(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|j| j.duration.as_secs_f64())
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Mean map-task duration in seconds (Fig. 6 statistic).
    pub fn mean_map_task_secs(&self) -> f64 {
        let maps: Vec<f64> = self
            .tasks
            .iter()
            .filter(|t| t.is_map)
            .map(|t| t.duration.as_secs_f64())
            .collect();
        if maps.is_empty() {
            0.0
        } else {
            maps.iter().sum::<f64>() / maps.len() as f64
        }
    }

    /// Fraction of map input bytes served from memory, across all jobs.
    pub fn memory_read_fraction(&self) -> f64 {
        let (mem, total) = self.reads.iter().fold((0u64, 0u64), |(m, t), r| {
            (
                m + if r.medium.is_memory() { r.bytes } else { 0 },
                t + r.bytes,
            )
        });
        if total == 0 {
            0.0
        } else {
            mem as f64 / total as f64
        }
    }

    /// Reads served per node (Fig. 8's bar heights).
    pub fn reads_per_node(&self, nodes: usize) -> Vec<u64> {
        let mut counts = vec![0u64; nodes];
        for r in &self.reads {
            counts[r.source.index()] += 1;
        }
        counts
    }

    /// The job metrics for `job`, if it completed.
    pub fn job(&self, job: JobId) -> Option<&JobMetrics> {
        self.jobs.iter().find(|j| j.job == job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_result() -> SimResult {
        SimResult {
            jobs: vec![],
            tasks: vec![],
            nodes: vec![],
            master: MasterStats::default(),
            reads: vec![
                BlockReadRecord {
                    at: SimTime::ZERO,
                    block: BlockId(1),
                    source: NodeId(0),
                    medium: Medium::LocalMemory,
                    job: JobId(1),
                    bytes: 75,
                },
                BlockReadRecord {
                    at: SimTime::ZERO,
                    block: BlockId(2),
                    source: NodeId(1),
                    medium: Medium::RemoteDisk,
                    job: JobId(1),
                    bytes: 25,
                },
            ],
            failed_jobs: vec![],
            speculations: 0,
            repairs: 0,
            events_processed: 0,
            scrapes: 0,
            trace_digest: 0,
            end_time: SimTime::ZERO,
            wire_frames: 0,
            wire_bytes: 0,
            obs: Default::default(),
        }
    }

    #[test]
    fn memory_fraction_weighted_by_bytes() {
        let r = mk_result();
        assert!((r.memory_read_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reads_per_node_counts() {
        let r = mk_result();
        assert_eq!(r.reads_per_node(3), vec![1, 1, 0]);
    }

    #[test]
    fn empty_means_are_zero() {
        let mut r = mk_result();
        r.reads.clear();
        assert_eq!(r.mean_job_duration_secs(), 0.0);
        assert_eq!(r.mean_map_task_secs(), 0.0);
        assert_eq!(r.memory_read_fraction(), 0.0);
    }
}
