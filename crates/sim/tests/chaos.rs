//! Chaos testing: randomized failure schedules over randomized workloads
//! must never deadlock, double-account, or violate conservation — the
//! §III-C resilience story under adversarial conditions.

use dyrs::MigrationPolicy;
use dyrs_cluster::NodeId;
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::{FailureEvent, FileSpec, SimConfig, Simulation};
use simkit::{Rng, SimTime};

const BLOCK: u64 = 256 << 20;

/// Build a random failure schedule that never takes down more than one
/// node at a time for long (3x replication tolerates it) and always ends
/// with every node back up.
fn random_failures(rng: &mut Rng) -> Vec<FailureEvent> {
    let mut failures = Vec::new();
    let mut t = 3u64;
    let mut down: Option<NodeId> = None;
    for _ in 0..rng.range_u64(2, 10) {
        t += rng.range_u64(2, 12);
        let at = SimTime::from_secs(t);
        match rng.below(5) {
            0 => failures.push(FailureEvent::MasterRestart { at }),
            1 => failures.push(FailureEvent::SlaveRestart {
                at,
                node: NodeId(rng.below(7) as u32),
            }),
            2 => {
                if let Some(node) = down.take() {
                    failures.push(FailureEvent::NodeUp { at, node });
                } else {
                    let node = NodeId(rng.below(7) as u32);
                    down = Some(node);
                    failures.push(FailureEvent::NodeDown { at, node });
                }
            }
            3 => failures.push(FailureEvent::KillJob {
                at,
                job: JobId(rng.below(3)),
            }),
            _ => {}
        }
    }
    if let Some(node) = down {
        failures.push(FailureEvent::NodeUp {
            at: SimTime::from_secs(t + 20),
            node,
        });
    }
    failures
}

#[test]
fn random_failure_storms_never_hang() {
    let mut rng = Rng::new(0xC0FFEE);
    for round in 0..20 {
        let seed = rng.next_u64();
        let policy = *rng.pick(&[
            MigrationPolicy::Dyrs,
            MigrationPolicy::Ignem,
            MigrationPolicy::Naive,
            MigrationPolicy::Disabled,
        ]);
        let mut cfg = SimConfig::paper_default(policy, seed);
        cfg.dyrs.migration_order = *rng.pick(&dyrs::MigrationOrder::all());
        cfg.dyrs.max_concurrent_migrations = rng.range_u64(1, 4) as usize;
        cfg.re_replication_delay = simkit::SimDuration::from_secs(rng.range_u64(5, 25));
        cfg.horizon = SimTime::from_secs(1200); // hang detector
        let njobs = rng.range_u64(2, 5);
        let mut jobs = Vec::new();
        for j in 0..njobs {
            let blocks = rng.range_u64(1, 10);
            cfg.files
                .push(FileSpec::new(format!("f{j}"), blocks * BLOCK));
            jobs.push(JobSpec::map_only(
                JobId(j),
                format!("j{j}"),
                SimTime::from_secs(rng.range_u64(0, 8)),
                vec![format!("f{j}")],
            ));
        }
        cfg.failures = random_failures(&mut rng);
        let kill_targets: Vec<JobId> = cfg
            .failures
            .iter()
            .filter_map(|f| match f {
                FailureEvent::KillJob { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        let r = Simulation::new(cfg, jobs).run();
        // every job is accounted for exactly once
        assert_eq!(
            r.jobs.len() + r.failed_jobs.len(),
            njobs as usize,
            "round {round} (seed {seed}, {policy:?}): lost a job"
        );
        assert!(
            r.end_time < SimTime::from_secs(1200),
            "round {round}: hit the hang-detector horizon"
        );
        // only explicitly killed jobs may fail (one node down at a time
        // never defeats 3x replication)
        for f in &r.failed_jobs {
            assert!(
                kill_targets.contains(f),
                "round {round}: job {f:?} failed without being killed"
            );
        }
        // no job completed twice
        let mut ids: Vec<JobId> = r.jobs.iter().map(|j| j.job).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(
            ids.len(),
            r.jobs.len(),
            "round {round}: duplicate completion"
        );
    }
}
