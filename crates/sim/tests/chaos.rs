//! Chaos testing: randomized failure schedules over randomized workloads
//! must never deadlock, double-account, or violate conservation — the
//! §III-C resilience story under adversarial conditions.

use dyrs::MigrationPolicy;
use dyrs_cluster::NodeId;
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::{FailureEvent, FileSpec, GrayFault, SimConfig, Simulation};
use simkit::{Rng, SimDuration, SimTime};

const BLOCK: u64 = 256 << 20;

/// Base seed for a storm test: `DYRS_CHAOS_SEED` overrides the built-in
/// default, so CI can sweep seeds and a failure reproduces locally with
/// `DYRS_CHAOS_SEED=<seed> cargo test -p dyrs-sim --test chaos`.
fn base_seed(default: u64) -> u64 {
    match std::env::var("DYRS_CHAOS_SEED") {
        Ok(s) => s
            .parse()
            .expect("DYRS_CHAOS_SEED must be an unsigned integer"),
        Err(_) => default,
    }
}

/// Build a random failure schedule that never takes down more than one
/// node at a time for long (3x replication tolerates it) and always ends
/// with every node back up.
fn random_failures(rng: &mut Rng) -> Vec<FailureEvent> {
    let mut failures = Vec::new();
    let mut t = 3u64;
    let mut down: Option<NodeId> = None;
    for _ in 0..rng.range_u64(2, 10) {
        t += rng.range_u64(2, 12);
        let at = SimTime::from_secs(t);
        match rng.below(6) {
            0 => failures.push(FailureEvent::MasterRestart { at }),
            1 => failures.push(FailureEvent::SlaveRestart {
                at,
                node: NodeId(rng.below(7) as u32),
            }),
            2 => {
                if let Some(node) = down.take() {
                    failures.push(FailureEvent::NodeUp { at, node });
                } else {
                    let node = NodeId(rng.below(7) as u32);
                    down = Some(node);
                    failures.push(FailureEvent::NodeDown { at, node });
                }
            }
            3 => failures.push(FailureEvent::KillJob {
                at,
                job: JobId(rng.below(3)),
            }),
            4 => failures.push(FailureEvent::MasterServerFailure {
                at,
                reroute: SimDuration::from_secs(rng.range_u64(0, 6)),
            }),
            _ => {}
        }
    }
    if let Some(node) = down {
        failures.push(FailureEvent::NodeUp {
            at: SimTime::from_secs(t + 20),
            node,
        });
    }
    failures
}

/// Build a random gray-fault schedule. Disk degradations stay above
/// 1/10th bandwidth and are always restored; at most one node flaps (so
/// that, combined with the fail-stop storm's one-node-down discipline, no
/// more than two nodes are ever down at once — 3x replication holds).
fn random_gray_faults(rng: &mut Rng) -> Vec<GrayFault> {
    let mut faults = Vec::new();
    let mut t = 2u64;
    let mut flap_node: Option<NodeId> = None;
    for _ in 0..rng.range_u64(2, 8) {
        t += rng.range_u64(2, 10);
        let at = SimTime::from_secs(t);
        let node = NodeId(rng.below(7) as u32);
        match rng.below(4) {
            0 => {
                faults.push(GrayFault::DiskDegrade {
                    at,
                    node,
                    factor_milli: rng.range_u64(100, 500),
                });
                faults.push(GrayFault::DiskRestore {
                    at: SimTime::from_secs(t + rng.range_u64(5, 30)),
                    node,
                });
            }
            1 => faults.push(GrayFault::HeartbeatLoss {
                at,
                node,
                until: SimTime::from_secs(t + rng.range_u64(2, 15)),
            }),
            2 => faults.push(GrayFault::StuckStreams {
                at,
                node,
                until: SimTime::from_secs(t + rng.range_u64(2, 15)),
            }),
            _ => {
                let node = *flap_node.get_or_insert(node);
                faults.push(GrayFault::Flap {
                    at,
                    node,
                    downtime: simkit::SimDuration::from_secs(rng.range_u64(2, 6)),
                    times: rng.range_u64(1, 3) as u32,
                    period: simkit::SimDuration::from_secs(rng.range_u64(8, 15)),
                });
            }
        }
    }
    faults
}

/// Span well-formedness under chaos: every span opens pending, moves
/// forward, and — thanks to the driver's end-of-run flush — ends in
/// exactly one terminal event, which is the last.
fn assert_spans_closed(report: &dyrs_obs::ObsReport, ctx: &str) {
    use dyrs_obs::SpanState;
    let order = |s: SpanState| match s {
        SpanState::Pending => 0,
        SpanState::Targeted => 1,
        SpanState::Bound => 2,
        SpanState::Started => 3,
        SpanState::Finished | SpanState::Aborted | SpanState::Evicted => 4,
    };
    for (id, events) in report.spans() {
        assert_eq!(
            events[0].state,
            SpanState::Pending,
            "{ctx}: span {id} must open pending"
        );
        for w in events.windows(2) {
            assert!(
                order(w[1].state) >= order(w[0].state),
                "{ctx}: span {id} illegal transition {:?} -> {:?}",
                w[0].state,
                w[1].state
            );
        }
        assert_eq!(
            events.iter().filter(|e| e.state.is_terminal()).count(),
            1,
            "{ctx}: span {id} must end in exactly one terminal event"
        );
        assert!(
            events.last().expect("nonempty").state.is_terminal(),
            "{ctx}: span {id} terminal event must be last"
        );
    }
}

#[test]
fn random_failure_storms_never_hang() {
    let mut rng = Rng::new(base_seed(0xC0FFEE));
    for round in 0..20 {
        let seed = rng.next_u64();
        let policy = *rng.pick(&[
            MigrationPolicy::Dyrs,
            MigrationPolicy::Ignem,
            MigrationPolicy::Naive,
            MigrationPolicy::Disabled,
        ]);
        let mut cfg = SimConfig::paper_default(policy, seed);
        cfg.dyrs.migration_order = *rng.pick(&dyrs::MigrationOrder::all());
        cfg.dyrs.max_concurrent_migrations = rng.range_u64(1, 4) as usize;
        cfg.re_replication_delay = simkit::SimDuration::from_secs(rng.range_u64(5, 25));
        cfg.horizon = SimTime::from_secs(1200); // hang detector
        let njobs = rng.range_u64(2, 5);
        let mut jobs = Vec::new();
        for j in 0..njobs {
            let blocks = rng.range_u64(1, 10);
            cfg.files
                .push(FileSpec::new(format!("f{j}"), blocks * BLOCK));
            jobs.push(JobSpec::map_only(
                JobId(j),
                format!("j{j}"),
                SimTime::from_secs(rng.range_u64(0, 8)),
                vec![format!("f{j}")],
            ));
        }
        cfg.failures = random_failures(&mut rng);
        let kill_targets: Vec<JobId> = cfg
            .failures
            .iter()
            .filter_map(|f| match f {
                FailureEvent::KillJob { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        // captured by the harness; printed only if the test fails, which
        // hands CI the offending schedule alongside the repro seed
        println!(
            "round {round}: seed={seed} policy={policy:?} failures={:?}",
            cfg.failures
        );
        let r = Simulation::new(cfg, jobs).run();
        // every job is accounted for exactly once
        assert_eq!(
            r.jobs.len() + r.failed_jobs.len(),
            njobs as usize,
            "round {round} (seed {seed}, {policy:?}): lost a job"
        );
        assert!(
            r.end_time < SimTime::from_secs(1200),
            "round {round}: hit the hang-detector horizon"
        );
        // only explicitly killed jobs may fail (one node down at a time
        // never defeats 3x replication)
        for f in &r.failed_jobs {
            assert!(
                kill_targets.contains(f),
                "round {round}: job {f:?} failed without being killed"
            );
        }
        // no job completed twice
        let mut ids: Vec<JobId> = r.jobs.iter().map(|j| j.job).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(
            ids.len(),
            r.jobs.len(),
            "round {round}: duplicate completion"
        );
    }
}

#[test]
fn gray_fault_storms_never_hang() {
    let mut rng = Rng::new(base_seed(0x6AEF_FA17));
    for round in 0..20 {
        let seed = rng.next_u64();
        let policy = *rng.pick(&[
            MigrationPolicy::Dyrs,
            MigrationPolicy::Ignem,
            MigrationPolicy::Naive,
            MigrationPolicy::Disabled,
        ]);
        let mut cfg = SimConfig::paper_default(policy, seed);
        cfg.dyrs.migration_order = *rng.pick(&dyrs::MigrationOrder::all());
        cfg.dyrs.max_concurrent_migrations = rng.range_u64(1, 4) as usize;
        cfg.re_replication_delay = SimDuration::from_secs(rng.range_u64(5, 25));
        cfg.horizon = SimTime::from_secs(1200); // hang detector
        let njobs = rng.range_u64(2, 5);
        let mut jobs = Vec::new();
        for j in 0..njobs {
            let blocks = rng.range_u64(1, 10);
            cfg.files
                .push(FileSpec::new(format!("f{j}"), blocks * BLOCK));
            jobs.push(JobSpec::map_only(
                JobId(j),
                format!("j{j}"),
                SimTime::from_secs(rng.range_u64(0, 8)),
                vec![format!("f{j}")],
            ));
        }
        // gray faults on top of a fail-stop storm: the detector must keep
        // making progress while nodes crawl, flap, lose heartbeats, and
        // wedge their streams.
        cfg.failures = random_failures(&mut rng);
        cfg.gray_faults = random_gray_faults(&mut rng);
        let kill_targets: Vec<JobId> = cfg
            .failures
            .iter()
            .filter_map(|f| match f {
                FailureEvent::KillJob { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        // captured by the harness; printed only if the test fails, which
        // hands CI the offending schedule alongside the repro seed
        println!(
            "round {round}: seed={seed} policy={policy:?} failures={:?} gray={:?}",
            cfg.failures, cfg.gray_faults
        );
        let r = Simulation::new(cfg, jobs).run();
        assert_eq!(
            r.jobs.len() + r.failed_jobs.len(),
            njobs as usize,
            "round {round} (seed {seed}, {policy:?}): lost a job"
        );
        assert!(
            r.end_time < SimTime::from_secs(1200),
            "round {round} (seed {seed}, {policy:?}): hit the hang-detector horizon"
        );
        for f in &r.failed_jobs {
            assert!(
                kill_targets.contains(f),
                "round {round} (seed {seed}, {policy:?}): job {f:?} failed without being killed"
            );
        }
        let mut ids: Vec<JobId> = r.jobs.iter().map(|j| j.job).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(
            ids.len(),
            r.jobs.len(),
            "round {round}: duplicate completion"
        );
        if r.obs.enabled {
            assert_spans_closed(&r.obs, &format!("round {round} seed {seed} {policy:?}"));
        }
    }
}
