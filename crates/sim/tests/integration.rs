//! End-to-end integration tests of the full simulator: cluster + DFS +
//! DYRS + engine driven through realistic scenarios.

use dyrs::MigrationPolicy;
use dyrs_cluster::{InterferenceSchedule, NodeId};
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::{FailureEvent, FileSpec, SimConfig, SimResult, Simulation};
use simkit::{SimDuration, SimTime};

const MB: u64 = 1 << 20;
const BLOCK: u64 = 256 * MB;

fn one_job_cfg(policy: MigrationPolicy, blocks: u64, seed: u64) -> (SimConfig, Vec<JobSpec>) {
    let mut cfg = SimConfig::paper_default(policy, seed);
    cfg.files.push(FileSpec::new("input", blocks * BLOCK));
    let job = JobSpec::map_only(JobId(0), "job", SimTime::ZERO, vec!["input".into()]);
    (cfg, vec![job])
}

fn run_one(policy: MigrationPolicy, blocks: u64, seed: u64) -> SimResult {
    let (cfg, jobs) = one_job_cfg(policy, blocks, seed);
    Simulation::new(cfg, jobs).run()
}

#[test]
fn single_job_completes_under_all_policies() {
    for policy in [
        MigrationPolicy::Disabled,
        MigrationPolicy::InstantRam,
        MigrationPolicy::Ignem,
        MigrationPolicy::Naive,
        MigrationPolicy::Dyrs,
    ] {
        let r = run_one(policy, 14, 1);
        assert_eq!(r.jobs.len(), 1, "{policy:?} must complete the job");
        assert!(r.failed_jobs.is_empty());
        assert_eq!(
            r.tasks.iter().filter(|t| t.is_map).count(),
            14,
            "{policy:?}: one map per block"
        );
    }
}

#[test]
fn instant_ram_reads_everything_from_memory() {
    let r = run_one(MigrationPolicy::InstantRam, 14, 1);
    assert!(
        (r.memory_read_fraction() - 1.0).abs() < 1e-9,
        "all reads must hit memory, got {}",
        r.memory_read_fraction()
    );
}

#[test]
fn disabled_reads_everything_from_disk() {
    let r = run_one(MigrationPolicy::Disabled, 14, 1);
    assert_eq!(r.memory_read_fraction(), 0.0);
    assert_eq!(r.master.completed, 0);
    assert_eq!(r.nodes.iter().map(|n| n.slave.completed).sum::<u64>(), 0);
}

#[test]
fn dyrs_migrates_during_lead_time_and_speeds_up() {
    // 14 blocks: the whole input fits in the lead-time migration window,
    // so DYRS must strictly beat HDFS (a single task wave over a partially
    // migrated input would tie — its makespan is one cold read).
    let hdfs = run_one(MigrationPolicy::Disabled, 14, 1);
    let ram = run_one(MigrationPolicy::InstantRam, 14, 1);
    let dyrs = run_one(MigrationPolicy::Dyrs, 14, 1);

    let d_hdfs = hdfs.jobs[0].duration.as_secs_f64();
    let d_ram = ram.jobs[0].duration.as_secs_f64();
    let d_dyrs = dyrs.jobs[0].duration.as_secs_f64();

    assert!(
        d_ram < d_hdfs,
        "RAM bound must beat disk: {d_ram} vs {d_hdfs}"
    );
    assert!(
        d_dyrs < d_hdfs,
        "DYRS must beat plain HDFS: {d_dyrs} vs {d_hdfs}"
    );
    assert!(
        d_dyrs >= d_ram * 0.99,
        "DYRS cannot beat the in-RAM bound: {d_dyrs} vs {d_ram}"
    );
    assert!(dyrs.master.completed > 0, "some migrations must complete");
    assert!(
        dyrs.memory_read_fraction() > 0.2,
        "a meaningful share of reads must be served from memory, got {}",
        dyrs.memory_read_fraction()
    );
}

#[test]
fn runs_are_deterministic_under_a_seed() {
    let a = run_one(MigrationPolicy::Dyrs, 20, 7);
    let b = run_one(MigrationPolicy::Dyrs, 20, 7);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.jobs[0].duration, b.jobs[0].duration);
    assert_eq!(a.master, b.master);
    assert_eq!(a.reads.len(), b.reads.len());
    for (x, y) in a.reads.iter().zip(&b.reads) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_change_placement_but_not_correctness() {
    let a = run_one(MigrationPolicy::Dyrs, 20, 1);
    let b = run_one(MigrationPolicy::Dyrs, 20, 2);
    assert_eq!(a.jobs.len(), 1);
    assert_eq!(b.jobs.len(), 1);
    // placement differs → per-node read counts differ (overwhelmingly likely)
    assert_ne!(
        a.reads_per_node(7),
        b.reads_per_node(7),
        "different placement seeds should shift reads"
    );
}

#[test]
fn dyrs_avoids_handicapped_node_ignem_does_not() {
    let slow = NodeId(0);
    let mk = |policy| {
        let mut cfg = SimConfig::paper_default(policy, 3);
        cfg.files.push(FileSpec::new("input", 56 * BLOCK));
        cfg.interference
            .push(InterferenceSchedule::persistent(slow, 8));
        let job = JobSpec::map_only(JobId(0), "job", SimTime::ZERO, vec!["input".into()]);
        Simulation::new(cfg, vec![job]).run()
    };
    let dyrs = mk(MigrationPolicy::Dyrs);
    let ignem = mk(MigrationPolicy::Ignem);

    // DYRS should *bind* far less migration work to the slow node than the
    // per-node average; Ignem binds uniformly (most of its slow-node
    // migrations end up cancelled by missed reads, so count bound work =
    // completed + missed, not completions).
    let bound = |r: &SimResult, n: usize| {
        (r.nodes[n].slave.completed + r.nodes[n].slave.missed_reads) as f64
    };
    let dyrs_slow = bound(&dyrs, slow.index());
    let dyrs_avg = (0..7).map(|i| bound(&dyrs, i)).sum::<f64>() / 7.0;
    let ignem_slow = bound(&ignem, slow.index());
    let ignem_avg = (0..7).map(|i| bound(&ignem, i)).sum::<f64>() / 7.0;
    assert!(
        dyrs_slow < dyrs_avg * 0.5,
        "DYRS slow-node bound work {dyrs_slow} vs avg {dyrs_avg}"
    );
    assert!(
        ignem_slow > ignem_avg * 0.5,
        "Ignem should not avoid the slow node: {ignem_slow} vs avg {ignem_avg}"
    );
    // And DYRS must finish the job faster than Ignem under heterogeneity.
    assert!(dyrs.jobs[0].duration < ignem.jobs[0].duration);
}

#[test]
fn estimator_series_tracks_interference() {
    // Persistent interference on node 0: its migration-time estimate must
    // sit well above a quiet node's (Fig. 9a shape).
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 5);
    cfg.files.push(FileSpec::new("input", 56 * BLOCK));
    cfg.interference
        .push(InterferenceSchedule::persistent(NodeId(0), 8));
    let job = JobSpec::map_only(JobId(0), "job", SimTime::ZERO, vec!["input".into()]);
    let r = Simulation::new(cfg, vec![job]).run();
    let end = r.end_time;
    let loud = r.nodes[0]
        .estimate_series
        .time_weighted_mean(SimTime::from_secs(3), end, 0.0);
    let quiet = r.nodes[1]
        .estimate_series
        .time_weighted_mean(SimTime::from_secs(3), end, 0.0);
    assert!(
        loud > quiet * 1.5,
        "interfered node estimate {loud:.2}s must exceed quiet {quiet:.2}s"
    );
}

#[test]
fn memory_is_evicted_after_job_completion() {
    let r = run_one(MigrationPolicy::Dyrs, 20, 1);
    for n in &r.nodes {
        // peak was nonzero somewhere, but at the end everything is clean
        let last = n.buffer_series.points().last().map(|&(_, v)| v);
        if let Some(v) = last {
            assert!(
                v <= 1.0,
                "{}: buffer must drain after the job evicts, got {v}",
                n.node
            );
        }
    }
    let total_peak: u64 = r.nodes.iter().map(|n| n.peak_buffer_bytes).sum();
    assert!(
        total_peak > 0,
        "migration must have pinned memory at some point"
    );
}

#[test]
fn memory_limit_stalls_but_never_breaks() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 1);
    cfg.files.push(FileSpec::new("input", 40 * BLOCK));
    cfg.mem_limit = Some(2 * BLOCK); // tiny buffers: heavy stalling
    let job = JobSpec::map_only(JobId(0), "job", SimTime::ZERO, vec!["input".into()]);
    let r = Simulation::new(cfg, vec![job]).run();
    assert_eq!(r.jobs.len(), 1);
    for n in &r.nodes {
        assert!(
            n.peak_buffer_bytes <= 2 * BLOCK,
            "{}: hard limit violated ({} bytes)",
            n.node,
            n.peak_buffer_bytes
        );
    }
}

#[test]
fn master_restart_degrades_but_does_not_break() {
    let (mut cfg, jobs) = one_job_cfg(MigrationPolicy::Dyrs, 28, 1);
    cfg.failures.push(FailureEvent::MasterRestart {
        at: SimTime::from_secs(4),
    });
    let r = Simulation::new(cfg, jobs).run();
    assert_eq!(r.jobs.len(), 1, "job must still complete");
    assert!(r.failed_jobs.is_empty());
}

#[test]
fn slave_restart_drops_buffers_and_job_still_completes() {
    let (mut cfg, jobs) = one_job_cfg(MigrationPolicy::Dyrs, 28, 1);
    cfg.failures.push(FailureEvent::SlaveRestart {
        at: SimTime::from_secs(5),
        node: NodeId(2),
    });
    let r = Simulation::new(cfg, jobs).run();
    assert_eq!(r.jobs.len(), 1);
    assert!(r.failed_jobs.is_empty());
}

#[test]
fn node_failure_fails_over_reads() {
    let (mut cfg, jobs) = one_job_cfg(MigrationPolicy::Dyrs, 28, 1);
    cfg.failures.push(FailureEvent::NodeDown {
        at: SimTime::from_secs(10),
        node: NodeId(3),
    });
    let r = Simulation::new(cfg, jobs).run();
    assert_eq!(r.jobs.len(), 1, "3x replication must survive one node loss");
    assert!(r.failed_jobs.is_empty());
    // the dead node serves nothing after its failure
    let after = r
        .reads
        .iter()
        .filter(|rd| rd.source == NodeId(3) && rd.at > SimTime::from_secs(10))
        .count();
    assert_eq!(after, 0, "dead node must serve no reads");
}

#[test]
fn killed_job_leaks_are_scavenged() {
    // Two jobs; the first is killed mid-flight without evicting. The
    // second runs long enough that memory pressure (tiny buffers) forces a
    // scavenge, which reclaims the dead job's blocks.
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 1);
    cfg.files.push(FileSpec::new("a", 10 * BLOCK));
    cfg.files.push(FileSpec::new("b", 20 * BLOCK));
    cfg.mem_limit = Some(3 * BLOCK);
    cfg.failures.push(FailureEvent::KillJob {
        at: SimTime::from_secs(6),
        job: JobId(0),
    });
    let j0 = JobSpec::map_only(JobId(0), "victim", SimTime::ZERO, vec!["a".into()]);
    let mut j1 = JobSpec::map_only(
        JobId(1),
        "survivor",
        SimTime::from_secs(12),
        vec!["b".into()],
    );
    j1.implicit_eviction = false; // exercise explicit path too
    let r = Simulation::new(cfg, vec![j0, j1]).run();
    assert_eq!(r.failed_jobs, vec![JobId(0)]);
    assert_eq!(r.jobs.len(), 1);
    assert_eq!(r.jobs[0].job, JobId(1));
}

#[test]
fn hive_style_dependent_jobs_run_in_order() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 1);
    cfg.files.push(FileSpec::new("t1", 8 * BLOCK));
    cfg.files.push(FileSpec::new("t2", 4 * BLOCK));
    let mut stage1 = JobSpec::map_only(JobId(0), "q-s1", SimTime::ZERO, vec!["t1".into()]);
    stage1.shuffle_bytes = 64 * MB;
    stage1.reduce_tasks = 2;
    let mut stage2 = JobSpec::map_only(JobId(1), "q-s2", SimTime::ZERO, vec!["t2".into()]);
    stage2.depends_on = vec![JobId(0)];
    let r = Simulation::new(cfg, vec![stage1, stage2]).run();
    assert_eq!(r.jobs.len(), 2);
    let s1 = r.job(JobId(0)).unwrap();
    let s2 = r.job(JobId(1)).unwrap();
    // stage 2 ran entirely after stage 1's completion
    assert!(s2.duration.as_secs_f64() > 0.0);
    let s1_end = r
        .reads
        .iter()
        .filter(|rd| rd.job == JobId(0))
        .map(|rd| rd.at)
        .max()
        .unwrap();
    let s2_start = r
        .reads
        .iter()
        .filter(|rd| rd.job == JobId(1))
        .map(|rd| rd.at)
        .min()
        .unwrap();
    assert!(s2_start > s1_end, "stages must not overlap");
    assert!(s1.map_tasks == 8 && s2.map_tasks == 4);
}

#[test]
fn lead_time_includes_platform_overhead() {
    let r = run_one(MigrationPolicy::Disabled, 7, 1);
    let lead = r.jobs[0].lead_time;
    assert!(
        lead >= SimDuration::from_secs(8),
        "lead-time {lead} must include the 8s platform overhead"
    );
}

#[test]
fn extra_lead_time_migrates_more() {
    // Input large enough (60 GB) that the zero-lead run cannot cover it
    // all; extra lead-time must then raise coverage and shrink the map
    // phase (the Fig. 11 mechanism).
    let runner = |extra: u64| {
        let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 1);
        cfg.files.push(FileSpec::new("input", 240 * BLOCK));
        let mut job = JobSpec::map_only(JobId(0), "sort", SimTime::ZERO, vec!["input".into()]);
        job.extra_lead_time = SimDuration::from_secs(extra);
        Simulation::new(cfg, vec![job]).run()
    };
    let short = runner(0);
    let long = runner(120);
    assert!(
        long.memory_read_fraction() > short.memory_read_fraction(),
        "more lead-time must migrate more: {} vs {}",
        long.memory_read_fraction(),
        short.memory_read_fraction()
    );
    assert!(
        long.jobs[0].map_phase < short.jobs[0].map_phase,
        "map phase must shrink with more migration"
    );
}

#[test]
fn concurrent_jobs_share_the_cluster() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 1);
    for i in 0..6 {
        cfg.files.push(FileSpec::new(format!("f{i}"), 6 * BLOCK));
    }
    let jobs: Vec<JobSpec> = (0..6)
        .map(|i| {
            JobSpec::map_only(
                JobId(i),
                format!("j{i}"),
                SimTime::from_secs(i), // staggered arrivals
                vec![format!("f{i}")],
            )
        })
        .collect();
    let r = Simulation::new(cfg, jobs).run();
    assert_eq!(r.jobs.len(), 6);
    assert!(r.failed_jobs.is_empty());
}
