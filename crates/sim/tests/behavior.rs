//! Behavioral integration tests beyond the basics in `integration.rs`:
//! homogeneous-cluster claims, eviction modes, read-path media, slot
//! queueing, horizon handling, and conservation invariants under random
//! small workloads.

use dyrs::{MigrationOrder, MigrationPolicy};
use dyrs_cluster::NodeId;
use dyrs_dfs::{JobId, Medium};
use dyrs_engine::JobSpec;
use dyrs_sim::{FailureEvent, FileSpec, GrayFault, SimConfig, SimResult, Simulation};
use simkit::{Rng, SimDuration, SimTime};

const MB: u64 = 1 << 20;
const BLOCK: u64 = 256 * MB;

fn sim_with(
    policy: MigrationPolicy,
    blocks: u64,
    seed: u64,
    f: impl FnOnce(&mut SimConfig, &mut Vec<JobSpec>),
) -> SimResult {
    let mut cfg = SimConfig::paper_default(policy, seed);
    cfg.files.push(FileSpec::new("in", blocks * BLOCK));
    let mut jobs = vec![JobSpec::map_only(
        JobId(0),
        "job",
        SimTime::ZERO,
        vec!["in".into()],
    )];
    f(&mut cfg, &mut jobs);
    Simulation::new(cfg, jobs).run()
}

/// Paper §VI: Ignem "suits the case where the node bandwidths are
/// homogeneous" — without a handicapped node it must perform close to
/// DYRS (both near the in-RAM bound for a coverable input).
#[test]
fn ignem_is_fine_on_homogeneous_clusters() {
    let dyrs = sim_with(MigrationPolicy::Dyrs, 14, 3, |_, _| {});
    let ignem = sim_with(MigrationPolicy::Ignem, 14, 3, |_, _| {});
    let d = dyrs.jobs[0].duration.as_secs_f64();
    let i = ignem.jobs[0].duration.as_secs_f64();
    assert!(
        (i - d).abs() / d < 0.25,
        "homogeneous: Ignem {i:.1}s should track DYRS {d:.1}s"
    );
    assert!(ignem.memory_read_fraction() > 0.8);
}

/// Remote in-memory reads flow over the serving node's NIC: when a block
/// is buffered on a node other than the reader's, the read is recorded as
/// RemoteMemory from that node.
#[test]
fn remote_memory_reads_happen() {
    let r = sim_with(MigrationPolicy::Dyrs, 28, 5, |_, _| {});
    let remote_mem = r
        .reads
        .iter()
        .filter(|rd| rd.medium == Medium::RemoteMemory)
        .count();
    let local_mem = r
        .reads
        .iter()
        .filter(|rd| rd.medium == Medium::LocalMemory)
        .count();
    assert!(
        remote_mem > 0,
        "with one migrated replica per block, many readers are remote"
    );
    assert!(
        local_mem > 0,
        "locality preference should find some local hits"
    );
}

/// Explicit-eviction jobs hold their buffers until completion; implicit
/// ones drain as reads happen — so the explicit run's end-of-map buffer
/// footprint dominates the implicit run's.
#[test]
fn eviction_modes_differ_in_footprint() {
    let run = |implicit: bool| {
        sim_with(MigrationPolicy::Dyrs, 28, 9, |_, jobs| {
            jobs[0].implicit_eviction = implicit;
        })
    };
    let imp = run(true);
    let exp = run(false);
    let peak = |r: &SimResult| -> u64 { r.nodes.iter().map(|n| n.peak_buffer_bytes).sum() };
    assert!(
        peak(&imp) <= peak(&exp),
        "implicit {} must not exceed explicit {}",
        peak(&imp),
        peak(&exp)
    );
    // both runs end with empty buffers (explicit evicts at completion)
    for r in [&imp, &exp] {
        for n in &r.nodes {
            let last = n
                .buffer_series
                .points()
                .last()
                .map(|&(_, v)| v)
                .unwrap_or(0.0);
            assert!(last <= 1.0, "buffers must drain by job end");
        }
    }
}

/// With one map slot per node, tasks queue for slots and queueing time
/// becomes lead-time the migration layer can exploit (§II-C1).
#[test]
fn slot_queueing_extends_lead_time() {
    let tight = sim_with(MigrationPolicy::Dyrs, 56, 11, |cfg, _| {
        cfg.engine.map_slots_per_node = 1;
    });
    let roomy = sim_with(MigrationPolicy::Dyrs, 56, 11, |_, _| {});
    // fewer slots → later tasks wait → more blocks migrated before read
    assert!(
        tight.memory_read_fraction() >= roomy.memory_read_fraction() - 0.05,
        "queueing time should help coverage: tight {} vs roomy {}",
        tight.memory_read_fraction(),
        roomy.memory_read_fraction()
    );
    assert_eq!(tight.jobs.len(), 1);
}

/// The horizon hard-stops a runaway simulation.
#[test]
fn horizon_cuts_off() {
    let r = sim_with(MigrationPolicy::Disabled, 56, 13, |cfg, _| {
        cfg.horizon = SimTime::from_secs(5); // far too short for the job
    });
    assert!(r.jobs.is_empty(), "job cannot complete within 5s");
    assert!(r.end_time <= SimTime::from_secs(6));
}

/// Failure storm: every injection type at once, on a multi-job workload —
/// the system must degrade, never deadlock or double-complete.
#[test]
fn failure_storm_degrades_gracefully() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 17);
    for i in 0..3 {
        cfg.files.push(FileSpec::new(format!("f{i}"), 8 * BLOCK));
    }
    cfg.failures = vec![
        FailureEvent::MasterRestart {
            at: SimTime::from_secs(3),
        },
        FailureEvent::SlaveRestart {
            at: SimTime::from_secs(5),
            node: NodeId(1),
        },
        FailureEvent::NodeDown {
            at: SimTime::from_secs(7),
            node: NodeId(2),
        },
        FailureEvent::MasterRestart {
            at: SimTime::from_secs(9),
        },
        FailureEvent::NodeDown {
            at: SimTime::from_secs(11),
            node: NodeId(4),
        },
        FailureEvent::NodeUp {
            at: SimTime::from_secs(30),
            node: NodeId(2),
        },
        FailureEvent::SlaveRestart {
            at: SimTime::from_secs(33),
            node: NodeId(0),
        },
        FailureEvent::NodeUp {
            at: SimTime::from_secs(40),
            node: NodeId(4),
        },
    ];
    let jobs: Vec<JobSpec> = (0..3)
        .map(|i| {
            JobSpec::map_only(
                JobId(i),
                format!("j{i}"),
                SimTime::from_secs(i * 2),
                vec![format!("f{i}")],
            )
        })
        .collect();
    let r = Simulation::new(cfg, jobs).run();
    assert_eq!(
        r.jobs.len() + r.failed_jobs.len(),
        3,
        "every job accounted for"
    );
    assert_eq!(r.jobs.len(), 3, "3x replication survives two node losses");
    // no read was served by a node after it died and before it returned
    for rd in &r.reads {
        if rd.source == NodeId(2) {
            let t = rd.at;
            assert!(
                t <= SimTime::from_secs(7) || t >= SimTime::from_secs(30),
                "read from dead node2 at {t}"
            );
        }
    }
}

/// Migration-order disciplines all complete the same workload with the
/// same read conservation (every block read exactly once per job).
#[test]
fn migration_orders_conserve_reads() {
    for order in MigrationOrder::all() {
        let r = sim_with(MigrationPolicy::Dyrs, 20, 19, |cfg, _| {
            cfg.dyrs.migration_order = order;
        });
        assert_eq!(r.jobs.len(), 1, "{order:?}");
        let mut blocks: Vec<_> = r.reads.iter().map(|rd| rd.block).collect();
        blocks.sort();
        blocks.dedup();
        assert_eq!(blocks.len(), 20, "{order:?}: every block read");
    }
}

/// Conservation fuzz: random small workloads under random policies always
/// complete with exact read coverage and bounded memory.
#[test]
fn random_workloads_conserve() {
    let mut rng = Rng::new(0xF00D);
    for round in 0..25 {
        let seed = rng.next_u64();
        let policy = *rng.pick(&[
            MigrationPolicy::Disabled,
            MigrationPolicy::InstantRam,
            MigrationPolicy::Ignem,
            MigrationPolicy::Naive,
            MigrationPolicy::Dyrs,
        ]);
        let njobs = rng.range_u64(1, 4);
        let mut cfg = SimConfig::paper_default(policy, seed);
        cfg.mem_limit = Some(rng.range_u64(2, 8) * BLOCK);
        let mut jobs = Vec::new();
        let mut expect_blocks = 0u64;
        for j in 0..njobs {
            let blocks = rng.range_u64(1, 12);
            expect_blocks += blocks;
            cfg.files
                .push(FileSpec::new(format!("f{j}"), blocks * BLOCK));
            let mut spec = JobSpec::map_only(
                JobId(j),
                format!("j{j}"),
                SimTime::from_secs(rng.range_u64(0, 10)),
                vec![format!("f{j}")],
            );
            spec.implicit_eviction = rng.chance(0.5);
            if rng.chance(0.3) {
                spec.shuffle_bytes = rng.range_u64(1, 64) * MB;
                spec.reduce_tasks = rng.range_u64(1, 4) as usize;
            }
            jobs.push(spec);
        }
        let r = Simulation::new(cfg, jobs).run();
        assert_eq!(
            r.jobs.len() as u64,
            njobs,
            "round {round} ({policy:?}, seed {seed}): all jobs complete"
        );
        assert!(r.failed_jobs.is_empty());
        let unique: std::collections::HashSet<_> = r.reads.iter().map(|rd| rd.block).collect();
        assert_eq!(
            unique.len() as u64,
            expect_blocks,
            "round {round}: every block read at least once"
        );
        for n in &r.nodes {
            assert!(
                n.peak_buffer_bytes <= n.slave.bytes_migrated.max(1) + 8 * BLOCK,
                "round {round}: absurd peak buffer"
            );
        }
    }
}

/// HDFS re-replication: after a node fails and the grace period passes,
/// every block it hosted regains full replication on surviving nodes —
/// and the repair traffic does not break running jobs.
#[test]
fn re_replication_restores_replica_counts() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 23);
    cfg.files.push(FileSpec::new("in", 20 * BLOCK));
    cfg.re_replication_delay = SimDuration::from_secs(10);
    cfg.failures.push(FailureEvent::NodeDown {
        at: SimTime::from_secs(5),
        node: NodeId(2),
    });
    // a long trailer job keeps the simulation alive while repairs finish
    let mut jobs = vec![JobSpec::map_only(
        JobId(0),
        "job",
        SimTime::ZERO,
        vec!["in".into()],
    )];
    cfg.files.push(FileSpec::new("late", 20 * BLOCK));
    jobs.push(JobSpec::map_only(
        JobId(1),
        "late",
        SimTime::from_secs(120),
        vec!["late".into()],
    ));
    let r = Simulation::new(cfg, jobs).run();
    assert_eq!(r.jobs.len(), 2);
    assert!(
        r.repairs > 0,
        "node2 hosted replicas; repairs must have run ({})",
        r.repairs
    );
}

/// With re-replication disabled, no repairs happen (the §III-C failure
/// tests rely on plain fail-over only).
#[test]
fn re_replication_can_be_disabled() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 23);
    cfg.files.push(FileSpec::new("in", 20 * BLOCK));
    cfg.re_replication = false;
    cfg.failures.push(FailureEvent::NodeDown {
        at: SimTime::from_secs(5),
        node: NodeId(2),
    });
    let jobs = vec![JobSpec::map_only(
        JobId(0),
        "job",
        SimTime::ZERO,
        vec!["in".into()],
    )];
    let r = Simulation::new(cfg, jobs).run();
    assert_eq!(r.repairs, 0);
    assert_eq!(r.jobs.len(), 1, "fail-over alone still completes the job");
}

/// A node returning within the grace period cancels the repair scan.
#[test]
fn quick_recovery_skips_repairs() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 23);
    cfg.files.push(FileSpec::new("in", 20 * BLOCK));
    cfg.re_replication_delay = SimDuration::from_secs(30);
    cfg.failures.push(FailureEvent::NodeDown {
        at: SimTime::from_secs(5),
        node: NodeId(2),
    });
    cfg.failures.push(FailureEvent::NodeUp {
        at: SimTime::from_secs(12),
        node: NodeId(2),
    });
    cfg.files.push(FileSpec::new("late", 4 * BLOCK));
    let jobs = vec![
        JobSpec::map_only(JobId(0), "job", SimTime::ZERO, vec!["in".into()]),
        JobSpec::map_only(
            JobId(1),
            "late",
            SimTime::from_secs(60),
            vec!["late".into()],
        ),
    ];
    let r = Simulation::new(cfg, jobs).run();
    assert_eq!(r.repairs, 0, "node came back before the grace period ended");
    assert_eq!(r.jobs.len(), 2);
}

/// The simulator measures its own disk utilization: busy during the map
/// waves, bounded in [0, 1], and the interfered node pegged near 1.0.
#[test]
fn measured_utilization_is_sane() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 29);
    cfg.files.push(FileSpec::new("in", 20 * BLOCK));
    cfg.interference
        .push(dyrs_cluster::InterferenceSchedule::persistent(NodeId(0), 2));
    let jobs = vec![JobSpec::map_only(
        JobId(0),
        "job",
        SimTime::ZERO,
        vec!["in".into()],
    )];
    let r = Simulation::new(cfg, jobs).run();
    for n in &r.nodes {
        for &(_, u) in n.utilization_series.points() {
            assert!((0.0..=1.0).contains(&u), "{}: utilization {u}", n.node);
        }
    }
    // the dd-hammered node is essentially always busy
    let slow_mean =
        r.nodes[0]
            .utilization_series
            .time_weighted_mean(SimTime::from_secs(2), r.end_time, 0.0);
    assert!(
        slow_mean > 0.9,
        "interfered node utilization {slow_mean:.2}"
    );
    // some quiet node had idle time too
    let min_mean = r
        .nodes
        .iter()
        .skip(1)
        .map(|n| {
            n.utilization_series
                .time_weighted_mean(SimTime::from_secs(2), r.end_time, 0.0)
        })
        .fold(f64::INFINITY, f64::min);
    assert!(min_mean < 0.95, "someone must have idled: {min_mean:.2}");
}

/// §III-C1: a failed master *server* loses migration requests until the
/// replacement is rerouted; with a live backup (zero reroute) the gap is
/// negligible. Jobs always complete either way.
#[test]
fn master_server_failure_vs_live_backup() {
    let run = |reroute_secs: u64| {
        let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 31);
        cfg.files.push(FileSpec::new("a", 10 * BLOCK));
        cfg.files.push(FileSpec::new("b", 10 * BLOCK));
        cfg.failures.push(FailureEvent::MasterServerFailure {
            at: SimTime::from_secs(2),
            reroute: SimDuration::from_secs(reroute_secs),
        });
        let jobs = vec![
            JobSpec::map_only(JobId(0), "early", SimTime::ZERO, vec!["a".into()]),
            // submitted while the slow-reroute master is unreachable
            JobSpec::map_only(JobId(1), "during", SimTime::from_secs(4), vec!["b".into()]),
        ];
        Simulation::new(cfg, jobs).run()
    };
    let slow = run(60);
    let backup = run(0);
    assert_eq!(slow.jobs.len(), 2, "jobs must survive the outage");
    assert_eq!(backup.jobs.len(), 2);
    // the job submitted during the outage lost its migration request
    let slow_during = slow.job(JobId(1)).expect("completed");
    let backup_during = backup.job(JobId(1)).expect("completed");
    assert!(
        slow_during.memory_read_fraction < 0.1,
        "no master, no migration: {}",
        slow_during.memory_read_fraction
    );
    assert!(
        backup_during.memory_read_fraction > 0.8,
        "live backup keeps migration alive: {}",
        backup_during.memory_read_fraction
    );
    assert!(backup_during.duration < slow_during.duration);
}

/// Gray failure A/B: one node's disk drops to 1/10th bandwidth while the
/// migration wave is in flight. With the failure detector on, stuck
/// migrations are re-bound to healthy replicas and the crawling node is
/// quarantined, so the batch keeps its memory coverage and finishes
/// measurably faster than the paper's detector-free protocol, which lets
/// the bound queue crawl at 1/10th speed.
#[test]
fn detector_rebinds_around_a_crawling_disk() {
    let run = |enabled: bool| {
        let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 41);
        cfg.dyrs.failure_detector.enabled = enabled;
        // deep bound queues: the master hands each slave several blocks
        // ahead, so a mid-wave degrade traps real bound work
        cfg.dyrs.queue_slack = 6;
        cfg.files.push(FileSpec::new("in", 56 * BLOCK));
        // mid-batch: node 3's queue was filled under a healthy estimate
        // when its disk drops to 1/10th speed, and it never recovers. The
        // EWMA estimator steers *new* targeting away on its own; only the
        // detector can take back what is already bound.
        cfg.gray_faults.push(GrayFault::DiskDegrade {
            at: SimTime::from_secs(6),
            node: NodeId(3),
            factor_milli: 100,
        });
        let jobs = vec![JobSpec::map_only(
            JobId(0),
            "job",
            SimTime::ZERO,
            vec!["in".into()],
        )];
        Simulation::new(cfg, jobs).run()
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.jobs.len(), 1);
    assert_eq!(without.jobs.len(), 1);
    let d_with = with.jobs[0].duration.as_secs_f64();
    let d_without = without.jobs[0].duration.as_secs_f64();
    assert!(
        d_with < d_without * 0.95,
        "re-binding should beat crawling measurably: with detector {d_with:.1}s, \
         without {d_without:.1}s"
    );
    if with.obs.enabled {
        assert!(
            with.obs.counter("detector.retries") > 0,
            "the win must come from re-binding, not luck"
        );
        let missed = |r: &SimResult| {
            r.obs
                .events
                .iter()
                .filter(|e| e.cause == dyrs::obs::cause::MISSED_READ)
                .count()
        };
        assert!(
            missed(&with) < missed(&without),
            "re-binding should land blocks in memory before their reads: \
             {} vs {} missed",
            missed(&with),
            missed(&without)
        );
    }
}

/// Rack-aware clusters: when the spec spans racks, placement follows
/// HDFS's two-rack pattern and the whole pipeline still works.
#[test]
fn rack_aware_cluster_end_to_end() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 37);
    cfg.cluster = dyrs_cluster::ClusterSpec::uniform_racked(8, 2);
    cfg.files.push(FileSpec::new("in", 12 * BLOCK));
    let jobs = vec![JobSpec::map_only(
        JobId(0),
        "job",
        SimTime::ZERO,
        vec!["in".into()],
    )];
    let racks = cfg.cluster.racks();
    let r = Simulation::new(cfg, jobs).run();
    assert_eq!(r.jobs.len(), 1);
    assert!(r.memory_read_fraction() > 0.8);
    // every block was read, and reads came from both racks over the run
    let rack_of = |n: dyrs_cluster::NodeId| racks[n.index()];
    let used: std::collections::HashSet<u32> =
        r.reads.iter().map(|rd| rack_of(rd.source)).collect();
    assert_eq!(used.len(), 2, "reads should touch both racks");
}
