//! Property-based tests for the workload generators: the published
//! marginals must hold for *every* seed, not just the pinned one.

use dyrs_workloads::{google, hive, sort, swim};
use proptest::prelude::*;
use simkit::SimDuration;

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SWIM marginals hold for any seed: job count, ~85% small jobs,
    /// total ≈ 170 GB, max ≈ 24 GB, nondecreasing arrivals.
    #[test]
    fn swim_marginals_any_seed(seed in any::<u64>()) {
        let w = swim::generate(&swim::SwimParams::default(), seed);
        prop_assert_eq!(w.len(), 200);
        let small = w.files.iter().filter(|f| f.bytes < 64 * MB).count() as f64 / 200.0;
        prop_assert!((0.75..=0.95).contains(&small), "small fraction {small}");
        let total = w.total_input_bytes();
        prop_assert!(
            (140 * GB..=200 * GB).contains(&total),
            "total {} GB", total / GB
        );
        let max = w.files.iter().map(|f| f.bytes).max().expect("files");
        prop_assert!(max <= 24 * GB, "max job {} GB", max / GB);
        let times: Vec<_> = w.jobs.iter().map(|j| j.submit_at).collect();
        prop_assert!(times.windows(2).all(|p| p[0] <= p[1]));
        // every job's input file exists
        for j in &w.jobs {
            for f in &j.input_files {
                prop_assert!(w.files.iter().any(|x| &x.name == f), "missing {f}");
            }
        }
    }

    /// Hive query workloads are well-formed at any scale: stage chains
    /// are acyclic and every referenced file exists.
    #[test]
    fn hive_workloads_well_formed(scale in 0.05f64..2.0, qi in 0usize..10) {
        let q = &hive::queries()[qi];
        let w = hive::query_workload(q, scale, 500);
        prop_assert_eq!(w.jobs.len(), 1 + q.follow_stages);
        for (i, j) in w.jobs.iter().enumerate() {
            if i == 0 {
                prop_assert!(j.depends_on.is_empty());
            } else {
                prop_assert_eq!(j.depends_on.len(), 1);
                prop_assert_eq!(j.depends_on[0], w.jobs[i - 1].id);
            }
            for f in &j.input_files {
                prop_assert!(w.files.iter().any(|x| &x.name == f));
            }
            prop_assert!(j.cpu_factor >= 1.0, "Hive compute is heavy");
        }
        // the scan dominates: stage-1 input ≫ any follow-up input
        prop_assert!(w.files[0].bytes >= 10 * w.files.last().expect("files").bytes);
    }

    /// Sort workloads shuffle exactly their input and scale reduce counts.
    #[test]
    fn sort_well_formed(gb in 1u64..64, lead in 0u64..300) {
        let w = sort::sort_workload(gb << 30, SimDuration::from_secs(lead), 9);
        prop_assert_eq!(w.jobs[0].shuffle_bytes, gb << 30);
        prop_assert!(w.jobs[0].reduce_tasks >= 1);
        prop_assert!(w.jobs[0].reduce_tasks <= 14);
        prop_assert_eq!(w.jobs[0].extra_lead_time, SimDuration::from_secs(lead));
        prop_assert_eq!(w.total_input_bytes(), gb << 30);
    }

    /// Google job populations keep their calibrated statistics under any
    /// seed (the motivation figures are seed-robust).
    #[test]
    fn google_population_any_seed(seed in any::<u64>()) {
        let jobs = google::job_population(seed, 30_000);
        let frac = google::migratable_fraction(&jobs);
        prop_assert!((0.77..=0.85).contains(&frac), "migratable {frac}");
        let mean = jobs.iter().map(|j| j.lead_secs).sum::<f64>() / jobs.len() as f64;
        prop_assert!((6.5..=11.5).contains(&mean), "mean lead {mean}");
        prop_assert!(jobs.iter().all(|j| j.lead_secs > 0.0 && j.read_secs > 0.0));
    }

    /// Utilization traces stay in [0,1] and are never flat.
    #[test]
    fn google_traces_bounded(seed in any::<u64>(), node in 0u64..64) {
        let t = google::node_utilization_trace(seed, node, google::SAMPLES_24H);
        prop_assert_eq!(t.len(), google::SAMPLES_24H);
        prop_assert!(t.iter().all(|&u| (0.0..=1.0).contains(&u)));
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let var = t.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / t.len() as f64;
        prop_assert!(var > 0.0);
    }
}
