//! TPC-DS-style Hive queries (paper §V-B1, Fig. 4).
//!
//! The paper runs the ten TPC-DS queries that exist in HiveQL form on
//! Hive 2.3.2. What matters for migration is each query's *shape*, not
//! its SQL: how much cold table data the first stage scans, how selective
//! the scan is (map output ≪ input — the paper measured maps at ~97% of
//! query runtime), and how many shorter stages follow. We model each
//! query as a chain of MapReduce jobs with those shapes, sized relative
//! to a TPC-DS scale factor.
//!
//! Query names follow the TPC-DS numbering the paper's figures use
//! (q15 is the one with the paper's best speedup).

use crate::Workload;
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::FileSpec;
use simkit::{SimDuration, SimTime};

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// Per-byte CPU cost multiplier of Hive's SQL operators relative to the
/// engine's light default mapper.
pub const HIVE_CPU_FACTOR: f64 = 8.0;

/// Shape of one modeled query.
#[derive(Debug, Clone)]
pub struct HiveQuery {
    /// TPC-DS-style label ("q15").
    pub name: &'static str,
    /// Cold bytes the first stage scans at scale factor 1.0.
    pub scan_bytes: u64,
    /// Map-output : input selectivity of the scan stage (small — SELECT
    /// plus WHERE predicates drop most data).
    pub selectivity: f64,
    /// Number of follow-up stages (joins/aggregations over reduced data).
    pub follow_stages: usize,
    /// Tables the scan stage touches, as fractions of `scan_bytes`; the
    /// first entry is the fact table (store_sales / web_sales / ...), the
    /// rest the joined dimensions. Fractions sum to 1.
    pub tables: &'static [(&'static str, f64)],
}

/// The common TPC-DS scan shape: one dominant fact table plus small
/// dimension tables (date_dim, item, customer...).
const FACT_HEAVY: &[(&str, f64)] = &[
    ("store_sales", 0.92),
    ("date_dim", 0.01),
    ("item", 0.03),
    ("customer", 0.04),
];
const WEB_SALES: &[(&str, f64)] = &[
    ("web_sales", 0.90),
    ("date_dim", 0.01),
    ("customer_address", 0.04),
    ("customer", 0.05),
];
const TWO_FACT: &[(&str, f64)] = &[
    ("store_sales", 0.62),
    ("store_returns", 0.30),
    ("date_dim", 0.01),
    ("store", 0.07),
];

/// The ten queries, ordered by scan size like Fig. 4b (sorted by input).
pub fn queries() -> Vec<HiveQuery> {
    vec![
        HiveQuery {
            name: "q55",
            scan_bytes: 9 * GB,
            selectivity: 0.03,
            follow_stages: 1,
            tables: FACT_HEAVY,
        },
        HiveQuery {
            name: "q3",
            scan_bytes: 11 * GB,
            selectivity: 0.02,
            follow_stages: 1,
            tables: FACT_HEAVY,
        },
        HiveQuery {
            name: "q52",
            scan_bytes: 12 * GB,
            selectivity: 0.02,
            follow_stages: 1,
            tables: FACT_HEAVY,
        },
        HiveQuery {
            name: "q19",
            scan_bytes: 15 * GB,
            selectivity: 0.04,
            follow_stages: 2,
            tables: WEB_SALES,
        },
        HiveQuery {
            name: "q42",
            scan_bytes: 17 * GB,
            selectivity: 0.02,
            follow_stages: 1,
            tables: FACT_HEAVY,
        },
        HiveQuery {
            name: "q15",
            scan_bytes: 21 * GB,
            selectivity: 0.01,
            follow_stages: 1,
            tables: WEB_SALES,
        },
        HiveQuery {
            name: "q12",
            scan_bytes: 26 * GB,
            selectivity: 0.05,
            follow_stages: 2,
            tables: WEB_SALES,
        },
        HiveQuery {
            name: "q7",
            scan_bytes: 34 * GB,
            selectivity: 0.04,
            follow_stages: 2,
            tables: FACT_HEAVY,
        },
        HiveQuery {
            name: "q27",
            scan_bytes: 43 * GB,
            selectivity: 0.03,
            follow_stages: 2,
            tables: TWO_FACT,
        },
        HiveQuery {
            name: "q89",
            scan_bytes: 54 * GB,
            selectivity: 0.03,
            follow_stages: 2,
            tables: TWO_FACT,
        },
    ]
}

/// Build the workload for one query at the given scale factor: the table
/// file plus a chain of stage jobs. Hive triggers migration right after
/// query compilation (§IV-B), which the simulator models as the first
/// stage's submission-time migration request.
pub fn query_workload(q: &HiveQuery, scale: f64, base_job_id: u64) -> Workload {
    assert!(scale > 0.0, "non-positive scale");
    let scan = (q.scan_bytes as f64 * scale) as u64;
    // One file per table the scan touches: the dominant fact table plus
    // the joined dimension tables, sized by their catalog fractions.
    let mut files = Vec::with_capacity(q.tables.len());
    let mut table_names = Vec::with_capacity(q.tables.len());
    for (tname, frac) in q.tables {
        let fname = format!("tpcds/{}/{tname}", q.name);
        files.push(FileSpec::new(
            fname.clone(),
            ((scan as f64 * frac) as u64).max(MB),
        ));
        table_names.push(fname);
    }

    let mut jobs = Vec::with_capacity(1 + q.follow_stages);
    // Stage 1: the big cold scan over every touched table.
    let shuffle1 = ((scan as f64 * q.selectivity) as u64).max(8 * MB);
    let mut s1 = JobSpec::map_only(
        JobId(base_job_id),
        format!("{}-s1", q.name),
        SimTime::ZERO,
        table_names,
    );
    s1.shuffle_bytes = shuffle1;
    s1.reduce_tasks = ((shuffle1 / GB) + 1).min(7) as usize;
    // Hive compiles the query before submitting the first stage and the
    // migration call sits right after compilation (§IV-B), so stage 1
    // enjoys extra lead-time beyond the platform overhead.
    s1.extra_lead_time = SimDuration::from_secs(5);
    // SQL operators (deserialization, predicates, projections) are far
    // heavier per byte than trace-replay mappers.
    s1.cpu_factor = HIVE_CPU_FACTOR;
    jobs.push(s1);

    // Follow-up stages: each consumes a shrinking intermediate. Their
    // inputs are materialized intermediates (small, written hot just
    // before the read — modeled as small files read by the next stage).
    let mut inter = shuffle1;
    let mut prev = JobId(base_job_id);
    for k in 0..q.follow_stages {
        inter = (inter / 4).max(4 * MB);
        let fname = format!("tpcds/{}-inter{}", q.name, k);
        files.push(FileSpec::new(fname.clone(), inter));
        let id = JobId(base_job_id + 1 + k as u64);
        let mut s = JobSpec::map_only(
            id,
            format!("{}-s{}", q.name, k + 2),
            SimTime::ZERO,
            vec![fname],
        );
        s.depends_on = vec![prev];
        s.shuffle_bytes = inter / 4;
        s.reduce_tasks = 1;
        s.cpu_factor = HIVE_CPU_FACTOR;
        jobs.push(s);
        prev = id;
    }
    Workload { files, jobs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_queries_sorted_by_scan() {
        let qs = queries();
        assert_eq!(qs.len(), 10);
        assert!(qs.windows(2).all(|w| w[0].scan_bytes <= w[1].scan_bytes));
        assert!(qs.iter().any(|q| q.name == "q15"));
    }

    #[test]
    fn selectivity_is_high() {
        for q in queries() {
            assert!(
                q.selectivity <= 0.05,
                "{}: scans must filter heavily (got {})",
                q.name,
                q.selectivity
            );
        }
    }

    #[test]
    fn workload_chains_stages() {
        let qs = queries();
        let w = query_workload(&qs[3], 1.0, 100); // q19, 2 follow stages
        assert_eq!(w.jobs.len(), 3);
        assert_eq!(w.files.len(), qs[3].tables.len() + 2); // tables + 2 intermediates
        assert!(w.jobs[0].depends_on.is_empty());
        assert_eq!(w.jobs[1].depends_on, vec![JobId(100)]);
        assert_eq!(w.jobs[2].depends_on, vec![JobId(101)]);
        // the fact table dominates; intermediates shrink below dimensions
        let inter = w.files.last().expect("files");
        assert!(inter.bytes < w.files[0].bytes / 10);
    }

    #[test]
    fn table_fractions_sum_to_one() {
        for q in queries() {
            let sum: f64 = q.tables.iter().map(|&(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: fractions sum {sum}", q.name);
            assert!(
                q.tables[0].1 > 0.5,
                "{}: first entry must be the fact table",
                q.name
            );
        }
    }

    #[test]
    fn stage1_reads_every_table() {
        let q = &queries()[0];
        let w = query_workload(q, 1.0, 0);
        assert_eq!(w.jobs[0].input_files.len(), q.tables.len());
        let total: u64 = w.files[..q.tables.len()].iter().map(|f| f.bytes).sum();
        let want = q.scan_bytes;
        assert!(
            (total as f64 - want as f64).abs() / (want as f64) < 0.01,
            "table sizes must sum to the scan: {total} vs {want}"
        );
    }

    #[test]
    fn scale_factor_scales_scan() {
        let qs = queries();
        let half = query_workload(&qs[0], 0.5, 0);
        let full = query_workload(&qs[0], 1.0, 0);
        let diff = (half.files[0].bytes as i64 * 2 - full.files[0].bytes as i64).abs();
        assert!(diff <= 2, "fact table must scale linearly ({diff})");
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_scale_rejected() {
        query_workload(&queries()[0], 0.0, 0);
    }
}
