//! Google-cluster-trace synthesis (paper §II, Figs. 1–3).
//!
//! The motivation section derives three statistics from the 2011 Google
//! cluster trace; we do not ship the trace, so this module generates
//! synthetic populations calibrated to the *published* statistics and the
//! tests pin them:
//!
//! * per-node disk utilization is low on average — **3.1% mean over 24 h,
//!   80% of 5-minute samples under 4%** (Fig. 3) — yet heterogeneous
//!   across nodes and time, with some nodes consistently ~an order of
//!   magnitude busier than others (Fig. 1);
//! * job **lead-time averages 8.8 s** and **81% of jobs have lead-time ≥
//!   read-time** (Fig. 2), which is what makes proactive migration
//!   feasible at all.

use dyrs_cluster::{InterferencePattern, InterferenceSchedule, NodeId};
use simkit::{Rng, SimDuration, SimTime};

/// Number of 5-minute samples in 24 hours.
pub const SAMPLES_24H: usize = 288;

/// One synthetic job for the lead-time/read-time analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoogleJob {
    /// Submission → first task start, seconds.
    pub lead_secs: f64,
    /// Time to read the inputs into memory, seconds.
    pub read_secs: f64,
}

impl GoogleJob {
    /// lead-time ÷ read-time; `INFINITY` for a zero read.
    pub fn lead_to_read_ratio(&self) -> f64 {
        if self.read_secs == 0.0 {
            f64::INFINITY
        } else {
            self.lead_secs / self.read_secs
        }
    }
}

/// Per-node disk-utilization trace: `samples` values in `[0, 1]` at
/// 5-minute granularity.
///
/// Each node draws a persistent base rate from a lognormal (the across-
/// node heterogeneity of Fig. 1: storage-heavy nodes sit well above the
/// rest for the whole day) and modulates it with an AR(1)-smoothed
/// exponential burst process (the within-day variation).
pub fn node_utilization_trace(seed: u64, node: u64, samples: usize) -> Vec<f64> {
    let mut rng = Rng::new(seed ^ 0x474f_4f47).derive(node); // "GOOG"
                                                             // Base rate: median 1.6%, heavy upper tail → mean ≈ 3%.
    let base = rng.lognormal(0.016f64.ln(), 1.1).clamp(0.001, 0.5);
    let mut burst = 1.0f64;
    (0..samples)
        .map(|_| {
            // AR(1) smoothing keeps bursts correlated across adjacent
            // samples, like multi-minute IO-heavy tasks.
            let innovation = rng.exponential(1.0);
            burst = 0.7 * burst + 0.3 * innovation;
            (base * burst).min(1.0)
        })
        .collect()
}

/// Traces for a set of nodes.
pub fn cluster_utilization(seed: u64, nodes: usize, samples: usize) -> Vec<Vec<f64>> {
    (0..nodes as u64)
        .map(|n| node_utilization_trace(seed, n, samples))
        .collect()
}

/// A population of `n` jobs with lead- and read-times calibrated so the
/// mean lead-time is ≈8.8 s and ≈81% of jobs have lead ≥ read.
pub fn job_population(seed: u64, n: usize) -> Vec<GoogleJob> {
    let mut rng = Rng::new(seed ^ 0x4a4f_4253); // "JOBS"
                                                // lead ~ lognormal(µ=1.45, σ=1.2) → mean e^{1.45+0.72} ≈ 8.8 s.
                                                // read ~ lognormal(µ=-0.24, σ=1.5) →
                                                //   P(lead ≥ read) = Φ((1.45+0.24)/√(1.2²+1.5²)) = Φ(0.88) ≈ 0.81.
    (0..n)
        .map(|_| GoogleJob {
            lead_secs: rng.lognormal(1.45, 1.2),
            read_secs: rng.lognormal(-0.24, 1.5),
        })
        .collect()
}

/// Build a trace-driven background-interference schedule for `node`,
/// replaying a synthesized utilization trace at the given sample step
/// (the evaluation-side use of the §II motivation data: run workloads on
/// a cluster whose disks carry Google-trace-like background load).
pub fn background_schedule(
    seed: u64,
    node: NodeId,
    duration: SimTime,
    step: SimDuration,
) -> InterferenceSchedule {
    assert!(!step.is_zero(), "zero sample step");
    let n = (duration.as_micros() / step.as_micros()) as usize + 1;
    let trace = node_utilization_trace(seed, node.0 as u64, n);
    let samples: Vec<(SimTime, f64)> = trace
        .into_iter()
        .enumerate()
        .map(|(i, u)| (SimTime::ZERO + step * i as u64, u))
        .collect();
    InterferenceSchedule {
        node,
        streams: 0,
        weight: 1.0,
        pattern: InterferencePattern::TraceDriven(samples),
    }
}

/// Fraction of jobs whose lead-time covers their read-time entirely.
pub fn migratable_fraction(jobs: &[GoogleJob]) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    jobs.iter().filter(|j| j.lead_secs >= j.read_secs).count() as f64 / jobs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_mean_matches_paper() {
        let traces = cluster_utilization(1, 200, SAMPLES_24H);
        let all: Vec<f64> = traces.iter().flatten().copied().collect();
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        assert!(
            (0.02..=0.045).contains(&mean),
            "mean utilization {mean} (paper: 0.031)"
        );
    }

    #[test]
    fn eighty_percent_of_samples_under_four_percent() {
        let traces = cluster_utilization(1, 200, SAMPLES_24H);
        let all: Vec<f64> = traces.iter().flatten().copied().collect();
        let under = all.iter().filter(|&&u| u < 0.04).count() as f64 / all.len() as f64;
        assert!(
            (0.72..=0.88).contains(&under),
            "fraction under 4%: {under} (paper: 0.80)"
        );
    }

    #[test]
    fn nodes_are_heterogeneous() {
        let traces = cluster_utilization(3, 40, SAMPLES_24H);
        let means: Vec<f64> = traces
            .iter()
            .map(|t| t.iter().sum::<f64>() / t.len() as f64)
            .collect();
        let max = means.iter().cloned().fold(0.0, f64::max);
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 5.0,
            "persistent cross-node heterogeneity expected: max {max}, min {min}"
        );
    }

    #[test]
    fn traces_vary_over_time() {
        let t = node_utilization_trace(1, 0, SAMPLES_24H);
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let var = t.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / t.len() as f64;
        assert!(var > 0.0, "flat trace");
        assert!(t.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn lead_time_mean_is_8_8_seconds() {
        let jobs = job_population(1, 100_000);
        let mean = jobs.iter().map(|j| j.lead_secs).sum::<f64>() / jobs.len() as f64;
        assert!(
            (7.5..=10.0).contains(&mean),
            "mean lead {mean} (paper: 8.8)"
        );
    }

    #[test]
    fn eighty_one_percent_migratable() {
        let jobs = job_population(1, 100_000);
        let frac = migratable_fraction(&jobs);
        assert!(
            (0.78..=0.84).contains(&frac),
            "migratable fraction {frac} (paper: 0.81)"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(
            node_utilization_trace(5, 2, 100),
            node_utilization_trace(5, 2, 100)
        );
        assert_eq!(job_population(5, 10), job_population(5, 10));
    }

    #[test]
    fn background_schedule_replays_trace() {
        let s = background_schedule(
            1,
            NodeId(2),
            SimTime::from_secs(60),
            SimDuration::from_secs(10),
        );
        let samples = s
            .background_samples(SimTime::from_secs(60))
            .expect("trace-driven");
        assert_eq!(samples.len(), 7); // t=0,10,...,60
        assert!(samples.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(samples.iter().all(|&(_, u)| (0.0..=0.99).contains(&u)));
    }

    #[test]
    fn ratio_edge_cases() {
        let j = GoogleJob {
            lead_secs: 5.0,
            read_secs: 0.0,
        };
        assert_eq!(j.lead_to_read_ratio(), f64::INFINITY);
        assert_eq!(migratable_fraction(&[]), 0.0);
    }
}
