//! Iterative-analytics workload (paper §I motivation).
//!
//! "Reading data from disk can cause the first iteration in Logistic
//! Regression and K-Means to run 15x and 2.5x longer than later
//! iterations respectively. Reducing this initial slowdown would
//! significantly speed up both applications."
//!
//! An iterative job (Spark-style) reads its training data **cold** in
//! iteration 1, caches it in the framework's memory (RDD), and runs
//! compute-bound iterations thereafter. DYRS cannot speed the later
//! iterations, but it can migrate the input during the job's lead-time so
//! iteration 1 stops being an outlier.
//!
//! Model: iteration 1 is a map job over the cold input with per-byte
//! compute `iter_cpu`; iterations 2+ are map jobs over a tiny cached-
//! partition manifest with the same *total* compute (framework-cached
//! data, no cold reads), chained by dependencies.

use crate::Workload;
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::FileSpec;
use simkit::SimTime;

const MB: u64 = 1 << 20;

/// Shape of one iterative application.
#[derive(Debug, Clone)]
pub struct IterativeSpec {
    /// Application label ("kmeans", "logreg").
    pub name: &'static str,
    /// Cold training-set size, bytes.
    pub input_bytes: u64,
    /// Number of iterations (including the first).
    pub iterations: usize,
    /// Per-iteration compute multiplier relative to the engine's default
    /// per-byte map cost. Low values make iteration 1 read-dominated —
    /// the paper's Logistic Regression case (15× first-iteration
    /// penalty); higher values the K-Means case (2.5×).
    pub cpu_factor: f64,
}

/// The two applications the paper cites.
pub fn apps() -> Vec<IterativeSpec> {
    vec![
        IterativeSpec {
            name: "logreg",
            input_bytes: 8 << 30,
            iterations: 6,
            cpu_factor: 0.6,
        },
        IterativeSpec {
            name: "kmeans",
            input_bytes: 8 << 30,
            iterations: 6,
            cpu_factor: 4.0,
        },
    ]
}

/// Build the iteration chain for one application.
///
/// Returns the workload; job ids start at `base_job_id` and iteration
/// `k`'s job id is `base_job_id + k`.
pub fn workload(spec: &IterativeSpec, base_job_id: u64) -> Workload {
    assert!(spec.iterations >= 1, "need at least one iteration");
    let input = format!("iter/{}-training", spec.name);
    // The cached-RDD stand-in read by iterations 2+: one tiny file per
    // partition, so later iterations have the same task parallelism as
    // iteration 1 but negligible read cost; each task's cpu_factor is
    // scaled so its compute matches an iteration-1 task's.
    let partitions = spec.input_bytes.div_ceil(dyrs_dfs::DEFAULT_BLOCK_SIZE) as usize;
    let part_bytes = 8 * MB;
    let mut files = vec![FileSpec::new(input.clone(), spec.input_bytes)];
    let part_names: Vec<String> = (0..partitions)
        .map(|i| format!("iter/{}-cache-{i:03}", spec.name))
        .collect();
    for name in &part_names {
        files.push(FileSpec::new(name.clone(), part_bytes));
    }

    let mut jobs = Vec::with_capacity(spec.iterations);
    let mut it1 = JobSpec::map_only(
        JobId(base_job_id),
        format!("{}-iter1", spec.name),
        SimTime::ZERO,
        vec![input],
    );
    it1.cpu_factor = spec.cpu_factor;
    jobs.push(it1);
    for k in 1..spec.iterations {
        let id = JobId(base_job_id + k as u64);
        let mut it = JobSpec::map_only(
            id,
            format!("{}-iter{}", spec.name, k + 1),
            SimTime::ZERO,
            part_names.clone(),
        );
        it.depends_on = vec![JobId(base_job_id + k as u64 - 1)];
        // same per-task compute as an iteration-1 task over a full block
        it.cpu_factor = spec.cpu_factor * dyrs_dfs::DEFAULT_BLOCK_SIZE as f64 / part_bytes as f64;
        jobs.push(it);
    }
    Workload { files, jobs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_linear_and_compute_matched() {
        let spec = &apps()[0];
        let w = workload(spec, 100);
        assert_eq!(w.jobs.len(), spec.iterations);
        for (k, j) in w.jobs.iter().enumerate() {
            if k == 0 {
                assert!(j.depends_on.is_empty());
            } else {
                assert_eq!(j.depends_on, vec![JobId(100 + k as u64 - 1)]);
            }
        }
        // per-task compute (cpu_factor × task bytes) must match: a full
        // block in iteration 1 vs an 8 MB partition later
        let it1 = w.jobs[0].cpu_factor * dyrs_dfs::DEFAULT_BLOCK_SIZE as f64;
        let it2 = w.jobs[1].cpu_factor * (8 * MB) as f64;
        assert!((it1 - it2).abs() / it1 < 1e-9, "{it1} vs {it2}");
        // same parallelism: one cache partition per input block
        let parts = spec.input_bytes.div_ceil(dyrs_dfs::DEFAULT_BLOCK_SIZE);
        assert_eq!(w.jobs[1].input_files.len() as u64, parts);
    }

    #[test]
    fn both_paper_apps_present() {
        let a = apps();
        assert!(a.iter().any(|s| s.name == "logreg"));
        assert!(a.iter().any(|s| s.name == "kmeans"));
        // logreg is the read-dominated one
        let lr = a.iter().find(|s| s.name == "logreg").expect("logreg");
        let km = a.iter().find(|s| s.name == "kmeans").expect("kmeans");
        assert!(lr.cpu_factor < km.cpu_factor);
    }
}
