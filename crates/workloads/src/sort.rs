//! Sort jobs (paper §V-B3, §V-F).
//!
//! Sort is the adversarial case for migration: no data reduction (shuffle
//! equals input), so the map phase is a smaller share of the job than in
//! filtering workloads — the paper sees "up to 20%" speedup here versus
//! 36% for Hive. The Fig. 8–11 and Table II experiments all use Sort with
//! varying input sizes, lead-times and interference patterns.

use crate::Workload;
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::FileSpec;
use simkit::{SimDuration, SimTime};

const GB: u64 = 1 << 30;

/// Build a single Sort job over `input_bytes`, with optional artificial
/// extra lead-time (Fig. 11b).
pub fn sort_workload(input_bytes: u64, extra_lead_time: SimDuration, job_id: u64) -> Workload {
    let file = format!("sort/input-{job_id}");
    let mut spec = JobSpec::map_only(
        JobId(job_id),
        format!("sort-{}g", input_bytes / GB),
        SimTime::ZERO,
        vec![file.clone()],
    );
    // Sort: every input byte is shuffled and written back out.
    spec.shuffle_bytes = input_bytes;
    spec.reduce_tasks = ((input_bytes / (2 * GB)) + 1).min(14) as usize;
    spec.extra_lead_time = extra_lead_time;
    Workload {
        files: vec![FileSpec::new(file, input_bytes)],
        jobs: vec![spec],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_shuffles_everything() {
        let w = sort_workload(10 * GB, SimDuration::ZERO, 0);
        assert_eq!(w.jobs.len(), 1);
        assert_eq!(w.jobs[0].shuffle_bytes, 10 * GB);
        assert!(w.jobs[0].reduce_tasks >= 1);
        assert_eq!(w.total_input_bytes(), 10 * GB);
    }

    #[test]
    fn lead_time_is_propagated() {
        let w = sort_workload(GB, SimDuration::from_secs(30), 2);
        assert_eq!(w.jobs[0].extra_lead_time, SimDuration::from_secs(30));
        assert_eq!(w.jobs[0].id, JobId(2));
    }

    #[test]
    fn reduce_count_scales_with_size() {
        let small = sort_workload(GB, SimDuration::ZERO, 0);
        let big = sort_workload(20 * GB, SimDuration::ZERO, 1);
        assert!(big.jobs[0].reduce_tasks > small.jobs[0].reduce_tasks);
        assert!(big.jobs[0].reduce_tasks <= 14);
    }
}
