//! # dyrs-workloads — workload and trace generators
//!
//! The three evaluation workloads (paper §V-B) plus the Google-trace
//! synthesis used by the motivation section (§II):
//!
//! * [`swim`] — a 200-job trace-style workload with the published
//!   SWIM/Facebook marginals: heavy-tailed input sizes (85% of jobs under
//!   64 MB, a few up to 24 GB), 170 GB cumulative input, inter-arrival
//!   times reduced 75% to force concurrency;
//! * [`hive`] — ten TPC-DS-style queries modeled as chains of
//!   map-dominant MapReduce jobs with high input selectivity (the paper
//!   measured map tasks at ~97% of query runtime);
//! * [`sort`] — Sort jobs across input sizes and artificial lead-times
//!   (Figs. 8–11, Table II);
//! * [`google`] — synthetic per-node disk-utilization traces and job
//!   lead-time/read-time populations calibrated to the Google cluster
//!   trace statistics the paper reports (Figs. 1–3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod google;
pub mod hive;
pub mod iterative;
pub mod sort;
pub mod swim;

use dyrs_engine::JobSpec;
use dyrs_sim::FileSpec;

/// A ready-to-run workload: the files that must pre-exist in the DFS and
/// the jobs to submit.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Input files.
    pub files: Vec<FileSpec>,
    /// Jobs, with submission times and dependencies.
    pub jobs: Vec<JobSpec>,
}

impl Workload {
    /// Total bytes across all input files.
    pub fn total_input_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes).sum()
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if there are no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}
