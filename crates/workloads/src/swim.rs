//! SWIM-style trace workload (paper §V-B2).
//!
//! "Jobs are sized (input, shuffle and output data size) and submitted
//! according to the trace. We use the first 200 jobs ... The scaled
//! cumulative job input size across all 200 jobs is 170GB. To have
//! multiple jobs running concurrently we reduced job inter-arrival times
//! by 75%. The distribution of job input sizes is heavy-tailed ...: 85%
//! of jobs read little data (less than 64MB) but most of the data is read
//! by a few large jobs (up to 24GB)."
//!
//! We do not ship Facebook's trace; instead we sample jobs from a mixture
//! calibrated to exactly those published marginals, then rescale so the
//! totals match. Tests assert each marginal.

use crate::Workload;
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::FileSpec;
use simkit::{Rng, SimTime};

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// Parameters for the SWIM-style generator. Defaults match the paper.
#[derive(Debug, Clone)]
pub struct SwimParams {
    /// Number of jobs (paper: first 200 of the trace).
    pub jobs: usize,
    /// Target cumulative input size (paper: 170 GB after scaling).
    pub total_input_bytes: u64,
    /// Fraction of jobs with input below `small_cutoff` (paper: 85%).
    pub small_fraction: f64,
    /// The "little data" threshold (paper: 64 MB).
    pub small_cutoff: u64,
    /// Largest single job input (paper: up to 24 GB).
    pub max_input: u64,
    /// Mean inter-arrival time *after* the 75% reduction, seconds.
    pub mean_interarrival_secs: f64,
}

impl Default for SwimParams {
    fn default() -> Self {
        SwimParams {
            jobs: 200,
            total_input_bytes: 170 * GB,
            small_fraction: 0.85,
            small_cutoff: 64 * MB,
            max_input: 24 * GB,
            mean_interarrival_secs: 3.5,
        }
    }
}

/// Generate the workload. Deterministic under `seed`.
///
/// ```
/// use dyrs_workloads::swim::{generate, SwimParams};
///
/// let w = generate(&SwimParams::default(), 42);
/// assert_eq!(w.len(), 200);
/// // heavy tail: most jobs are small, most bytes sit in a few large jobs
/// let small = w.files.iter().filter(|f| f.bytes < 64 << 20).count();
/// assert!(small > 150);
/// assert!(w.total_input_bytes() > 150 << 30);
/// ```
pub fn generate(params: &SwimParams, seed: u64) -> Workload {
    let mut rng = Rng::new(seed ^ 0x5157_494d); // "SWIM"
                                                // --- input sizes -------------------------------------------------
                                                // Small jobs: log-uniform in [1 MB, 64 MB). The tail: log-uniform in
                                                // [64 MB, max], which concentrates most bytes in a handful of jobs.
    let mut sizes: Vec<u64> = (0..params.jobs)
        .map(|_| {
            if rng.chance(params.small_fraction) {
                log_uniform(&mut rng, MB as f64, params.small_cutoff as f64)
            } else {
                log_uniform(
                    &mut rng,
                    params.small_cutoff as f64,
                    params.max_input as f64,
                )
            }
        })
        .collect();
    // Force the documented maximum to exist: the biggest sample becomes a
    // `max_input` job, making "up to 24 GB" literal.
    if let Some(big) = sizes.iter_mut().max() {
        *big = params.max_input;
    }
    // Rescale the *tail* so totals match without moving jobs across the
    // 64 MB boundary (which would break the 85% marginal).
    let small_total: u64 = sizes.iter().filter(|&&s| s < params.small_cutoff).sum();
    let tail_total: u64 = sizes.iter().filter(|&&s| s >= params.small_cutoff).sum();
    let target_tail = params.total_input_bytes.saturating_sub(small_total);
    if tail_total > 0 {
        // Iteratively scale-and-clamp: scaling can push jobs past the
        // documented 24 GB maximum, so redistribute the excess over the
        // unclamped tail a few times (converges fast).
        for _ in 0..4 {
            let current: u64 = sizes.iter().filter(|&&s| s >= params.small_cutoff).sum();
            let unclamped: u64 = sizes
                .iter()
                .filter(|&&s| s >= params.small_cutoff && s < params.max_input)
                .sum();
            if unclamped == 0 || current == 0 {
                break;
            }
            let clamped = current - unclamped;
            let k = (target_tail.saturating_sub(clamped)) as f64 / unclamped as f64;
            for s in sizes
                .iter_mut()
                .filter(|s| **s >= params.small_cutoff && **s < params.max_input)
            {
                *s = (((*s as f64 * k) as u64).max(params.small_cutoff)).min(params.max_input);
            }
        }
    }

    // --- arrivals ----------------------------------------------------
    let mut t = 0.0;
    let mut files = Vec::with_capacity(params.jobs);
    let mut jobs = Vec::with_capacity(params.jobs);
    for (i, &input) in sizes.iter().enumerate() {
        t += rng.exponential(params.mean_interarrival_secs);
        let name = format!("swim/input-{i:03}");
        files.push(FileSpec::new(name.clone(), input));
        // Shuffle/output shape: the FB trace mixes map-only jobs with
        // aggregations. ~40% map-only; the rest shuffle 10–100% of input.
        let (shuffle, reduces) = if rng.chance(0.4) {
            (0u64, 0usize)
        } else {
            let ratio = rng.range_f64(0.1, 1.0);
            let shuffle = (input as f64 * ratio) as u64;
            let reduces = (shuffle / (2 * GB) + 1).min(14) as usize;
            (shuffle, reduces)
        };
        let mut spec = JobSpec::map_only(
            JobId(i as u64),
            format!("swim-{i:03}"),
            SimTime::from_secs_f64(t),
            vec![name],
        );
        spec.shuffle_bytes = shuffle;
        spec.reduce_tasks = reduces;
        jobs.push(spec);
    }
    Workload { files, jobs }
}

fn log_uniform(rng: &mut Rng, lo: f64, hi: f64) -> u64 {
    debug_assert!(lo > 0.0 && hi > lo);
    (lo * (hi / lo).powf(rng.f64())) as u64
}

/// The paper's Fig. 5 size bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeBin {
    /// < 64 MB.
    Small,
    /// 64 MB – 1 GB.
    Medium,
    /// > 1 GB.
    Large,
}

/// Classify a job input size into the Fig. 5 bins.
pub fn size_bin(input_bytes: u64) -> SizeBin {
    if input_bytes < 64 * MB {
        SizeBin::Small
    } else if input_bytes <= GB {
        SizeBin::Medium
    } else {
        SizeBin::Large
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginals_match_the_paper() {
        let w = generate(&SwimParams::default(), 42);
        assert_eq!(w.len(), 200);
        let small = w.files.iter().filter(|f| f.bytes < 64 * MB).count() as f64 / 200.0;
        assert!((0.78..=0.92).contains(&small), "small-job fraction {small}");
        let total = w.total_input_bytes() as f64 / GB as f64;
        assert!(
            (150.0..=190.0).contains(&total),
            "total input {total} GB (target 170)"
        );
        let max = w.files.iter().map(|f| f.bytes).max().unwrap();
        assert!(
            (20 * GB..=30 * GB).contains(&max),
            "largest job {} GB",
            max / GB
        );
    }

    #[test]
    fn heavy_tail_carries_most_bytes() {
        let w = generate(&SwimParams::default(), 7);
        let total = w.total_input_bytes();
        let tail: u64 = w
            .files
            .iter()
            .filter(|f| f.bytes >= 64 * MB)
            .map(|f| f.bytes)
            .sum();
        assert!(
            tail as f64 / total as f64 > 0.9,
            "big jobs must carry most bytes: {}",
            tail as f64 / total as f64
        );
    }

    #[test]
    fn arrivals_are_increasing_and_concurrent() {
        let w = generate(&SwimParams::default(), 42);
        let times: Vec<f64> = w.jobs.iter().map(|j| j.submit_at.as_secs_f64()).collect();
        assert!(times.windows(2).all(|p| p[0] <= p[1]));
        let span = times.last().unwrap() - times[0];
        // ~200 jobs at mean 3.5 s spacing → roughly 700 s; far shorter than
        // 200 sequential 31 s jobs, so concurrency is forced.
        assert!((300.0..1500.0).contains(&span), "span {span}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&SwimParams::default(), 9);
        let b = generate(&SwimParams::default(), 9);
        assert_eq!(a.files, b.files);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn size_bins() {
        assert_eq!(size_bin(10 * MB), SizeBin::Small);
        assert_eq!(size_bin(100 * MB), SizeBin::Medium);
        assert_eq!(size_bin(2 * GB), SizeBin::Large);
    }

    #[test]
    fn some_jobs_have_reduces() {
        let w = generate(&SwimParams::default(), 42);
        let with_reduce = w.jobs.iter().filter(|j| j.reduce_tasks > 0).count();
        let map_only = w.jobs.iter().filter(|j| j.reduce_tasks == 0).count();
        assert!(with_reduce > 50, "reduce jobs {with_reduce}");
        assert!(map_only > 50, "map-only jobs {map_only}");
    }
}
