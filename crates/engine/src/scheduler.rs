//! Slot-based task scheduling with locality preference.
//!
//! Models the YARN side of the paper's testbed: each node offers a fixed
//! number of map and reduce containers; ready tasks queue FIFO and are
//! placed with locality preference — a map task would rather run where a
//! (memory, then disk) replica of its input lives, like HDFS/YARN delay
//! scheduling achieves in practice.
//!
//! Queueing for busy slots is one of the two lead-time sources (§II-C1),
//! so the pool exposes exactly when slots free up; the simulator re-runs
//! assignment at those instants.

use dyrs_cluster::NodeId;
use serde::{Deserialize, Serialize};

/// Which kind of container a task needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotKind {
    /// Map container.
    Map,
    /// Reduce container.
    Reduce,
}

/// Free-slot accounting for the whole cluster.
///
/// ```
/// use dyrs_cluster::NodeId;
/// use dyrs_engine::scheduler::{SlotKind, SlotPool};
///
/// let mut pool = SlotPool::new(2, 1, 1); // 2 nodes, 1 map slot each
/// // locality preference wins while the preferred node has room …
/// assert_eq!(pool.acquire(SlotKind::Map, &[NodeId(1)], |_| true), Some(NodeId(1)));
/// // … then the task falls through to whoever is free
/// assert_eq!(pool.acquire(SlotKind::Map, &[NodeId(1)], |_| true), Some(NodeId(0)));
/// // cluster full → the task keeps queueing (lead-time for DYRS!)
/// assert_eq!(pool.acquire(SlotKind::Map, &[], |_| true), None);
/// pool.release(NodeId(1), SlotKind::Map);
/// assert!(pool.acquire(SlotKind::Map, &[], |_| true).is_some());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotPool {
    map_free: Vec<usize>,
    reduce_free: Vec<usize>,
    map_capacity: usize,
    reduce_capacity: usize,
}

impl SlotPool {
    /// A pool over `nodes` nodes with the given per-node capacities.
    pub fn new(nodes: usize, map_per_node: usize, reduce_per_node: usize) -> Self {
        SlotPool {
            map_free: vec![map_per_node; nodes],
            reduce_free: vec![reduce_per_node; nodes],
            map_capacity: map_per_node,
            reduce_capacity: reduce_per_node,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.map_free.len()
    }

    /// Free slots of `kind` on `node`.
    pub fn free(&self, node: NodeId, kind: SlotKind) -> usize {
        match kind {
            SlotKind::Map => self.map_free[node.index()],
            SlotKind::Reduce => self.reduce_free[node.index()],
        }
    }

    /// Total free slots of `kind` across live nodes (`alive` predicate).
    pub fn total_free(&self, kind: SlotKind, alive: impl Fn(NodeId) -> bool) -> usize {
        (0..self.nodes() as u32)
            .map(NodeId)
            .filter(|&n| alive(n))
            .map(|n| self.free(n, kind))
            .sum()
    }

    /// Choose a node for a task and acquire the slot.
    ///
    /// Preference: any live node in `preferred` with a free slot (first
    /// match wins — callers order `preferred` as memory-replica holders
    /// then disk-replica holders); otherwise the live node with the most
    /// free slots (load balance), lowest id on ties. Returns `None` when
    /// the cluster is full — the task keeps queueing (lead-time!).
    pub fn acquire(
        &mut self,
        kind: SlotKind,
        preferred: &[NodeId],
        alive: impl Fn(NodeId) -> bool,
    ) -> Option<NodeId> {
        for &p in preferred {
            if p.index() < self.nodes() && alive(p) && self.free(p, kind) > 0 {
                self.take(p, kind);
                return Some(p);
            }
        }
        let best = (0..self.nodes() as u32)
            .map(NodeId)
            .filter(|&n| alive(n) && self.free(n, kind) > 0)
            .max_by_key(|&n| (self.free(n, kind), std::cmp::Reverse(n)))?;
        self.take(best, kind);
        Some(best)
    }

    fn take(&mut self, node: NodeId, kind: SlotKind) {
        match kind {
            SlotKind::Map => self.map_free[node.index()] -= 1,
            SlotKind::Reduce => self.reduce_free[node.index()] -= 1,
        }
    }

    /// Release a slot after task completion.
    pub fn release(&mut self, node: NodeId, kind: SlotKind) {
        match kind {
            SlotKind::Map => {
                assert!(
                    self.map_free[node.index()] < self.map_capacity,
                    "map slot over-release on {node}"
                );
                self.map_free[node.index()] += 1;
            }
            SlotKind::Reduce => {
                assert!(
                    self.reduce_free[node.index()] < self.reduce_capacity,
                    "reduce slot over-release on {node}"
                );
                self.reduce_free[node.index()] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn up(_: NodeId) -> bool {
        true
    }

    #[test]
    fn preferred_node_wins_when_free() {
        let mut p = SlotPool::new(3, 2, 1);
        let got = p.acquire(SlotKind::Map, &[n(2)], up).unwrap();
        assert_eq!(got, n(2));
        assert_eq!(p.free(n(2), SlotKind::Map), 1);
    }

    #[test]
    fn preference_order_respected() {
        let mut p = SlotPool::new(3, 1, 1);
        // fill node 1
        assert_eq!(p.acquire(SlotKind::Map, &[n(1)], up), Some(n(1)));
        // now prefer 1 then 2: falls through to 2
        assert_eq!(p.acquire(SlotKind::Map, &[n(1), n(2)], up), Some(n(2)));
    }

    #[test]
    fn fallback_balances_by_most_free() {
        let mut p = SlotPool::new(2, 2, 1);
        assert_eq!(p.acquire(SlotKind::Map, &[], up), Some(n(0))); // ties → lowest id
        assert_eq!(p.acquire(SlotKind::Map, &[], up), Some(n(1))); // node 1 now freer
        assert_eq!(p.acquire(SlotKind::Map, &[], up), Some(n(0)));
        assert_eq!(p.acquire(SlotKind::Map, &[], up), Some(n(1)));
        assert_eq!(p.acquire(SlotKind::Map, &[], up), None, "cluster full");
    }

    #[test]
    fn release_returns_capacity() {
        let mut p = SlotPool::new(1, 1, 1);
        let got = p.acquire(SlotKind::Map, &[], up).unwrap();
        assert_eq!(p.acquire(SlotKind::Map, &[], up), None);
        p.release(got, SlotKind::Map);
        assert!(p.acquire(SlotKind::Map, &[], up).is_some());
    }

    #[test]
    fn dead_nodes_never_chosen() {
        let mut p = SlotPool::new(2, 1, 1);
        let alive = |x: NodeId| x != n(0);
        assert_eq!(p.acquire(SlotKind::Map, &[n(0)], alive), Some(n(1)));
        assert_eq!(p.acquire(SlotKind::Map, &[], alive), None);
    }

    #[test]
    fn map_and_reduce_slots_independent() {
        let mut p = SlotPool::new(1, 1, 1);
        assert!(p.acquire(SlotKind::Map, &[], up).is_some());
        assert!(p.acquire(SlotKind::Reduce, &[], up).is_some());
        assert_eq!(p.acquire(SlotKind::Map, &[], up), None);
        assert_eq!(p.acquire(SlotKind::Reduce, &[], up), None);
    }

    #[test]
    fn total_free_counts_live_only() {
        let p = SlotPool::new(3, 2, 1);
        assert_eq!(p.total_free(SlotKind::Map, up), 6);
        assert_eq!(p.total_free(SlotKind::Map, |x| x != n(1)), 4);
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn over_release_panics() {
        let mut p = SlotPool::new(1, 1, 1);
        p.release(n(0), SlotKind::Map);
    }
}
