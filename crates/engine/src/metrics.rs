//! Per-job and per-task result records — the raw material every table and
//! figure in the evaluation is rendered from.

use dyrs_cluster::NodeId;
use dyrs_dfs::{JobId, Medium};
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};

/// Completed-task record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskMetrics {
    /// Owning job.
    pub job: JobId,
    /// True for map tasks.
    pub is_map: bool,
    /// Node it ran on.
    pub node: NodeId,
    /// Input size.
    pub bytes: u64,
    /// Where the input read was served from (maps only).
    pub read_medium: Option<Medium>,
    /// Time spent reading input.
    pub read_time: SimDuration,
    /// Total task duration (start → done).
    pub duration: SimDuration,
}

/// Completed-job record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// The job.
    pub job: JobId,
    /// Its name.
    pub name: String,
    /// Total input bytes.
    pub input_bytes: u64,
    /// Number of map tasks.
    pub map_tasks: usize,
    /// When the job was submitted.
    pub submitted_at: SimTime,
    /// When it completed.
    pub completed_at: SimTime,
    /// Submission → completion.
    pub duration: SimDuration,
    /// Submission → first task start.
    pub lead_time: SimDuration,
    /// First task start → last map done.
    pub map_phase: SimDuration,
    /// Fraction of map input bytes served from memory.
    pub memory_read_fraction: f64,
}

impl JobMetrics {
    /// Speedup of this run relative to `baseline` (same job under another
    /// policy): `1 − duration/baseline`, i.e. 0.33 = "33% faster", matching
    /// how the paper reports Table I ("Speedup w.r.t HDFS"). Negative means
    /// slower (Ignem's −111%).
    pub fn speedup_vs(&self, baseline: &JobMetrics) -> f64 {
        let base = baseline.duration.as_secs_f64();
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.duration.as_secs_f64() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jm(secs: u64) -> JobMetrics {
        JobMetrics {
            job: JobId(1),
            name: "j".into(),
            input_bytes: 1,
            map_tasks: 1,
            submitted_at: SimTime::ZERO,
            completed_at: SimTime::from_secs(secs),
            duration: SimDuration::from_secs(secs),
            lead_time: SimDuration::ZERO,
            map_phase: SimDuration::ZERO,
            memory_read_fraction: 0.0,
        }
    }

    #[test]
    fn speedup_matches_paper_convention() {
        let hdfs = jm(100);
        let dyrs = jm(67);
        let ignem = jm(211);
        assert!((dyrs.speedup_vs(&hdfs) - 0.33).abs() < 1e-9);
        assert!((ignem.speedup_vs(&hdfs) + 1.11).abs() < 1e-9);
        assert_eq!(hdfs.speedup_vs(&jm(0)), 0.0, "degenerate baseline");
    }
}
