//! # dyrs-engine — MapReduce/Tez-like execution engine model
//!
//! The compute substrate the paper's workloads run on (Tez 0.9 on YARN
//! 2.7.3, §V-A). A job is a map stage (one task per input block) followed
//! by an optional reduce stage; Hive queries chain several such jobs via
//! dependencies. The engine models exactly what DYRS's evaluation is
//! sensitive to:
//!
//! * **lead-time** (§II-C1): the gap between job submission and first task
//!   launch, made of platform overhead plus queueing for slots — the
//!   window DYRS uses to migrate inputs;
//! * **slot scheduling with locality** ([`scheduler`]): map tasks prefer
//!   nodes holding a replica (memory first) of their input block;
//! * **task phases**: input read (on the storage substrate), compute,
//!   output write; shuffle and reduce are modeled but never accelerated
//!   by migration, exactly as in the paper.
//!
//! Like the other substrate crates this is purely reactive: `dyrs-sim`
//! drives state transitions from its event loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod job;
pub mod metrics;
pub mod scheduler;
pub mod task;

pub use config::EngineConfig;
pub use job::{JobSpec, JobSpecBuilder, JobState, JobStatus};
pub use metrics::{JobMetrics, TaskMetrics};
pub use scheduler::SlotPool;
pub use task::{TaskId, TaskPhase, TaskState};
