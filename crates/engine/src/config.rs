//! Engine tunables.

use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// Execution-engine configuration. Defaults approximate the paper's
/// testbed: 6-core/12-thread workers running Tez on YARN.
///
/// ```
/// use dyrs_engine::EngineConfig;
///
/// let cfg = EngineConfig::default();
/// // app-level disk reads are ~160x slower than memory reads — the
/// // paper's own measurement, and the reason migration pays off
/// assert!((cfg.mem_read_cap / cfg.disk_read_cap - 160.0).abs() < 1.0);
/// // a 256 MB block takes ~26s to read cold but ~2-4s to map-compute
/// let compute = cfg.map_compute(256 << 20, 1.0).as_secs_f64();
/// assert!(compute < (256 << 20) as f64 / cfg.disk_read_cap / 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Concurrent map tasks per node (YARN containers dedicated to maps).
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// Fixed platform overhead between job submission and tasks becoming
    /// runnable (container launch, JVM warm-up, AM negotiation — the
    /// §II-C1 lead-time sources). Queueing for busy slots adds on top.
    pub platform_overhead: SimDuration,
    /// Per-map-task fixed overhead (process start, split setup).
    pub map_task_overhead: SimDuration,
    /// Map compute cost per input byte, seconds (filtering/deserialize).
    pub map_cpu_secs_per_byte: f64,
    /// Effective per-reduce-task shuffle+merge bandwidth, bytes/sec.
    /// Shuffle is never accelerated by migration (paper §V-E2), so it is
    /// modeled as a flat rate rather than on the fluid substrate.
    pub shuffle_bw: f64,
    /// Reduce compute cost per shuffled byte, seconds.
    pub reduce_cpu_secs_per_byte: f64,
    /// Per-reduce-task fixed overhead.
    pub reduce_task_overhead: SimDuration,
    /// Application-level ceiling on a single task's *disk* read rate,
    /// bytes/sec. HDFS task readers fetch chunk-at-a-time through the
    /// client stack and achieve a small fraction of the disk's sequential
    /// bandwidth; the DYRS paper's own microbenchmark (RAM reads 160×
    /// faster than disk reads *at the application level*) pins this around
    /// 10 MB/s. Migrations (`mlock` sequential reads) are NOT capped —
    /// that asymmetry is exactly why migration pays off.
    pub disk_read_cap: f64,
    /// Application-level ceiling on a single task's *memory* read rate,
    /// bytes/sec (160× the disk cap, matching the paper's measurement).
    pub mem_read_cap: f64,
    /// Speculative execution (standard MapReduce straggler mitigation,
    /// enabled by default on the paper's Tez/YARN stack): a map task still
    /// reading after `speculative_factor ×` its expected read time plus
    /// [`EngineConfig::speculative_slack`] is killed and re-queued, giving
    /// it a fresh placement and read plan (approximating a speculative
    /// copy winning the race).
    pub speculative_factor: f64,
    /// Absolute slack added to the speculation threshold.
    pub speculative_slack: SimDuration,
    /// Maximum execution attempts per task (1 = speculation off).
    pub speculative_max_attempts: u32,
    /// Model map-output spill writes as real disk streams on the mapper's
    /// node (contending with reads and migrations) instead of folding the
    /// write time into compute. Off by default — the calibrated baseline —
    /// and exercised by the sensitivity study to show the headline
    /// conclusions survive dirtier disks.
    #[serde(default)]
    pub model_spill_writes: bool,
    /// Containers granted per scheduling tick per job (YARN's RM hands a
    /// job its containers over several allocation rounds, not all at
    /// once; this pacing staggers task start times like the real
    /// testbed's ramp-up).
    pub container_grant_per_tick: usize,
    /// Interval between container grant rounds.
    pub container_grant_tick: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            map_slots_per_node: 8,
            reduce_slots_per_node: 2,
            platform_overhead: SimDuration::from_secs(8),
            map_task_overhead: SimDuration::from_millis(900),
            map_cpu_secs_per_byte: 1.0e-8, // ~2.7 s per 256 MB block
            shuffle_bw: 150.0 * 1024.0 * 1024.0,
            reduce_cpu_secs_per_byte: 2.0e-9,
            reduce_task_overhead: SimDuration::from_millis(900),
            disk_read_cap: 10.0 * 1024.0 * 1024.0,
            mem_read_cap: 1600.0 * 1024.0 * 1024.0,
            speculative_factor: 1.3,
            speculative_slack: SimDuration::from_secs(2),
            speculative_max_attempts: 3,
            model_spill_writes: false,
            container_grant_per_tick: 8,
            container_grant_tick: SimDuration::from_millis(500),
        }
    }
}

impl EngineConfig {
    /// Map compute duration for `bytes` of input, scaled by the job's
    /// `cpu_factor` (Hive queries do far heavier per-byte work than
    /// trace-replay map tasks).
    pub fn map_compute(&self, bytes: u64, cpu_factor: f64) -> SimDuration {
        self.map_task_overhead
            + SimDuration::from_secs_f64(self.map_cpu_secs_per_byte * cpu_factor * bytes as f64)
    }

    /// Reduce duration for `bytes` of shuffle input: fetch + merge + compute.
    pub fn reduce_duration(&self, bytes: u64) -> SimDuration {
        self.reduce_task_overhead
            + SimDuration::from_secs_f64(bytes as f64 / self.shuffle_bw)
            + SimDuration::from_secs_f64(self.reduce_cpu_secs_per_byte * bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_plausible() {
        let c = EngineConfig::default();
        assert!(c.map_slots_per_node >= 1);
        assert!(c.platform_overhead > SimDuration::ZERO);
        // a 256 MB map's compute should be ~1-5 s (so disk reads dominate)
        let compute = c.map_compute(256 << 20, 1.0).as_secs_f64();
        assert!((0.5..6.0).contains(&compute), "map compute {compute}s");
        // the paper's 160x app-level RAM:disk read ratio
        let ratio = c.mem_read_cap / c.disk_read_cap;
        assert!((150.0..170.0).contains(&ratio), "RAM:disk ratio {ratio}");
    }

    #[test]
    fn map_compute_scales_linearly() {
        let c = EngineConfig::default();
        let one = c.map_compute(100 << 20, 1.0);
        let two = c.map_compute(200 << 20, 1.0);
        let overhead = c.map_task_overhead;
        let a = (two - overhead).as_micros() as i64;
        let b = 2 * (one - overhead).as_micros() as i64;
        assert!((a - b).abs() <= 1, "rounding beyond 1µs: {a} vs {b}");
    }

    #[test]
    fn cpu_factor_scales_compute() {
        let c = EngineConfig::default();
        let base = (c.map_compute(256 << 20, 1.0) - c.map_task_overhead).as_micros();
        let hive = (c.map_compute(256 << 20, 4.0) - c.map_task_overhead).as_micros();
        assert!((hive as i64 - 4 * base as i64).abs() <= 3);
    }

    #[test]
    fn reduce_duration_includes_shuffle() {
        let c = EngineConfig::default();
        let d = c.reduce_duration(1 << 30); // 1 GiB shuffle
                                            // at 150 MB/s the fetch alone is ~6.8 s
        assert!(d.as_secs_f64() > 6.0);
    }
}
