//! Tasks: the unit of scheduled work.

use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId, Medium};
use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::fmt;

/// Identifies one task across the whole simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task_{}", self.0)
    }
}

/// Lifecycle phase of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskPhase {
    /// Waiting for a slot.
    Ready,
    /// Reading its input block (maps only).
    Reading,
    /// Computing (map) or fetching+merging+computing (reduce).
    Computing,
    /// Finished.
    Done,
}

/// One task's mutable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskState {
    /// Task id.
    pub id: TaskId,
    /// Owning job.
    pub job: JobId,
    /// Input block (`None` for reduce tasks).
    pub block: Option<BlockId>,
    /// Input bytes (block size for maps, shuffle share for reduces).
    pub bytes: u64,
    /// Current phase.
    pub phase: TaskPhase,
    /// Node the task was placed on (once scheduled).
    pub node: Option<NodeId>,
    /// Where its input read was served from (maps, once reading).
    pub read_medium: Option<Medium>,
    /// When the task became ready.
    pub ready_at: SimTime,
    /// When it got a slot and started.
    pub started_at: Option<SimTime>,
    /// When its input read finished.
    pub read_done_at: Option<SimTime>,
    /// When it finished completely.
    pub done_at: Option<SimTime>,
}

impl TaskState {
    /// A fresh map task over `block`.
    pub fn map(id: TaskId, job: JobId, block: BlockId, bytes: u64, ready_at: SimTime) -> Self {
        TaskState {
            id,
            job,
            block: Some(block),
            bytes,
            phase: TaskPhase::Ready,
            node: None,
            read_medium: None,
            ready_at,
            started_at: None,
            read_done_at: None,
            done_at: None,
        }
    }

    /// A fresh reduce task over `bytes` of shuffle input.
    pub fn reduce(id: TaskId, job: JobId, bytes: u64, ready_at: SimTime) -> Self {
        TaskState {
            id,
            job,
            block: None,
            bytes,
            phase: TaskPhase::Ready,
            node: None,
            read_medium: None,
            ready_at,
            started_at: None,
            read_done_at: None,
            done_at: None,
        }
    }

    /// True for map tasks.
    pub fn is_map(&self) -> bool {
        self.block.is_some()
    }

    /// Wall-clock duration from start to completion (once done).
    pub fn duration(&self) -> Option<simkit::SimDuration> {
        Some(self.done_at?.saturating_since(self.started_at?))
    }

    /// Time spent reading input (maps, once read finished).
    pub fn read_duration(&self) -> Option<simkit::SimDuration> {
        Some(self.read_done_at?.saturating_since(self.started_at?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_task_lifecycle_timings() {
        let mut t = TaskState::map(TaskId(1), JobId(1), BlockId(9), 256, SimTime::from_secs(1));
        assert!(t.is_map());
        assert_eq!(t.duration(), None);
        t.started_at = Some(SimTime::from_secs(2));
        t.read_done_at = Some(SimTime::from_secs(5));
        t.done_at = Some(SimTime::from_secs(7));
        assert_eq!(t.duration().unwrap().as_micros(), 5_000_000);
        assert_eq!(t.read_duration().unwrap().as_micros(), 3_000_000);
    }

    #[test]
    fn reduce_task_has_no_block() {
        let t = TaskState::reduce(TaskId(2), JobId(1), 100, SimTime::ZERO);
        assert!(!t.is_map());
        assert_eq!(t.block, None);
    }

    #[test]
    fn display() {
        assert_eq!(TaskId(3).to_string(), "task_3");
    }
}
