//! Jobs: specs and live state.

use dyrs_dfs::JobId;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};

/// How a job releases its migrated blocks — re-exported shape of
/// `dyrs::EvictionMode`, kept as a plain bool here so the engine does not
/// depend on the dyrs core crate (dependencies point the other way in the
/// real system too: the framework is oblivious to the file system's
/// migration layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Submitted but not yet runnable (platform overhead / dependencies).
    Submitted,
    /// Tasks are runnable / running.
    Running,
    /// All stages finished.
    Completed,
    /// Killed by failure injection.
    Failed,
}

/// Static description of one MapReduce job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// Human-readable name ("swim-017", "q15-stage2", "sort-10g").
    pub name: String,
    /// Submission time. For dependent jobs, the effective submission is
    /// `max(submit_at, completion of all dependencies)`.
    pub submit_at: SimTime,
    /// Jobs that must complete before this one is submitted to the
    /// cluster (Hive stages).
    pub depends_on: Vec<JobId>,
    /// Input files read by the map stage.
    pub input_files: Vec<String>,
    /// Total map-output (shuffle) bytes.
    pub shuffle_bytes: u64,
    /// Number of reduce tasks; 0 for map-only jobs.
    pub reduce_tasks: usize,
    /// Extra artificial lead-time inserted before tasks become runnable
    /// (the Fig. 11 experiment); zero normally.
    pub extra_lead_time: SimDuration,
    /// Whether the job's migrations use implicit eviction.
    pub implicit_eviction: bool,
    /// Multiplier on the engine's per-byte map compute cost: 1.0 for
    /// light trace-replay mappers, higher for CPU-heavy Hive operators.
    pub cpu_factor: f64,
}

impl JobSpec {
    /// A minimal map-only job over `files` submitted at `submit_at`.
    pub fn map_only(
        id: JobId,
        name: impl Into<String>,
        submit_at: SimTime,
        files: Vec<String>,
    ) -> Self {
        JobSpec {
            id,
            name: name.into(),
            submit_at,
            depends_on: Vec::new(),
            input_files: files,
            shuffle_bytes: 0,
            reduce_tasks: 0,
            extra_lead_time: SimDuration::ZERO,
            implicit_eviction: true,
            cpu_factor: 1.0,
        }
    }

    /// Start a fluent builder.
    ///
    /// ```
    /// use dyrs_dfs::JobId;
    /// use dyrs_engine::JobSpec;
    /// use simkit::{SimDuration, SimTime};
    ///
    /// let job = JobSpec::builder(JobId(3), "etl-nightly")
    ///     .submit_at(SimTime::from_secs(10))
    ///     .input("logs/day-1")
    ///     .input("logs/day-2")
    ///     .shuffle(1 << 30)
    ///     .reduces(4)
    ///     .extra_lead_time(SimDuration::from_secs(15))
    ///     .explicit_eviction()
    ///     .cpu_factor(2.0)
    ///     .after(JobId(2))
    ///     .build();
    /// assert_eq!(job.input_files.len(), 2);
    /// assert_eq!(job.reduce_tasks, 4);
    /// assert_eq!(job.depends_on, vec![JobId(2)]);
    /// assert!(!job.implicit_eviction);
    /// ```
    pub fn builder(id: JobId, name: impl Into<String>) -> JobSpecBuilder {
        JobSpecBuilder {
            spec: JobSpec::map_only(id, name, SimTime::ZERO, Vec::new()),
        }
    }
}

/// Fluent constructor for [`JobSpec`] (see [`JobSpec::builder`]).
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    spec: JobSpec,
}

impl JobSpecBuilder {
    /// Submission time (default t = 0).
    pub fn submit_at(mut self, t: SimTime) -> Self {
        self.spec.submit_at = t;
        self
    }

    /// Add one input file.
    pub fn input(mut self, file: impl Into<String>) -> Self {
        self.spec.input_files.push(file.into());
        self
    }

    /// Total shuffle bytes (map output).
    pub fn shuffle(mut self, bytes: u64) -> Self {
        self.spec.shuffle_bytes = bytes;
        self
    }

    /// Number of reduce tasks (default 0 = map-only).
    pub fn reduces(mut self, n: usize) -> Self {
        self.spec.reduce_tasks = n;
        self
    }

    /// Artificial extra lead-time before tasks launch.
    pub fn extra_lead_time(mut self, d: SimDuration) -> Self {
        self.spec.extra_lead_time = d;
        self
    }

    /// Use explicit eviction (default is implicit).
    pub fn explicit_eviction(mut self) -> Self {
        self.spec.implicit_eviction = false;
        self
    }

    /// Per-byte map compute multiplier (default 1.0).
    pub fn cpu_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0, "non-positive cpu factor");
        self.spec.cpu_factor = f;
        self
    }

    /// Add a dependency: this job is submitted when `dep` completes.
    pub fn after(mut self, dep: JobId) -> Self {
        self.spec.depends_on.push(dep);
        self
    }

    /// Finish building.
    pub fn build(self) -> JobSpec {
        self.spec
    }
}

/// Live job state: stage progress and the timestamps the evaluation
/// reports (submission → first task → map phase end → job end).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobState {
    /// The spec.
    pub spec: JobSpec,
    /// Current status.
    pub status: JobStatus,
    /// Map tasks not yet completed.
    pub maps_remaining: usize,
    /// Total map tasks.
    pub maps_total: usize,
    /// Reduce tasks not yet completed.
    pub reduces_remaining: usize,
    /// When the job was submitted (after dependencies resolved).
    pub submitted_at: SimTime,
    /// When tasks became runnable.
    pub launched_at: Option<SimTime>,
    /// When the first task actually started (lead-time endpoint).
    pub first_task_at: Option<SimTime>,
    /// When the last map finished.
    pub maps_done_at: Option<SimTime>,
    /// When everything finished.
    pub completed_at: Option<SimTime>,
}

impl JobState {
    /// Fresh state for `spec`, effective-submitted at `submitted_at`.
    pub fn new(spec: JobSpec, submitted_at: SimTime) -> Self {
        JobState {
            status: JobStatus::Submitted,
            maps_remaining: 0,
            maps_total: 0,
            reduces_remaining: spec.reduce_tasks,
            submitted_at,
            launched_at: None,
            first_task_at: None,
            maps_done_at: None,
            completed_at: None,
            spec,
        }
    }

    /// Record that the map stage has `n` tasks (known once inputs are
    /// resolved against the namespace).
    pub fn set_map_count(&mut self, n: usize) {
        self.maps_total = n;
        self.maps_remaining = n;
    }

    /// One map task finished. Returns `true` if that was the last map
    /// (the reduce stage may start).
    pub fn on_map_done(&mut self, now: SimTime) -> bool {
        assert!(self.maps_remaining > 0, "map completion underflow");
        self.maps_remaining -= 1;
        if self.maps_remaining == 0 {
            self.maps_done_at = Some(now);
            true
        } else {
            false
        }
    }

    /// One reduce task finished. Returns `true` if the job is now done.
    pub fn on_reduce_done(&mut self) -> bool {
        assert!(self.reduces_remaining > 0, "reduce completion underflow");
        self.reduces_remaining -= 1;
        self.reduces_remaining == 0
    }

    /// True once all stages completed.
    pub fn is_finished(&self) -> bool {
        self.maps_total > 0 && self.maps_remaining == 0 && self.reduces_remaining == 0
    }

    /// End-to-end duration (submission → completion), once complete.
    pub fn duration(&self) -> Option<SimDuration> {
        Some(self.completed_at?.saturating_since(self.submitted_at))
    }

    /// Achieved lead-time: submission → first task start.
    pub fn lead_time(&self) -> Option<SimDuration> {
        Some(self.first_task_at?.saturating_since(self.submitted_at))
    }

    /// Map-phase duration: first task start → last map completion.
    pub fn map_phase(&self) -> Option<SimDuration> {
        Some(self.maps_done_at?.saturating_since(self.first_task_at?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        let mut s = JobSpec::map_only(JobId(1), "test", SimTime::from_secs(5), vec!["f".into()]);
        s.reduce_tasks = 2;
        s
    }

    #[test]
    fn lifecycle_and_timings() {
        let mut j = JobState::new(spec(), SimTime::from_secs(5));
        j.set_map_count(2);
        assert!(!j.is_finished());
        j.first_task_at = Some(SimTime::from_secs(13));
        assert_eq!(j.lead_time().unwrap(), SimDuration::from_secs(8));
        assert!(!j.on_map_done(SimTime::from_secs(20)));
        assert!(j.on_map_done(SimTime::from_secs(22)));
        assert_eq!(j.map_phase().unwrap(), SimDuration::from_secs(9));
        assert!(!j.on_reduce_done());
        assert!(j.on_reduce_done());
        assert!(j.is_finished());
        j.completed_at = Some(SimTime::from_secs(30));
        assert_eq!(j.duration().unwrap(), SimDuration::from_secs(25));
    }

    #[test]
    fn map_only_finishes_without_reduces() {
        let mut j = JobState::new(
            JobSpec::map_only(JobId(1), "m", SimTime::ZERO, vec![]),
            SimTime::ZERO,
        );
        j.set_map_count(1);
        assert!(j.on_map_done(SimTime::from_secs(1)));
        assert!(j.is_finished());
    }

    #[test]
    fn builder_defaults_match_map_only() {
        let a = JobSpec::builder(JobId(1), "x").input("f").build();
        let b = JobSpec::map_only(JobId(1), "x", SimTime::ZERO, vec!["f".into()]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn builder_rejects_bad_cpu_factor() {
        let _ = JobSpec::builder(JobId(1), "x").cpu_factor(0.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn extra_map_completion_panics() {
        let mut j = JobState::new(spec(), SimTime::ZERO);
        j.set_map_count(1);
        j.on_map_done(SimTime::ZERO);
        j.on_map_done(SimTime::ZERO);
    }
}
