//! Property-based tests for the execution-engine substrate.

use dyrs_cluster::NodeId;
use dyrs_dfs::JobId;
use dyrs_engine::scheduler::SlotKind;
use dyrs_engine::{EngineConfig, JobSpec, JobState, SlotPool};
use proptest::prelude::*;
use simkit::SimTime;

proptest! {
    /// Slot conservation: acquires minus releases never exceeds capacity,
    /// and the pool refuses work exactly when full.
    #[test]
    fn slot_pool_conserves(
        nodes in 1usize..10,
        cap in 1usize..8,
        ops in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut pool = SlotPool::new(nodes, cap, 1);
        let mut held: Vec<NodeId> = Vec::new();
        for acquire in ops {
            if acquire {
                match pool.acquire(SlotKind::Map, &[], |_| true) {
                    Some(n) => {
                        held.push(n);
                        prop_assert!(held.len() <= nodes * cap);
                    }
                    None => prop_assert_eq!(held.len(), nodes * cap, "refused while free"),
                }
            } else if let Some(n) = held.pop() {
                pool.release(n, SlotKind::Map);
            }
            let free = pool.total_free(SlotKind::Map, |_| true);
            prop_assert_eq!(free + held.len(), nodes * cap);
        }
    }

    /// Preferred placement: when a preferred node has a free slot, it is
    /// always chosen over any fallback.
    #[test]
    fn preferred_always_wins_when_free(
        nodes in 2usize..10,
        pref in 0usize..10,
        occupied in proptest::collection::vec(any::<bool>(), 0..10),
    ) {
        let pref = NodeId((pref % nodes) as u32);
        let mut pool = SlotPool::new(nodes, 2, 1);
        for (i, &occ) in occupied.iter().take(nodes).enumerate() {
            if occ && NodeId(i as u32) != pref {
                pool.acquire(SlotKind::Map, &[NodeId(i as u32)], |_| true);
            }
        }
        let got = pool.acquire(SlotKind::Map, &[pref], |_| true);
        prop_assert_eq!(got, Some(pref));
    }

    /// Job lifecycle counters: completing exactly `maps` map tasks and
    /// `reduces` reduce tasks finishes the job, in any interleaving.
    #[test]
    fn job_state_machine(
        maps in 1usize..50,
        reduces in 0usize..10,
        seed in any::<u64>(),
    ) {
        let mut spec = JobSpec::map_only(JobId(1), "j", SimTime::ZERO, vec![]);
        spec.reduce_tasks = reduces;
        let mut js = JobState::new(spec, SimTime::ZERO);
        js.set_map_count(maps);
        let mut rng = simkit::Rng::new(seed);
        let mut maps_left = maps;
        let mut reduces_left = reduces;
        let mut maps_done_fired = false;
        let mut t = 0u64;
        while maps_left > 0 || reduces_left > 0 {
            t += 1;
            let now = SimTime::from_secs(t);
            // reduces only start after maps finish (as the engine enforces)
            if maps_left > 0 {
                let last = js.on_map_done(now);
                maps_left -= 1;
                prop_assert_eq!(last, maps_left == 0, "last-map signal must be exact");
                if last {
                    maps_done_fired = true;
                }
            } else if reduces_left > 0 && rng.chance(0.7) {
                let done = js.on_reduce_done();
                reduces_left -= 1;
                prop_assert_eq!(done, reduces_left == 0);
            }
        }
        prop_assert!(maps_done_fired);
        prop_assert!(js.is_finished());
        prop_assert!(js.maps_done_at.is_some());
    }

    /// Compute-cost model: durations are monotone in bytes and cpu factor.
    #[test]
    fn compute_costs_monotone(
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000,
        f1 in 0.5f64..16.0,
        f2 in 0.5f64..16.0,
    ) {
        let c = EngineConfig::default();
        let (lo_b, hi_b) = (a.min(b), a.max(b));
        prop_assert!(c.map_compute(lo_b, f1) <= c.map_compute(hi_b, f1));
        let (lo_f, hi_f) = (f1.min(f2), f1.max(f2));
        prop_assert!(c.map_compute(a, lo_f) <= c.map_compute(a, hi_f));
        prop_assert!(c.reduce_duration(lo_b) <= c.reduce_duration(hi_b));
    }
}
