//! One Criterion bench per paper table/figure: measures how long each
//! artifact takes to regenerate (at reduced scale so `cargo bench`
//! finishes promptly). Regeneration time is the practical cost of the
//! reproduction harness; the *contents* are asserted by the experiment
//! modules' tests.

use criterion::{criterion_group, criterion_main, Criterion};
use dyrs_experiments::{
    fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, table1, table2,
};
use std::hint::black_box;

const SEED: u64 = 20190520;

fn bench_motivation(c: &mut Criterion) {
    let mut g = c.benchmark_group("motivation");
    g.sample_size(20);
    g.bench_function("fig01_utilization_traces", |b| {
        b.iter(|| black_box(fig01::run(SEED)))
    });
    g.bench_function("fig02_lead_read_ratio", |b| {
        b.iter(|| black_box(fig02::run(SEED, 20_000)))
    });
    g.bench_function("fig03_utilization_cdf", |b| {
        b.iter(|| black_box(fig03::run(SEED, 40)))
    });
    g.finish();
}

fn bench_hive(c: &mut Criterion) {
    let mut g = c.benchmark_group("hive");
    g.sample_size(10);
    g.bench_function("fig04_ten_queries_four_configs", |b| {
        b.iter(|| black_box(fig04::run(SEED, 0.1)))
    });
    g.finish();
}

fn bench_swim(c: &mut Criterion) {
    let mut g = c.benchmark_group("swim");
    g.sample_size(10);
    g.bench_function("table1_mean_durations", |b| {
        b.iter(|| black_box(table1::run(SEED, 0.2)))
    });
    g.bench_function("fig05_size_bins", |b| {
        b.iter(|| black_box(fig05::run(SEED, 0.2)))
    });
    g.bench_function("fig06_map_task_cdf", |b| {
        b.iter(|| black_box(fig06::run(SEED, 0.2)))
    });
    g.bench_function("fig07_memory_footprint", |b| {
        b.iter(|| black_box(fig07::run(SEED, 0.2)))
    });
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort");
    g.sample_size(10);
    g.bench_function("fig08_read_distribution", |b| {
        b.iter(|| black_box(fig08::run(SEED, 7)))
    });
    g.bench_function("fig09_estimate_tracking", |b| {
        b.iter(|| black_box(fig09::run(SEED, 5)))
    });
    g.bench_function("table2_interference_patterns", |b| {
        b.iter(|| black_box(table2::run(SEED, 5)))
    });
    g.bench_function("fig10_tail_timeline", |b| {
        b.iter(|| black_box(fig10::run(SEED, 5)))
    });
    g.bench_function("fig11_size_and_lead_sweeps", |b| {
        b.iter(|| black_box(fig11::run(SEED)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_motivation,
    bench_hive,
    bench_swim,
    bench_sort
);
criterion_main!(benches);
