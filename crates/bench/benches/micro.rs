//! Microbenchmarks of the hot paths, including the paper's scalability
//! claim (§III-D): "Our prototype updates the targets for 50GB of pending
//! migrations in under a millisecond" — `algo1/50GB_pending` measures our
//! implementation of Algorithm 1 against exactly that bar.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyrs::master::{BlockRequest, Master};
use dyrs::types::EvictionMode;
use dyrs::{MigrationEstimator, MigrationPolicy, SchedEngine, SchedulerConfig};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use simkit::{EventQueue, FluidResource, Rng, SimDuration, SimTime};
use std::hint::black_box;

const MB: u64 = 1 << 20;
const BLOCK: u64 = 256 * MB;

/// Build a master with `blocks` pending 256 MB migrations over 7 nodes.
fn loaded_master(blocks: u64) -> Master {
    let mut m = Master::new(MigrationPolicy::Dyrs, 7, 140.0 * MB as f64, Rng::new(1));
    // Pin the reference engine: the incremental pass skips clean entries,
    // so warm iterations of a retarget loop would measure nothing.
    m.set_sched_config(SchedulerConfig {
        engine: SchedEngine::Reference,
        ..SchedulerConfig::default()
    });
    let mut rng = Rng::new(2);
    for n in 0..7 {
        m.on_heartbeat(
            NodeId(n),
            rng.range_f64(0.8, 4.0) / (140.0 * MB as f64),
            rng.range_u64(0, 4) * BLOCK,
        );
    }
    let reqs: Vec<BlockRequest> = (0..blocks)
        .map(|i| {
            let mut nodes: Vec<u32> = (0..7).collect();
            rng.shuffle(&mut nodes);
            BlockRequest {
                block: BlockId(i),
                bytes: BLOCK,
                replicas: nodes[..3].iter().map(|&x| NodeId(x)).collect(),
            }
        })
        .collect();
    m.request_migration(JobId(1), reqs, EvictionMode::Implicit);
    m
}

fn bench_algo1(c: &mut Criterion) {
    let mut g = c.benchmark_group("algo1");
    // 50 GB of pending 256 MB blocks = 200 blocks (the paper's claim),
    // plus heavier loads to show the linear scaling headroom.
    for gb in [50u64, 200, 800] {
        let blocks = gb * 1024 / 256;
        let mut m = loaded_master(blocks);
        g.bench_with_input(
            BenchmarkId::new("retarget_pending", format!("{gb}GB")),
            &gb,
            |b, _| {
                b.iter(|| {
                    m.retarget();
                    black_box(m.pending_len())
                })
            },
        );
    }
    g.finish();
}

fn bench_estimator(c: &mut Criterion) {
    c.bench_function("estimator/observe+estimate", |b| {
        let mut e = MigrationEstimator::new(140.0 * MB as f64, 0.35);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            e.on_complete(BLOCK, SimDuration::from_millis(1500 + (i % 700)));
            black_box(e.estimate(BLOCK))
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule+pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            let mut rng = Rng::new(3);
            for i in 0..1024u64 {
                q.schedule(SimTime::from_micros(rng.below(1_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_fluid(c: &mut Criterion) {
    c.bench_function("fluid/8_readers_churn", |b| {
        b.iter(|| {
            let mut r = FluidResource::new(140.0 * MB as f64, 0.02);
            let mut now = SimTime::ZERO;
            for i in 0..8u64 {
                r.advance(now);
                r.add_stream_capped(now, BLOCK as f64, 1.0, 10.0 * MB as f64, i);
            }
            let mut done = 0;
            while let Some(t) = r.next_completion() {
                now = t;
                done += r.advance(now).len();
            }
            black_box(done)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64", |b| {
        let mut r = Rng::new(9);
        b.iter(|| black_box(r.next_u64()))
    });
}

criterion_group!(
    benches,
    bench_algo1,
    bench_estimator,
    bench_event_queue,
    bench_fluid,
    bench_rng
);

mod sim_throughput {
    use super::*;
    use criterion::Criterion;
    use dyrs::MigrationPolicy;
    use dyrs_dfs::JobId as DfsJobId;
    use dyrs_engine::JobSpec;
    use dyrs_sim::{FileSpec, SimConfig, Simulation};

    /// End-to-end simulator throughput: events per second over a busy
    /// multi-job run (the practical cost of every experiment).
    pub fn bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("sim");
        g.sample_size(20);
        g.bench_function("events_multi_job_run", |b| {
            b.iter(|| {
                let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 11);
                for i in 0..8u64 {
                    cfg.files.push(FileSpec::new(format!("f{i}"), 6 * BLOCK));
                }
                let jobs: Vec<JobSpec> = (0..8u64)
                    .map(|i| {
                        JobSpec::map_only(
                            DfsJobId(i),
                            format!("j{i}"),
                            SimTime::from_secs(i),
                            vec![format!("f{i}")],
                        )
                    })
                    .collect();
                let r = Simulation::new(cfg, jobs).run();
                std::hint::black_box(r.events_processed)
            })
        });
        g.finish();
    }
}

criterion::criterion_group!(sim_benches, sim_throughput::bench);
criterion_main!(benches, sim_benches);
