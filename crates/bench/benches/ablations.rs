//! Ablation benches: regenerate each DESIGN.md ablation study. The
//! quality conclusions (who wins) are asserted by the experiments crate's
//! tests; these benches track the cost of producing them.

use criterion::{criterion_group, criterion_main, Criterion};
use dyrs_experiments::ablations;
use std::hint::black_box;

const SEED: u64 = 20190520;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("binding_policies", |b| {
        b.iter(|| black_box(ablations::binding(SEED, 5)))
    });
    g.bench_function("in_progress_refresh", |b| {
        b.iter(|| black_box(ablations::refresh(SEED, 5)))
    });
    g.bench_function("queue_depth_slack", |b| {
        b.iter(|| black_box(ablations::queue_depth(SEED, 5)))
    });
    g.bench_function("eviction_modes", |b| {
        b.iter(|| black_box(ablations::eviction(SEED, 5)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
