//! Criterion benchmark harness for the DYRS reproduction (placeholder lib;
//! the actual benches live in `benches/`).
