//! `bench-gate` — CI regression gate over `bench-snapshot` artifacts.
//!
//! ```text
//! bench-gate <NEW.json> [--results DIR] [--threshold PCT]
//! ```
//!
//! Compares a freshly produced `BENCH_<sha>.json` against the latest
//! committed baseline (named by `DIR/LATEST`, default `results/LATEST`)
//! and exits non-zero when any *pinned* bench's median regressed by more
//! than the threshold (default 25%). Only deliberately pinned benches
//! gate: scheduler passes with multi-millisecond medians, where a 25%
//! move is a real constant-factor change and not sampling noise. The
//! sub-microsecond codec/loopback entries and the small-n simulation
//! runs are reported but never gate.
//!
//! A pinned bench present in the baseline but missing from the new
//! snapshot also fails the gate — deleting a bench must be an explicit
//! baseline refresh, not a silent drop.

use std::process::ExitCode;

/// Benches that gate the merge. Keep to entries whose medians are large
/// enough (≥ ~1 ms) that the 25% threshold clears machine jitter.
const PINNED: &[&str] = &[
    "algo1/full_rescan_100k",
    "algo1/incremental_100k_1dirty",
    "algo1/monolithic_1m_1k",
    "algo1/monolithic_1m_sparse_pass",
    "algo1/monolithic_1m_refresh_pass",
    "algo1/sharded_1m_1k",
    "algo1/sharded_1m_sparse_pass",
    "algo1/sharded_1m_refresh_pass",
];

/// Extract `(name, median_ns)` pairs from a `bench-snapshot` JSON. The
/// writer emits one bench object per line with fixed key order, so a
/// line-oriented scan is exact for this format (the vendored serde stack
/// is a no-op stub; see bench-snapshot's hand-rolled writer).
fn parse(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(npos) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = &rest[..nend];
        if name == "sha" {
            continue;
        }
        let Some(mpos) = line.find("\"median_ns\": ") else {
            continue;
        };
        let digits: String = line[mpos + 13..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(median) = digits.parse() {
            out.push((name.to_string(), median));
        }
    }
    out
}

fn median_of(set: &[(String, u64)], name: &str) -> Option<u64> {
    set.iter().find(|(n, _)| n == name).map(|&(_, m)| m)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let Some(new_path) = args.iter().find(|a| !a.starts_with("--")).cloned() else {
        eprintln!("usage: bench-gate <NEW.json> [--results DIR] [--threshold PCT]");
        return ExitCode::FAILURE;
    };
    let results = flag("--results").unwrap_or_else(|| "results".into());
    let threshold: f64 = flag("--threshold")
        .map(|t| t.parse().expect("--threshold takes a number (percent)"))
        .unwrap_or(25.0);

    let latest = std::fs::read_to_string(format!("{results}/LATEST"))
        .unwrap_or_else(|e| panic!("read {results}/LATEST: {e}"));
    let base_name = latest.trim();
    let base_path = format!("{results}/{base_name}");
    let baseline = parse(
        &std::fs::read_to_string(&base_path).unwrap_or_else(|e| panic!("read {base_path}: {e}")),
    );
    let fresh = parse(
        &std::fs::read_to_string(&new_path).unwrap_or_else(|e| panic!("read {new_path}: {e}")),
    );

    println!("bench-gate: {new_path} vs {base_path} (>{threshold}% on pinned medians fails)");
    let mut failures = 0u32;
    for &name in PINNED {
        let Some(old) = median_of(&baseline, name) else {
            // Not in the baseline yet (bench added after the last
            // refresh): nothing to regress against.
            println!("  {name:36} (new bench, no baseline)");
            continue;
        };
        let Some(new) = median_of(&fresh, name) else {
            println!("  {name:36} MISSING from new snapshot — FAIL");
            failures += 1;
            continue;
        };
        let delta = 100.0 * (new as f64 - old as f64) / old as f64;
        let verdict = if delta > threshold {
            failures += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!("  {name:36} {old:>12} → {new:>12} ns  ({delta:+6.1}%)  {verdict}");
    }
    if failures > 0 {
        eprintln!(
            "bench-gate: {failures} pinned bench(es) regressed past {threshold}% — \
             refresh the committed baseline only with a justified perf change"
        );
        return ExitCode::FAILURE;
    }
    println!("bench-gate: all pinned benches within {threshold}% of {base_name}");
    ExitCode::SUCCESS
}
