//! `bench-snapshot` — a fast, CI-friendly performance snapshot.
//!
//! Criterion's statistical runs take minutes; CI wants a coarse number
//! per commit to spot order-of-magnitude regressions and a JSON artifact
//! to diff across commits. This binary times a handful of representative
//! hot paths (Algorithm 1 retargeting, one end-to-end simulation, the
//! wire codec, the loopback transport) with plain `Instant` sampling and
//! writes `BENCH_<sha>.json`:
//!
//! ```text
//! bench-snapshot [--sha SHA] [--out DIR]
//! ```
//!
//! `SHA` defaults to `$GITHUB_SHA`, then `"local"`. The numbers are
//! medians over fixed iteration counts — noisy by Criterion's standards,
//! deliberately so: this is a smoke gauge, not a microbenchmark suite.

use dyrs::master::{BlockRequest, Master};
use dyrs::types::EvictionMode;
use dyrs::{MigrationPolicy, SchedEngine, SchedulerConfig};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_experiments::scenarios::{hetero_config, with_workload};
use dyrs_net::frame::{decode_frame, encode_frame, supported_versions};
use dyrs_net::{LoopbackHub, Message, Peer, Transport, PROTOCOL_VERSION};
use dyrs_sim::Simulation;
use dyrs_workloads::sort;
use simkit::{Rng, SimDuration};
use std::time::Instant;

const MB: u64 = 1 << 20;
const BLOCK: u64 = 256 * MB;

/// Time `f` for `iters` iterations and return per-iteration samples (ns).
fn sample(iters: usize, mut f: impl FnMut()) -> Vec<u64> {
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        out.push(t.elapsed().as_nanos() as u64);
    }
    out
}

struct Snapshot {
    name: &'static str,
    iters: usize,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

fn summarize(name: &'static str, mut samples: Vec<u64>) -> Snapshot {
    samples.sort_unstable();
    Snapshot {
        name,
        iters: samples.len(),
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
    }
}

/// A master with `blocks` pending 256 MB migrations spread over `nodes`
/// slaves (3 replicas each), running the requested Algorithm 1 engine.
fn loaded_master(blocks: u64, nodes: u32, engine: SchedEngine) -> Master {
    let mut m = Master::new(
        MigrationPolicy::Dyrs,
        nodes as usize,
        140.0 * MB as f64,
        Rng::new(1),
    );
    m.set_sched_config(SchedulerConfig {
        engine,
        ..SchedulerConfig::default()
    });
    let mut rng = Rng::new(2);
    for n in 0..nodes {
        m.on_heartbeat(
            NodeId(n),
            rng.range_f64(0.8, 4.0) / (140.0 * MB as f64),
            rng.range_u64(0, 4) * BLOCK,
        );
    }
    let reqs: Vec<BlockRequest> = (0..blocks)
        .map(|i| {
            let mut picks: Vec<u32> = (0..nodes).collect();
            rng.shuffle(&mut picks);
            BlockRequest {
                block: BlockId(i),
                bytes: BLOCK,
                replicas: picks[..3].iter().map(|&x| NodeId(x)).collect(),
            }
        })
        .collect();
    m.request_migration(JobId(1), reqs, EvictionMode::Implicit);
    m
}

/// The 1M-block loader. `loaded_master`'s per-block full shuffle is
/// O(blocks × nodes) — fine at 100k × 100, hopeless at 1M × 1k — so this
/// one picks 3 replicas with a cheap stride off one draw. Placement is
/// still deterministic and spreads uniformly; only the picker differs
/// (the 100k benches keep `loaded_master` so their RNG streams, and thus
/// their committed baselines, are untouched).
fn loaded_master_1m(blocks: u64, nodes: u32, cfg: SchedulerConfig) -> Master {
    let mut m = Master::new(
        MigrationPolicy::Dyrs,
        nodes as usize,
        140.0 * MB as f64,
        Rng::new(1),
    );
    m.set_sched_config(cfg);
    let mut rng = Rng::new(2);
    // Fixed one-block backlog everywhere: the benched drift below then
    // perturbs *only* the spb estimate, so the dirtiness really is sparse
    // (a queued-bytes jump would flip winners and cascade shard-wide,
    // turning every pass into a de-facto full rescan).
    for n in 0..nodes {
        m.on_heartbeat(
            NodeId(n),
            rng.range_f64(0.8, 4.0) / (140.0 * MB as f64),
            BLOCK,
        );
    }
    let reqs: Vec<BlockRequest> = (0..blocks)
        .map(|i| {
            let base = rng.below(nodes as u64) as u32;
            BlockRequest {
                block: BlockId(i),
                bytes: BLOCK,
                replicas: vec![
                    NodeId(base),
                    NodeId((base + 1) % nodes),
                    NodeId((base + 7) % nodes),
                ],
            }
        })
        .collect();
    m.request_migration(JobId(1), reqs, EvictionMode::Implicit);
    m
}

/// The tentpole bar: keeping 1M pending blocks' targets current across a
/// 1k-node fleet, monolithic incremental engine vs the sharded engine
/// with the cascade ceiling armed.
///
/// One iteration is one heartbeat *window* — the unit the batched driver
/// path actually processes: seven sparse ticks (32 spread-out nodes
/// report estimate drift, everyone else is epsilon-clean) and then one
/// fleet-wide refresh tick (every node reports a moved estimate — the
/// estimator-rebaseline / post-recovery-resync case). Each tick ends in
/// one retarget pass. The window median is the acceptance pair
/// (`algo1/*_1m_1k`); the per-regime pass medians are also recorded so
/// the JSON carries the decomposition:
///
/// * sparse ticks — the sharded plan/walk beats the monolithic global
///   BTree visit set on constant factors (plan vectors + blocked touch
///   sweep vs per-visit tree churn and fresh score allocations);
/// * refresh ticks — the cascade ceiling trips upfront from O(1) index
///   bounds and the pass finishes as the sequential reference rescan,
///   while the monolithic engine builds and drains a 1M-entry visit set.
fn bench_algo1_1m() -> Vec<Snapshot> {
    const PENDING: u64 = 1_000_000;
    const NODES: u32 = 1_000;
    const DIRTY: u32 = 32;
    const WINDOWS: usize = 6;
    const SPARSE_TICKS: usize = 7;
    let run = |names: [&'static str; 3], cfg: SchedulerConfig| -> Vec<Snapshot> {
        let mut m = loaded_master_1m(PENDING, NODES, cfg);
        // Re-baseline every node's estimate with locally-known values, so
        // the benched drift below perturbs each node *around its own
        // baseline*. Jumping a node to an unrelated estimate would flip
        // winners wholesale and cascade queue-wide — every tick would be
        // a de-facto full rescan instead of the two regimes this bench
        // pins.
        let mut rng = Rng::new(3);
        let spbs: Vec<f64> = (0..NODES)
            .map(|n| {
                let s = rng.range_f64(0.8, 4.0) / (140.0 * MB as f64);
                m.on_heartbeat(NodeId(n), s, BLOCK);
                s
            })
            .collect();
        m.retarget(); // warm: the first pass scores all 1M entries
        let mut tick = 0u64;
        let mut windows = Vec::with_capacity(WINDOWS);
        let mut sparse = Vec::with_capacity(WINDOWS * SPARSE_TICKS);
        let mut refresh = Vec::with_capacity(WINDOWS);
        for _ in 0..WINDOWS {
            let w0 = Instant::now();
            for _ in 0..SPARSE_TICKS {
                tick += 1;
                // 32 spread-out nodes report a hair of estimate drift;
                // the set shifts each tick so different shards stay
                // involved.
                for d in 0..DIRTY {
                    let node = (d * (NODES / DIRTY) + (tick as u32 % 31)) % NODES;
                    let drift = spbs[node as usize] * (1.0 + (tick + d as u64) as f64 * 1e-12);
                    m.on_heartbeat(NodeId(node), drift, BLOCK);
                }
                let t = Instant::now();
                std::hint::black_box(m.retarget().rescored);
                sparse.push(t.elapsed().as_nanos() as u64);
            }
            tick += 1;
            for n in 0..NODES {
                let drift = spbs[n as usize] * (1.0 + (tick + n as u64) as f64 * 1e-12);
                m.on_heartbeat(NodeId(n), drift, BLOCK);
            }
            let t = Instant::now();
            std::hint::black_box(m.retarget().rescored);
            refresh.push(t.elapsed().as_nanos() as u64);
            windows.push(w0.elapsed().as_nanos() as u64);
        }
        vec![
            summarize(names[0], windows),
            summarize(names[1], sparse),
            summarize(names[2], refresh),
        ]
    };
    let mut out = run(
        [
            "algo1/monolithic_1m_1k",
            "algo1/monolithic_1m_sparse_pass",
            "algo1/monolithic_1m_refresh_pass",
        ],
        SchedulerConfig {
            engine: SchedEngine::Incremental,
            ..SchedulerConfig::default()
        },
    );
    out.extend(run(
        [
            "algo1/sharded_1m_1k",
            "algo1/sharded_1m_sparse_pass",
            "algo1/sharded_1m_refresh_pass",
        ],
        SchedulerConfig {
            engine: SchedEngine::Sharded,
            shards: 16,
            cascade_ceiling: 0.25,
            ..SchedulerConfig::default()
        },
    ));
    out
}

/// `on_slave_pull` against the 1M-entry sharded store: per-node bind
/// queues plus the K-way merge keep the pull independent of total
/// pending size.
fn bench_pull_bind_1m() -> Snapshot {
    const NODES: u32 = 1_000;
    let mut m = loaded_master_1m(
        1_000_000,
        NODES,
        SchedulerConfig {
            engine: SchedEngine::Sharded,
            shards: 16,
            cascade_ceiling: 0.25,
            ..SchedulerConfig::default()
        },
    );
    m.retarget();
    let mut node = 0u32;
    summarize(
        "sched/pull_bind_1m_pending",
        sample(200, || {
            node = (node + 1) % NODES;
            std::hint::black_box(m.on_slave_pull(NodeId(node), 4).len());
        }),
    )
}

fn bench_retarget() -> Snapshot {
    // The paper's §III-D scalability bar: 50 GB pending = 200 blocks.
    // Pinned to the reference engine: with the incremental one, every
    // warm iteration hits the empty-dirty skip and times nothing.
    let mut m = loaded_master(200, 7, SchedEngine::Reference);
    summarize(
        "algo1/retarget_50GB_pending",
        sample(50, || {
            m.retarget();
            std::hint::black_box(m.pending_len());
        }),
    )
}

/// The 100k-pending scheduler pair: full rescan vs the incremental pass
/// with exactly one dirty node per iteration. The acceptance bar is the
/// incremental median ≥10× below the full-rescan median.
fn bench_algo1_scaling() -> (Snapshot, Snapshot) {
    const PENDING: u64 = 100_000;
    const NODES: u32 = 100;
    let full = {
        let mut m = loaded_master(PENDING, NODES, SchedEngine::Reference);
        summarize(
            "algo1/full_rescan_100k",
            sample(12, || {
                std::hint::black_box(m.retarget().rescored);
            }),
        )
    };
    let incremental = {
        let mut m = loaded_master(PENDING, NODES, SchedEngine::Incremental);
        let spb = 1.0 / (140.0 * MB as f64);
        m.on_heartbeat(NodeId(0), spb, BLOCK);
        m.retarget(); // warm: first pass scores everything
        let mut tick = 0u64;
        summarize(
            "algo1/incremental_100k_1dirty",
            sample(24, || {
                // One node's measured cost jitters between heartbeats —
                // the steady-state shape: only the dirty node's replica
                // holders (3/NODES of entries) need rescoring, and
                // winners barely move.
                tick += 1;
                let drift = spb * (1.0 + tick as f64 * 1e-12);
                m.on_heartbeat(NodeId(0), drift, BLOCK);
                std::hint::black_box(m.retarget().rescored);
            }),
        )
    };
    (full, incremental)
}

/// `on_slave_pull` against small and huge pending stores: with the
/// per-node bind queues the cost must not scale with total pending size.
fn bench_pull_bind() -> (Snapshot, Snapshot) {
    const NODES: u32 = 40;
    let run = |name: &'static str, pending: u64| -> Snapshot {
        let mut m = loaded_master(pending, NODES, SchedEngine::Incremental);
        m.retarget();
        let mut node = 0u32;
        summarize(
            name,
            sample(200, || {
                node = (node + 1) % NODES;
                std::hint::black_box(m.on_slave_pull(NodeId(node), 4).len());
            }),
        )
    };
    (
        run("sched/pull_bind_1k_pending", 1_000),
        run("sched/pull_bind_100k_pending", 100_000),
    )
}

fn bench_end_to_end() -> Snapshot {
    summarize(
        "sim/hetero_sort_2GB",
        sample(5, || {
            let cfg = hetero_config(MigrationPolicy::Dyrs, 7);
            let w = sort::sort_workload(2 << 30, SimDuration::ZERO, 0);
            let (cfg, jobs) = with_workload(cfg, w);
            std::hint::black_box(Simulation::new(cfg, jobs).run().end_time);
        }),
    )
}

fn bench_codec() -> Snapshot {
    // A realistic Bind: 16 migrations with reference lists and replicas.
    let msg = Message::Bind {
        migrations: (0..16)
            .map(|i| dyrs::types::Migration {
                id: dyrs::types::MigrationId(i),
                block: BlockId(i),
                bytes: BLOCK,
                jobs: vec![dyrs::types::JobRef {
                    job: JobId(1),
                    eviction: EvictionMode::Implicit,
                }],
                replicas: vec![NodeId(i as u32 % 7), NodeId((i as u32 + 1) % 7)],
                attempt: 0,
                dest_tier: 0,
            })
            .collect(),
    };
    summarize(
        "net/codec_bind16_roundtrip",
        sample(2_000, || {
            let bytes = encode_frame(PROTOCOL_VERSION, &msg);
            let back = decode_frame(&bytes, supported_versions()).expect("roundtrip");
            std::hint::black_box(back.0);
        }),
    )
}

fn bench_loopback() -> Snapshot {
    let hub = LoopbackHub::new();
    let master = hub.endpoint(Peer::Master);
    let slave = hub.endpoint(Peer::Slave(0));
    let msg = Message::MigrationComplete {
        node: NodeId(0),
        block: BlockId(1),
    };
    summarize(
        "net/loopback_send_recv",
        sample(2_000, || {
            slave.send(Peer::Master, &msg).expect("routed");
            let got = master.try_recv().expect("decodes").expect("queued");
            std::hint::black_box(got.0);
        }),
    )
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let sha = flag("--sha")
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .unwrap_or_else(|| "local".into());
    let out_dir = flag("--out").unwrap_or_else(|| ".".into());

    let (full_rescan, incremental) = bench_algo1_scaling();
    let (pull_1k, pull_100k) = bench_pull_bind();
    let mut snapshots = vec![bench_retarget(), full_rescan, incremental];
    snapshots.extend(bench_algo1_1m());
    snapshots.extend([
        pull_1k,
        pull_100k,
        bench_pull_bind_1m(),
        bench_end_to_end(),
        bench_codec(),
        bench_loopback(),
    ]);

    // Hand-rolled JSON: the vendored serde stack is a no-op stub, and the
    // shape here is flat enough that a formatter would be overkill.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"sha\": \"{}\",\n", json_escape(&sha)));
    json.push_str("  \"benches\": [\n");
    for (i, s) in snapshots.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}}}{}\n",
            s.name,
            s.iters,
            s.median_ns,
            s.min_ns,
            s.max_ns,
            if i + 1 < snapshots.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = format!("{out_dir}/BENCH_{sha}.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    for s in &snapshots {
        println!(
            "{:32} median {:>12} ns  (min {}, max {}, n={})",
            s.name, s.median_ns, s.min_ns, s.max_ns, s.iters
        );
    }
    println!("wrote {path}");
}
