//! Figure 8 — distribution of reads across DataNodes for a Sort job.
//!
//! Paper claims: on a homogeneous cluster every scheme spreads reads
//! evenly (8a-style); with a handicapped node, DYRS and HDFS serve fewer
//! reads from the slow node while Ignem "still distributes the migration
//! load equally" — its reads stay uniform because they follow the random
//! submission-time binding (8b–8d).

use crate::render::TextTable;
use crate::runner::{run_all, SimTask};
use crate::scenarios::{hetero_config, homogeneous_config, with_workload, SLOW_NODE};
use dyrs::MigrationPolicy;
use dyrs_workloads::sort;
use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// Reads per DataNode for one (configuration, cluster) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadDistribution {
    /// Configuration name.
    pub config: String,
    /// True for the handicapped-node cluster.
    pub heterogeneous: bool,
    /// Reads served by each node.
    pub reads: Vec<u64>,
}

impl ReadDistribution {
    /// Slow-node reads relative to the per-node mean.
    pub fn slow_node_share(&self) -> f64 {
        let total: u64 = self.reads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.reads.len() as f64;
        self.reads[SLOW_NODE.index()] as f64 / mean
    }
}

/// Figure 8 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// All distributions (3 policies × 2 clusters).
    pub distributions: Vec<ReadDistribution>,
}

impl Fig8 {
    /// Lookup by config name and cluster kind.
    pub fn get(&self, config: &str, heterogeneous: bool) -> &ReadDistribution {
        self.distributions
            .iter()
            .find(|d| d.config == config && d.heterogeneous == heterogeneous)
            .unwrap_or_else(|| panic!("missing {config}/{heterogeneous}"))
    }
}

/// Run the Sort job under HDFS / Ignem / DYRS on both cluster flavours.
pub fn run(seed: u64, input_gb: u64) -> Fig8 {
    let policies = [
        MigrationPolicy::Disabled,
        MigrationPolicy::Ignem,
        MigrationPolicy::Dyrs,
    ];
    let mut tasks = Vec::new();
    for hetero in [false, true] {
        for p in policies {
            let cfg = if hetero {
                hetero_config(p, seed)
            } else {
                homogeneous_config(p, seed)
            };
            let w = sort::sort_workload(input_gb << 30, SimDuration::ZERO, 0);
            let (cfg, jobs) = with_workload(cfg, w);
            tasks.push(SimTask::new(format!("{}/{}", p.name(), hetero), cfg, jobs));
        }
    }
    let results = run_all(tasks, 0);
    let distributions = results
        .iter()
        .map(|(label, r)| {
            let (config, hetero) = label.split_once('/').expect("label format");
            ReadDistribution {
                config: config.to_string(),
                heterogeneous: hetero == "true",
                reads: r.reads_per_node(7),
            }
        })
        .collect();
    Fig8 { distributions }
}

/// Render both panels.
pub fn render(f: &Fig8) -> String {
    let mut out = String::from(
        "FIG 8: Reads per DataNode, Sort job\n\
         (paper: homogeneous => all equal; handicapped node => DYRS & HDFS\n\
          shift reads away from it, Ignem stays uniform)\n\n",
    );
    for hetero in [false, true] {
        out.push_str(if hetero {
            "--- handicapped node0 ---\n"
        } else {
            "--- homogeneous ---\n"
        });
        let mut tt = TextTable::new(vec![
            "Config",
            "n0",
            "n1",
            "n2",
            "n3",
            "n4",
            "n5",
            "n6",
            "slow/mean",
        ]);
        for cfg_name in ["HDFS", "Ignem", "DYRS"] {
            let d = f.get(cfg_name, hetero);
            let mut row: Vec<String> = vec![cfg_name.to_string()];
            row.extend(d.reads.iter().map(|r| r.to_string()));
            row.push(format!("{:.2}", d.slow_node_share()));
            tt.row(row);
        }
        out.push_str(&tt.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_is_roughly_uniform() {
        let f = run(7, 14);
        for cfg_name in ["HDFS", "Ignem", "DYRS"] {
            let d = f.get(cfg_name, false);
            let share = d.slow_node_share();
            assert!(
                (0.5..=1.6).contains(&share),
                "{cfg_name} homogeneous slow-node share {share}"
            );
        }
    }

    #[test]
    fn dyrs_and_hdfs_avoid_slow_node_ignem_does_not() {
        let f = run(7, 14);
        let dyrs = f.get("DYRS", true).slow_node_share();
        let ignem = f.get("Ignem", true).slow_node_share();
        assert!(dyrs < 0.6, "DYRS slow-node share {dyrs}");
        assert!(
            ignem > 0.6,
            "Ignem must keep loading the slow node: {ignem}"
        );
        assert!(
            ignem > dyrs + 0.2,
            "separation: ignem {ignem} vs dyrs {dyrs}"
        );
    }

    #[test]
    fn totals_preserved_across_configs() {
        let f = run(7, 14);
        // every config reads the same number of blocks (the job's input)
        let totals: Vec<u64> = f
            .distributions
            .iter()
            .map(|d| d.reads.iter().sum())
            .collect();
        for &t in &totals {
            assert!(t >= 56, "at least one read per block: {totals:?}");
        }
    }

    #[test]
    fn render_has_both_panels() {
        let s = render(&run(7, 7));
        assert!(s.contains("homogeneous"));
        assert!(s.contains("handicapped"));
    }
}
