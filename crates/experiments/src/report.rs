//! Automatic paper-vs-measured report generation.
//!
//! [`generate`] runs every experiment at the given scale and renders a
//! self-contained markdown report mirroring EXPERIMENTS.md's structure —
//! so a user on different hardware (or after modifying the model) can
//! regenerate the whole comparison with one command:
//!
//! ```sh
//! repro --report report.md --scale 1.0
//! ```

use crate::{fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig11, table1, table2};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One row of the paper-vs-measured comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportRow {
    /// Which table/figure.
    pub artifact: String,
    /// The metric compared.
    pub metric: String,
    /// The paper's value, as printed.
    pub paper: String,
    /// Our measured value, as printed.
    pub measured: String,
    /// Whether the shape check passed.
    pub ok: bool,
}

/// Paper reference values used in the comparison tables.
mod paper {
    pub const SWIM_HDFS_SECS: f64 = 31.5;
    pub const SWIM_RAM: f64 = 0.46;
    pub const SWIM_IGNEM: f64 = -1.11;
    pub const SWIM_DYRS: f64 = 0.33;
    pub const HIVE_DYRS_MEAN: f64 = 0.36;
    pub const HIVE_DYRS_BEST: f64 = 0.48;
    pub const MIGRATABLE: f64 = 0.81;
    pub const MEAN_LEAD: f64 = 8.8;
    pub const UNDER_4PCT: f64 = 0.80;
    pub const MAP_RATIO: f64 = 1.8;
}

fn pct(x: f64) -> String {
    format!("{}{:.0}%", if x >= 0.0 { "+" } else { "" }, x * 100.0)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "✅"
    } else {
        "⚠️"
    }
}

/// Run everything and collect the comparison rows.
pub fn rows(seed: u64, scale: f64) -> Vec<ReportRow> {
    let mut rows: Vec<ReportRow> = Vec::new();
    let mut push = |artifact: &str, metric: &str, paper: String, measured: String, ok: bool| {
        rows.push(ReportRow {
            artifact: artifact.to_string(),
            metric: metric.to_string(),
            paper,
            measured,
            ok,
        });
    };
    collect(seed, scale, &mut push);
    rows
}

/// Run everything and render the markdown report.
pub fn generate(seed: u64, scale: f64) -> String {
    let rows = rows(seed, scale);
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "# DYRS reproduction report\n");
    let _ = writeln!(w, "seed `{seed}`, workload scale `{scale}`\n");
    let _ = writeln!(w, "| artifact | metric | paper | measured | |");
    let _ = writeln!(w, "|---|---|---|---|---|");
    for r in &rows {
        let _ = writeln!(
            w,
            "| {} | {} | {} | {} | {} |",
            r.artifact,
            r.metric,
            r.paper,
            r.measured,
            verdict(r.ok)
        );
    }
    let _ = writeln!(
        w,
        "\nSee EXPERIMENTS.md for the pinned-seed reference numbers and the\n\
         per-artifact discussion of deviations."
    );
    out
}

fn collect(seed: u64, scale: f64, push: &mut dyn FnMut(&str, &str, String, String, bool)) {
    // Motivation
    let f2 = fig02::run(seed, 100_000);
    push(
        "Fig. 2",
        "jobs with lead >= read",
        format!("{:.0}%", paper::MIGRATABLE * 100.0),
        format!("{:.1}%", f2.migratable_fraction * 100.0),
        (f2.migratable_fraction - paper::MIGRATABLE).abs() < 0.05,
    );
    push(
        "Fig. 2",
        "mean lead-time",
        format!("{:.1}s", paper::MEAN_LEAD),
        format!("{:.1}s", f2.mean_lead_secs),
        (f2.mean_lead_secs - paper::MEAN_LEAD).abs() < 2.0,
    );
    let f1 = fig01::run(seed);
    push(
        "Fig. 1",
        "node heterogeneity",
        "~13x".into(),
        format!("{:.1}x", f1.heterogeneity_ratio()),
        f1.heterogeneity_ratio() > 4.0,
    );
    let f3 = fig03::run(seed, 40);
    push(
        "Fig. 3",
        "samples under 4% util",
        format!("{:.0}%", paper::UNDER_4PCT * 100.0),
        format!("{:.1}%", f3.under_4pct * 100.0),
        (0.6..=1.0).contains(&f3.under_4pct),
    );

    // SWIM / Table I
    let t1 = table1::run(seed, scale);
    let hdfs = t1.row("HDFS").mean_duration_secs;
    push(
        "Table I",
        "HDFS mean job",
        format!("{:.1}s", paper::SWIM_HDFS_SECS),
        format!("{hdfs:.1}s"),
        (hdfs - paper::SWIM_HDFS_SECS).abs() / paper::SWIM_HDFS_SECS < 0.5,
    );
    for (name, reference) in [
        ("HDFS-Inputs-in-RAM", paper::SWIM_RAM),
        ("Ignem", paper::SWIM_IGNEM),
        ("DYRS", paper::SWIM_DYRS),
    ] {
        let got = t1.speedup(name);
        push(
            "Table I",
            &format!("{name} speedup"),
            pct(reference),
            pct(got),
            (got > 0.0) == (reference > 0.0),
        );
    }

    // Hive / Fig 4
    let f4 = fig04::run(seed, scale);
    let (best_q, best) = f4.best_speedup("DYRS");
    push(
        "Fig. 4",
        "DYRS mean Hive speedup",
        pct(paper::HIVE_DYRS_MEAN),
        pct(f4.mean_speedup("DYRS")),
        f4.mean_speedup("DYRS") > 0.2,
    );
    push(
        "Fig. 4",
        "DYRS best query",
        format!("{} (q15)", pct(paper::HIVE_DYRS_BEST)),
        format!("{} ({best_q})", pct(best)),
        best > f4.mean_speedup("DYRS"),
    );
    push(
        "Fig. 4",
        "Ignem vs HDFS",
        "slower".into(),
        pct(f4.mean_speedup("Ignem")),
        f4.mean_speedup("Ignem") < 0.1,
    );

    // Fig 5 bins
    let f5 = fig05::run(seed, scale);
    push(
        "Fig. 5",
        "small/medium/large speedups",
        "+34/+47/+26%".into(),
        format!(
            "{}/{}/{}",
            pct(f5.speedup("DYRS", 0)),
            pct(f5.speedup("DYRS", 1)),
            pct(f5.speedup("DYRS", 2))
        ),
        (0..3).all(|b| f5.speedup("DYRS", b) > 0.0),
    );

    // Fig 6 ratio
    let f6 = fig06::run(seed, scale);
    push(
        "Fig. 6",
        "HDFS/DYRS map-task ratio",
        format!("{:.1}x", paper::MAP_RATIO),
        format!("{:.2}x", f6.dyrs_map_ratio()),
        f6.dyrs_map_ratio() > 1.3,
    );

    // Fig 7
    let f7 = fig07::run(seed, scale);
    push(
        "Fig. 7",
        "share of in-RAM speedup kept",
        "~72%".into(),
        format!("{:.0}%", f7.speedup_capture * 100.0),
        f7.speedup_capture > 0.45,
    );

    // Fig 8
    let f8 = fig08::run(seed, (28.0 * scale).max(7.0) as u64);
    push(
        "Fig. 8",
        "slow-node read share HDFS/Ignem/DYRS",
        "low/1.0/low".into(),
        format!(
            "{:.2}/{:.2}/{:.2}",
            f8.get("HDFS", true).slow_node_share(),
            f8.get("Ignem", true).slow_node_share(),
            f8.get("DYRS", true).slow_node_share()
        ),
        f8.get("Ignem", true).slow_node_share() > f8.get("DYRS", true).slow_node_share(),
    );

    // Table II
    let t2 = table2::run(seed, (20.0 * scale).max(5.0) as u64);
    let runtimes: Vec<String> = t2
        .rows
        .iter()
        .map(|r| format!("{:.0}", r.runtime_secs))
        .collect();
    let a = t2.runtime("9a");
    let d = t2.runtime("9d");
    push(
        "Table II",
        "a/b/c/d/e sort runtimes",
        "137/127/129/135/137s".into(),
        format!("{}s", runtimes.join("/")),
        (a - d).abs() / a < 0.15,
    );

    // Fig 11a
    let f11 = fig11::run(seed);
    let speedups: Vec<String> = f11
        .sizes_gb
        .iter()
        .map(|&gb| pct(f11.map_speedup(gb)))
        .collect();
    let first = f11.map_speedup(f11.sizes_gb[0]);
    let last = f11.map_speedup(*f11.sizes_gb.last().expect("sizes"));
    push(
        "Fig. 11a",
        "map speedup vs size",
        "shrinking".into(),
        speedups.join(" "),
        last < first,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_all_artifacts() {
        let r = generate(7, 0.15);
        for needle in [
            "Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8",
            "Table I", "Table II", "Fig. 11a",
        ] {
            assert!(r.contains(needle), "missing {needle}");
        }
        assert!(r.contains("| artifact |"));
    }

    #[test]
    fn report_is_deterministic() {
        assert_eq!(generate(7, 0.1), generate(7, 0.1));
    }
}
