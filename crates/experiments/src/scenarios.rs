//! Shared experiment scenarios: the evaluation cluster and the standard
//! policy sweeps, so every figure/table module builds on identical setups.

use crate::runner::{run_all, SimTask};
use dyrs::MigrationPolicy;
use dyrs_cluster::{InterferenceSchedule, NodeId};
use dyrs_sim::{SimConfig, SimResult};
use dyrs_workloads::{swim, Workload};

/// The handicapped node used throughout the evaluation (§V-C): the paper
/// creates fixed heterogeneity by running `dd` readers against one node.
pub const SLOW_NODE: NodeId = NodeId(0);

/// Number of `dd`-style readers on the slow node (the paper runs "two
/// Linux dd jobs"; each is modeled as one saturating disk stream).
pub const DD_STREAMS: u32 = 2;

/// The paper's heterogeneous evaluation cluster: 7 workers with
/// persistent interference on [`SLOW_NODE`].
pub fn hetero_config(policy: MigrationPolicy, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(policy, seed);
    cfg.interference
        .push(InterferenceSchedule::persistent(SLOW_NODE, DD_STREAMS));
    cfg
}

/// A quiet homogeneous cluster (Fig. 8a).
pub fn homogeneous_config(policy: MigrationPolicy, seed: u64) -> SimConfig {
    SimConfig::paper_default(policy, seed)
}

/// Run the SWIM workload under the four paper configurations on the
/// heterogeneous cluster. Returns results keyed by policy, in
/// [`MigrationPolicy::paper_configs`] order. `scale` shrinks the workload
/// (1.0 = the paper's 200-job / 170 GB setup) for quick runs and benches.
pub fn swim_runs(seed: u64, scale: f64) -> Vec<(MigrationPolicy, SimResult)> {
    let params = swim_params(scale);
    let tasks: Vec<SimTask> = MigrationPolicy::paper_configs()
        .into_iter()
        .map(|policy| {
            let mut cfg = hetero_config(policy, seed);
            let w = swim::generate(&params, seed);
            cfg.files = w.files;
            SimTask::new(policy.name(), cfg, w.jobs)
        })
        .collect();
    run_all(tasks, 0)
        .into_iter()
        .zip(MigrationPolicy::paper_configs())
        .map(|((_, r), p)| (p, r))
        .collect()
}

/// SWIM generator parameters at a given scale.
pub fn swim_params(scale: f64) -> swim::SwimParams {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let base = swim::SwimParams::default();
    swim::SwimParams {
        jobs: ((base.jobs as f64 * scale) as usize).max(10),
        total_input_bytes: ((base.total_input_bytes as f64 * scale) as u64).max(1 << 30),
        max_input: ((base.max_input as f64 * scale) as u64).max(1 << 30),
        ..base
    }
}

/// Attach a workload to a config (files move into the config; jobs are
/// returned for the runner).
pub fn with_workload(mut cfg: SimConfig, w: Workload) -> (SimConfig, Vec<dyrs_engine::JobSpec>) {
    cfg.files = w.files;
    (cfg, w.jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_has_interference_on_slow_node() {
        let cfg = hetero_config(MigrationPolicy::Dyrs, 1);
        assert_eq!(cfg.interference.len(), 1);
        assert_eq!(cfg.interference[0].node, SLOW_NODE);
        assert!(homogeneous_config(MigrationPolicy::Dyrs, 1)
            .interference
            .is_empty());
    }

    #[test]
    fn scaled_swim_params_shrink() {
        let p = swim_params(0.1);
        assert_eq!(p.jobs, 20);
        assert!(p.total_input_bytes < 20 * (1 << 30));
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn bad_scale_rejected() {
        swim_params(0.0);
    }
}
