//! Google-conditions replay: the motivation meets the evaluation.
//!
//! §II of the paper argues production clusters have the conditions for
//! migration — low mean disk utilization (3.1%) with strong per-node
//! heterogeneity. This experiment closes the loop: it replays synthesized
//! Google-trace utilization (the same generator behind Figs. 1–3) as
//! background disk load on **every** node of the evaluation cluster and
//! runs the SWIM workload on top. DYRS must keep (most of) its speedup
//! under these realistic dynamic conditions — the paper's core deployment
//! claim — while Ignem keeps losing.

use crate::render::{pct, secs, TextTable};
use crate::runner::{run_all, SimTask};
use crate::scenarios::swim_params;
use dyrs::MigrationPolicy;
use dyrs_cluster::NodeId;
use dyrs_sim::SimConfig;
use dyrs_workloads::{google, swim};
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};

/// One configuration's outcome under replayed conditions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayRow {
    /// Configuration name.
    pub config: String,
    /// Mean job duration, seconds.
    pub mean_job_secs: f64,
    /// Speedup vs HDFS under the same background load.
    pub speedup_vs_hdfs: Option<f64>,
    /// Fraction of input read from memory.
    pub memory_fraction: f64,
}

/// The replay study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Replay {
    /// Mean background utilization per node (duty cycles of the replayed
    /// traces).
    pub background_means: Vec<f64>,
    /// Rows in paper-config order.
    pub rows: Vec<ReplayRow>,
}

impl Replay {
    /// Row lookup by config name.
    pub fn row(&self, name: &str) -> &ReplayRow {
        self.rows
            .iter()
            .find(|r| r.config == name)
            .unwrap_or_else(|| panic!("missing config {name}"))
    }
}

/// Run SWIM under replayed Google-trace background load.
pub fn run(seed: u64, scale: f64) -> Replay {
    let params = swim_params(scale);
    // Background traces long enough to cover any run; sampled every 20 s
    // so the load is dynamic on the timescale of jobs.
    let horizon = SimTime::from_secs(4 * 3600);
    let step = SimDuration::from_secs(20);
    let schedules: Vec<_> = (0..7u32)
        .map(|n| google::background_schedule(seed, NodeId(n), horizon, step))
        .collect();
    let background_means = schedules.iter().map(|s| s.duty_cycle(horizon)).collect();

    let tasks: Vec<SimTask> = MigrationPolicy::paper_configs()
        .into_iter()
        .map(|policy| {
            let mut cfg = SimConfig::paper_default(policy, seed);
            cfg.interference = schedules.clone();
            let w = swim::generate(&params, seed);
            cfg.files = w.files;
            SimTask::new(policy.name(), cfg, w.jobs)
        })
        .collect();
    let results = run_all(tasks, 0);
    let hdfs_mean = results
        .iter()
        .find(|(l, _)| l == "HDFS")
        .expect("HDFS run")
        .1
        .mean_job_duration_secs();
    let rows = results
        .iter()
        .map(|(label, r)| ReplayRow {
            config: label.clone(),
            mean_job_secs: r.mean_job_duration_secs(),
            speedup_vs_hdfs: (label != "HDFS")
                .then(|| 1.0 - r.mean_job_duration_secs() / hdfs_mean),
            memory_fraction: r.memory_read_fraction(),
        })
        .collect();
    Replay {
        background_means,
        rows,
    }
}

/// Render the study.
pub fn render(r: &Replay) -> String {
    let mut tt = TextTable::new(vec!["Config", "Mean job(s)", "Speedup", "Mem reads"]);
    for row in &r.rows {
        tt.row(vec![
            row.config.clone(),
            secs(row.mean_job_secs),
            row.speedup_vs_hdfs.map(pct).unwrap_or_default(),
            format!("{:.0}%", row.memory_fraction * 100.0),
        ]);
    }
    let bg: Vec<String> = r
        .background_means
        .iter()
        .map(|m| format!("{:.1}%", m * 100.0))
        .collect();
    format!(
        "GOOGLE-CONDITIONS REPLAY — SWIM under trace-driven background load\n\
         (the §II motivation conditions replayed onto the evaluation cluster;\n\
          per-node mean background utilization: {})\n\n{}",
        bg.join(" "),
        tt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyrs_keeps_its_edge_under_replayed_conditions() {
        let r = run(7, 0.25);
        let dyrs = r.row("DYRS").speedup_vs_hdfs.expect("speedup");
        let ram = r.row("HDFS-Inputs-in-RAM").speedup_vs_hdfs.expect("bound");
        assert!(dyrs > 0.1, "DYRS speedup under replay {dyrs:.2}");
        assert!(dyrs <= ram + 0.05, "bound respected");
        assert!(r.row("DYRS").memory_fraction > 0.4);
    }

    #[test]
    fn background_is_light_on_average_but_heterogeneous() {
        let r = run(7, 0.1);
        let mean = r.background_means.iter().sum::<f64>() / r.background_means.len() as f64;
        assert!(
            mean < 0.25,
            "background must be light on average: {mean:.2}"
        );
        let max = r.background_means.iter().cloned().fold(0.0, f64::max);
        let min = r.background_means.iter().cloned().fold(1.0, f64::min);
        assert!(
            max / min.max(1e-6) > 2.0,
            "heterogeneous: {max:.3} vs {min:.3}"
        );
    }

    #[test]
    fn render_lists_configs() {
        let s = render(&run(7, 0.1));
        assert!(s.contains("DYRS") && s.contains("Ignem"));
    }
}
