//! Figure 2 — distribution of lead-time ÷ read-time across jobs.
//!
//! Paper claim: "81% of jobs in the Google trace have enough lead-time to
//! migrate the entire input into memory" (lead-time ≥ read-time), with
//! mean lead-time 8.8 s.

use dyrs_workloads::google;
use serde::{Deserialize, Serialize};

/// Figure 2 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Histogram of log10(lead/read) — the PDF the figure plots.
    pub bins: Vec<(f64, f64, f64)>, // (lo, hi, density)
    /// Fraction of jobs with lead ≥ read.
    pub migratable_fraction: f64,
    /// Mean lead-time, seconds.
    pub mean_lead_secs: f64,
}

/// Build the job population and its ratio distribution.
pub fn run(seed: u64, jobs: usize) -> Fig2 {
    let pop = google::job_population(seed, jobs);
    let mut hist = simkit::stats::Histogram::linear(-3.0, 3.0, 36);
    for j in &pop {
        hist.observe(j.lead_to_read_ratio().max(1e-9).log10().clamp(-2.99, 2.99));
    }
    let total = hist.total() as f64;
    let bins = hist
        .iter_bins()
        .map(|(lo, hi, c)| (lo, hi, c as f64 / total))
        .collect();
    Fig2 {
        bins,
        migratable_fraction: google::migratable_fraction(&pop),
        mean_lead_secs: pop.iter().map(|j| j.lead_secs).sum::<f64>() / pop.len() as f64,
    }
}

/// Render the PDF and the headline fraction.
pub fn render(f: &Fig2) -> String {
    let mut out = String::from(
        "FIG 2: PDF of lead-time/read-time ratio (log10 bins)\n\
         (paper: 81% of jobs have lead-time >= read-time; mean lead 8.8s)\n\n",
    );
    for &(lo, hi, d) in &f.bins {
        let bar = "#".repeat((d * 400.0).round() as usize);
        out.push_str(&format!("[{lo:+.1},{hi:+.1}) {d:>6.3} {bar}\n"));
    }
    out.push_str(&format!(
        "\nmigratable (lead >= read): {:.1}%   mean lead-time: {:.1}s\n",
        f.migratable_fraction * 100.0,
        f.mean_lead_secs
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighty_one_percent_migratable() {
        let f = run(1, 50_000);
        assert!(
            (0.78..=0.84).contains(&f.migratable_fraction),
            "fraction {}",
            f.migratable_fraction
        );
        assert!(
            (7.5..=10.0).contains(&f.mean_lead_secs),
            "mean lead {}",
            f.mean_lead_secs
        );
    }

    #[test]
    fn pdf_sums_to_one() {
        let f = run(1, 20_000);
        let mass: f64 = f.bins.iter().map(|&(_, _, d)| d).sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn mode_is_positive_ratio() {
        // most jobs have lead > read → the density peak sits at ratio > 1
        let f = run(1, 50_000);
        let peak = f
            .bins
            .iter()
            .max_by(|a, b| a.2.total_cmp(&b.2))
            .expect("non-empty");
        assert!(peak.0 >= -0.5, "peak bin starts at {}", peak.0);
    }

    #[test]
    fn render_shows_fraction() {
        let s = render(&run(1, 5_000));
        assert!(s.contains("migratable"));
    }
}
