//! Parallel sweep runner.
//!
//! Every experiment is a set of *independent* simulations (policies ×
//! parameters × seeds). Each simulation is single-threaded and
//! deterministic; the sweep fans them out over a `crossbeam::scope`
//! worker pool with static round-robin partitioning — no shared mutable
//! state during the run, per-worker result buffers, one merge at the
//! barrier. Results come back in input order regardless of which worker
//! ran what, so parallel and serial sweeps are bit-identical.

use dyrs_engine::JobSpec;
use dyrs_sim::{SimConfig, SimResult, Simulation};
use parking_lot::Mutex;

/// One simulation to run: a label the experiment uses to find the result,
/// plus the full configuration and workload.
pub struct SimTask {
    /// Caller-chosen identifier (e.g. "DYRS/q15").
    pub label: String,
    /// Simulation config.
    pub cfg: SimConfig,
    /// Workload jobs.
    pub jobs: Vec<JobSpec>,
}

impl SimTask {
    /// Shorthand constructor.
    pub fn new(label: impl Into<String>, cfg: SimConfig, jobs: Vec<JobSpec>) -> Self {
        SimTask {
            label: label.into(),
            cfg,
            jobs,
        }
    }
}

/// Run all tasks, using up to `threads` workers (0 = one per available
/// CPU). Returns `(label, result)` pairs in input order.
pub fn run_all(tasks: Vec<SimTask>, threads: usize) -> Vec<(String, SimResult)> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    if threads <= 1 {
        return tasks
            .into_iter()
            .map(|t| (t.label, Simulation::new(t.cfg, t.jobs).run()))
            .collect();
    }

    // Static round-robin partitioning: worker w takes tasks w, w+T, w+2T…
    // Each slot is written exactly once, so a mutexed slot vector has no
    // contention in practice (lock per finished sim, not per event).
    let mut slots: Vec<Option<(String, SimResult)>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    let tasks: Vec<Option<SimTask>> = tasks.into_iter().map(Some).collect();
    let tasks = Mutex::new(tasks);

    crossbeam::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let tasks = &tasks;
            scope.spawn(move |_| {
                let mut i = w;
                while i < n {
                    let task = tasks.lock()[i].take().expect("each index taken once");
                    let result = Simulation::new(task.cfg, task.jobs).run();
                    slots.lock()[i] = Some((task.label, result));
                    i += threads;
                }
            });
        }
    })
    .expect("sweep worker panicked");

    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyrs::MigrationPolicy;
    use dyrs_dfs::JobId;
    use dyrs_sim::FileSpec;
    use simkit::SimTime;

    fn task(label: &str, seed: u64) -> SimTask {
        let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, seed);
        cfg.files.push(FileSpec::new("f", 4 * (256 << 20)));
        let jobs = vec![JobSpec::map_only(
            JobId(0),
            "j",
            SimTime::ZERO,
            vec!["f".into()],
        )];
        SimTask::new(label, cfg, jobs)
    }

    #[test]
    fn empty_sweep() {
        assert!(run_all(Vec::new(), 4).is_empty());
    }

    #[test]
    fn results_in_input_order() {
        let tasks = (0..8).map(|i| task(&format!("t{i}"), i)).collect();
        let out = run_all(tasks, 4);
        let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"]);
    }

    #[test]
    fn parallel_equals_serial() {
        let mk = || (0..6).map(|i| task(&format!("t{i}"), 42 + i)).collect();
        let serial = run_all(mk(), 1);
        let parallel = run_all(mk(), 4);
        for ((la, ra), (lb, rb)) in serial.iter().zip(&parallel) {
            assert_eq!(la, lb);
            assert_eq!(ra.end_time, rb.end_time);
            assert_eq!(ra.jobs[0].duration, rb.jobs[0].duration);
            assert_eq!(ra.master, rb.master);
        }
    }
}
