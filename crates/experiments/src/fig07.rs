//! Figure 7 — memory footprint of DYRS vs a hypothetical instant scheme.
//!
//! The paper compares the per-server memory used by DYRS against a
//! hypothetical scheme that "migrates the input instantly when the job is
//! submitted and evicts it when the job completes" (which would match
//! HDFS-Inputs-in-RAM's performance). Claims: DYRS migrates only ~45% as
//! much data yet delivers ~72% of the bound's speedup — diminishing
//! returns on memory, because DYRS evicts as soon as data is read.

use crate::scenarios::swim_runs;
use dyrs::MigrationPolicy;
use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// Figure 7 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// Mean (time-averaged) per-server memory used by DYRS, bytes.
    pub dyrs_mean_bytes: f64,
    /// Peak per-server memory used by DYRS, bytes.
    pub dyrs_peak_bytes: u64,
    /// Mean per-server memory of the hypothetical instant scheme.
    pub hypo_mean_bytes: f64,
    /// Peak per-server memory of the hypothetical scheme.
    pub hypo_peak_bytes: u64,
    /// Bytes DYRS actually migrated ÷ total input bytes.
    pub migrated_fraction: f64,
    /// DYRS speedup ÷ in-RAM-bound speedup (the "72%").
    pub speedup_capture: f64,
}

/// Run SWIM and compare footprints.
pub fn run(seed: u64, scale: f64) -> Fig7 {
    let runs = swim_runs(seed, scale);
    let get = |p: MigrationPolicy| {
        &runs
            .iter()
            .find(|(q, _)| *q == p)
            .expect("policy present")
            .1
    };
    let dyrs = get(MigrationPolicy::Dyrs);
    let hdfs = get(MigrationPolicy::Disabled);
    let ram = get(MigrationPolicy::InstantRam);

    // DYRS footprint: time-weighted mean + peak of the slave buffers.
    let end = dyrs.end_time;
    let n = dyrs.nodes.len() as f64;
    let dyrs_mean_bytes = dyrs
        .nodes
        .iter()
        .map(|nr| {
            nr.buffer_series
                .time_weighted_mean(simkit::SimTime::ZERO, end, 0.0)
        })
        .sum::<f64>()
        / n;
    let dyrs_peak_bytes = dyrs
        .nodes
        .iter()
        .map(|nr| nr.peak_buffer_bytes)
        .max()
        .unwrap_or(0);

    // Hypothetical scheme reconstructed from the RAM run's job intervals:
    // a job's whole input is resident (spread over the 7 servers) from
    // submission to completion.
    let horizon = ram.end_time.as_secs_f64().max(1.0);
    let mut hypo_mean = 0.0f64; // byte-seconds per server
    let mut events: Vec<(f64, i64)> = Vec::new(); // (time, delta bytes)
    for j in &ram.jobs {
        let per_server = j.input_bytes as f64 / n;
        hypo_mean += per_server * j.duration.as_secs_f64();
        events.push((j.submitted_at.as_secs_f64(), j.input_bytes as i64));
        events.push((j.completed_at.as_secs_f64(), -(j.input_bytes as i64)));
    }
    hypo_mean /= horizon;
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut cur: i64 = 0;
    let mut peak: i64 = 0;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    let hypo_peak_bytes = (peak as f64 / n) as u64;

    let total_input: u64 = dyrs.jobs.iter().map(|j| j.input_bytes).sum();
    let migrated: u64 = dyrs.nodes.iter().map(|nr| nr.slave.bytes_migrated).sum();
    let s = |r: &dyrs_sim::SimResult| r.mean_job_duration_secs();
    let dyrs_speedup = 1.0 - s(dyrs) / s(hdfs);
    let ram_speedup = 1.0 - s(ram) / s(hdfs);

    Fig7 {
        dyrs_mean_bytes,
        dyrs_peak_bytes,
        hypo_mean_bytes: hypo_mean,
        hypo_peak_bytes,
        migrated_fraction: migrated as f64 / total_input.max(1) as f64,
        speedup_capture: if ram_speedup > 0.0 {
            dyrs_speedup / ram_speedup
        } else {
            0.0
        },
    }
}

/// Render the comparison.
pub fn render(f: &Fig7) -> String {
    const GB: f64 = (1u64 << 30) as f64;
    format!(
        "FIG 7: Per-server memory usage — DYRS vs hypothetical instant scheme\n\
         (paper: DYRS migrates ~45% of the data yet keeps ~72% of the speedup)\n\n\
         DYRS          mean {:>7.2} GB   peak {:>7.2} GB\n\
         Hypothetical  mean {:>7.2} GB   peak {:>7.2} GB\n\n\
         data migrated by DYRS: {:.0}% of total input\n\
         share of the in-RAM speedup captured: {:.0}%\n",
        f.dyrs_mean_bytes / GB,
        f.dyrs_peak_bytes as f64 / GB,
        f.hypo_mean_bytes / GB,
        f.hypo_peak_bytes as f64 / GB,
        f.migrated_fraction * 100.0,
        f.speedup_capture * 100.0
    )
}

/// Convenience: mean footprint relative to the hypothetical scheme.
pub fn footprint_ratio(f: &Fig7) -> f64 {
    if f.hypo_mean_bytes == 0.0 {
        0.0
    } else {
        f.dyrs_mean_bytes / f.hypo_mean_bytes
    }
}

/// The paper's lead-time proxy duration (unused helper kept for the
/// ablation bench that sweeps eviction modes).
pub fn zero() -> SimDuration {
    SimDuration::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyrs_uses_less_memory_but_keeps_most_speedup() {
        let f = run(7, 0.25);
        // at reduced scale the cluster has enough residual bandwidth to
        // migrate essentially everything; the ~45% of the paper emerges
        // only at full contention, so only sanity-bound it here
        assert!(
            f.migrated_fraction <= 1.05,
            "DYRS cannot migrate (much) more than everything: {}",
            f.migrated_fraction
        );
        assert!(
            f.migrated_fraction > 0.1,
            "DYRS must migrate a meaningful share: {}",
            f.migrated_fraction
        );
        assert!(
            f.speedup_capture > 0.45,
            "speedup capture {} (paper 0.72)",
            f.speedup_capture
        );
        assert!(
            footprint_ratio(&f) < 1.0,
            "DYRS footprint must undercut the hypothetical: {}",
            footprint_ratio(&f)
        );
    }

    #[test]
    fn peaks_bound_means() {
        let f = run(7, 0.1);
        assert!(f.dyrs_mean_bytes <= f.dyrs_peak_bytes as f64 + 1.0);
        assert!(f.hypo_mean_bytes <= f.hypo_peak_bytes as f64 + 1.0);
    }

    #[test]
    fn render_reports_both_schemes() {
        let s = render(&run(7, 0.1));
        assert!(s.contains("DYRS"));
        assert!(s.contains("Hypothetical"));
    }
}
