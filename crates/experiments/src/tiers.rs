//! Tier sweep — 2-tier DYRS baseline vs 3-/4-tier stacks on job speedup
//! and wasted-migration rate.
//!
//! The legacy stack evicts by dropping: every byte a finished job leaves
//! behind must be re-migrated from HDD if a later job wants it, and the
//! first read after eviction pays the disk. A deeper stack demotes the
//! copy to NVMe/SSD instead, so re-reads are served from the middle tier
//! and fewer completed migrations end up wasted. The sweep drives a
//! reuse-heavy workload (rounds of jobs re-reading the same files) under
//! a tight memory limit, where that difference is visible:
//!
//! * **speedup** — mean job duration vs the 2-tier baseline;
//! * **wasted-migration rate** — evict-drops ÷ completed migrations
//!   (a completed migration whose bytes are dropped bought nothing that
//!   outlives the evicting job; a demoted one keeps serving).
//!
//! The 2-tier row runs today's exact configuration (`tiers: None`), so
//! its trace digest doubles as the legacy-equivalence witness replayed by
//! CI and pinned in `tests/determinism.rs`.

use crate::render::TextTable;
use crate::runner::{run_all, SimTask};
use crate::scenarios::hetero_config;
use dyrs::{MigrationPolicy, TierPolicyKind, TierStackSpec};
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::{FileSpec, SimConfig};
use serde::{Deserialize, Serialize};
use simkit::SimTime;

/// Files in the working set.
const FILES: usize = 6;
/// Rounds of re-reads over the working set.
const ROUNDS: usize = 3;
/// Seconds between job arrivals. Shorter than a job's runtime, so jobs
/// overlap and their migrations contend for disk: a re-read of a file
/// evicted at the end of the previous round races its own re-migration,
/// which is exactly where a demoted NVMe copy beats a dropped one. (The
/// same file is only re-read `FILES` arrivals later, so the previous
/// reader has always finished and its implicit eviction has fired.)
const ARRIVAL_GAP_SECS: u64 = 8;

/// One storage-stack configuration in the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TierSweepRow {
    /// Stack label ("2-tier", "3-tier", ...).
    pub stack: String,
    /// Tier policy behind Algorithm 1 ("baseline" or "hotness").
    pub policy: String,
    /// Mean job duration, seconds.
    pub mean_job_secs: f64,
    /// Improvement over the 2-tier baseline, percent (positive = faster).
    pub speedup_pct: f64,
    /// Migrations completed (master roll-up).
    pub completed: u64,
    /// Evictions salvaged by demoting the copy down-tier.
    pub demoted: u64,
    /// Evictions that dropped the copy outright (no tier below had room,
    /// or none exists).
    pub dropped: u64,
    /// Middle-tier reads promoted back into memory (hotness policy only).
    pub promoted: u64,
    /// Wasted-migration rate: `dropped / completed`.
    pub wasted_rate: f64,
    /// Event-trace digest of the run (the 2-tier row's digest is the
    /// legacy-equivalence witness; CI replays it).
    pub trace_digest: u64,
}

/// Full tier-sweep data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TierSweep {
    /// Rows in sweep order: 2-tier, 3-tier, 4-tier, 3-tier/hotness.
    pub rows: Vec<TierSweepRow>,
}

impl TierSweep {
    /// Lookup a row by stack label.
    pub fn get(&self, stack: &str) -> &TierSweepRow {
        self.rows
            .iter()
            .find(|r| r.stack == stack)
            .unwrap_or_else(|| panic!("missing {stack}"))
    }
}

/// The reuse workload: `ROUNDS` passes over `FILES` files, one map-only
/// job per (round, file). Files are sized so a job's migrations outlast
/// the engine's platform lead — re-reads race their re-migrations and
/// actually touch the storage stack instead of always landing in memory.
fn reuse_workload(cfg: &mut SimConfig, scale: f64) -> Vec<JobSpec> {
    let file_bytes = ((8.0 * (1u64 << 30) as f64 * scale) as u64).max(512 << 20);
    let mut jobs = Vec::with_capacity(FILES * ROUNDS);
    for f in 0..FILES {
        cfg.files
            .push(FileSpec::new(format!("reuse/input-{f}"), file_bytes));
    }
    for round in 0..ROUNDS {
        for f in 0..FILES {
            let i = round * FILES + f;
            jobs.push(JobSpec::map_only(
                JobId(i as u64),
                format!("reuse-{round}-{f}"),
                SimTime::from_secs((i as u64) * ARRIVAL_GAP_SECS),
                vec![format!("reuse/input-{f}")],
            ));
        }
    }
    jobs
}

fn stack_for(spec: &dyrs_cluster::NodeSpec, stack: &str) -> Option<TierStackSpec> {
    match stack {
        "2-tier" => None,
        "3-tier" => Some(TierStackSpec::three_tier(
            spec.mem_capacity,
            spec.membus_bw,
            spec.disk_bw,
            spec.disk_degradation,
        )),
        "4-tier" => Some(TierStackSpec::four_tier(
            spec.mem_capacity,
            spec.membus_bw,
            spec.disk_bw,
            spec.disk_degradation,
        )),
        other => panic!("unknown stack {other}"),
    }
}

/// Run the sweep: 2/3/4-tier under the baseline policy plus 3-tier under
/// the hotness policy, all on the heterogeneous evaluation cluster with a
/// migration buffer tight enough to force eviction pressure.
pub fn run(seed: u64, scale: f64) -> TierSweep {
    let variants: [(&str, &str, TierPolicyKind); 4] = [
        ("2-tier", "baseline", TierPolicyKind::Baseline),
        ("3-tier", "baseline", TierPolicyKind::Baseline),
        ("4-tier", "baseline", TierPolicyKind::Baseline),
        ("3-tier/hotness", "hotness", TierPolicyKind::Hotness),
    ];
    let tasks: Vec<SimTask> = variants
        .iter()
        .map(|(stack, _, policy)| {
            let mut cfg = hetero_config(MigrationPolicy::Dyrs, seed);
            let base = stack.split('/').next().expect("stack label");
            for spec in &mut cfg.cluster.nodes {
                spec.tiers = stack_for(spec, base);
            }
            cfg.dyrs.tier_policy = *policy;
            // A buffer two files deep: round r's files cannot all stay
            // resident until round r+1, so evictions (and, with a middle
            // tier, demotions) are guaranteed.
            let jobs = reuse_workload(&mut cfg, scale);
            cfg.mem_limit = Some(2 * cfg.files[0].bytes);
            SimTask::new(*stack, cfg, jobs)
        })
        .collect();
    let results = run_all(tasks, 0);
    let base_secs = results[0].1.mean_job_duration_secs();
    let rows = results
        .into_iter()
        .zip(variants)
        .map(|((label, r), (_, policy, _))| {
            let mean = r.mean_job_duration_secs();
            let dropped = r.obs.counter("tier.evict_drop");
            TierSweepRow {
                stack: label,
                policy: policy.to_string(),
                mean_job_secs: mean,
                speedup_pct: (base_secs - mean) / base_secs * 100.0,
                completed: r.master.completed,
                demoted: r.obs.counter("tier.evict_demote"),
                dropped,
                promoted: r.obs.counter("tier.promotions"),
                wasted_rate: dropped as f64 / r.master.completed.max(1) as f64,
                trace_digest: r.trace_digest,
            }
        })
        .collect();
    TierSweep { rows }
}

/// Render the sweep table.
pub fn render(t: &TierSweep) -> String {
    let mut tt = TextTable::new(vec![
        "Stack",
        "Policy",
        "Mean job (s)",
        "Speedup",
        "Migrations",
        "Demoted",
        "Dropped",
        "Promoted",
        "Wasted rate",
    ]);
    for r in &t.rows {
        tt.row(vec![
            r.stack.clone(),
            r.policy.clone(),
            format!("{:.1}", r.mean_job_secs),
            format!("{:+.1}%", r.speedup_pct),
            format!("{}", r.completed),
            format!("{}", r.demoted),
            format!("{}", r.dropped),
            format!("{}", r.promoted),
            format!("{:.2}", r.wasted_rate),
        ]);
    }
    format!(
        "TIER SWEEP: storage stacks under eviction pressure\n\
         (2-tier evictions drop bytes back to HDD; deeper stacks demote\n\
          to NVMe/SSD, cutting wasted migrations and re-read cost)\n\n{}",
        tt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_contrasts_drop_vs_demote() {
        let t = run(7, 0.25);
        assert_eq!(t.rows.len(), 4);
        let two = t.get("2-tier");
        let three = t.get("3-tier");
        // every stack actually migrated and evicted under pressure
        for r in &t.rows {
            assert!(r.completed > 0, "{}: no migrations completed", r.stack);
            assert!(r.mean_job_secs > 0.0, "{}: no jobs ran", r.stack);
        }
        // the legacy stack can only drop; deeper stacks salvage by demoting
        assert_eq!(two.demoted, 0, "2-tier has nowhere to demote");
        assert!(two.dropped > 0, "pressure must evict on the 2-tier stack");
        assert!(three.demoted > 0, "3-tier must demote under pressure");
        assert!(
            three.wasted_rate < two.wasted_rate,
            "demotion must cut the wasted-migration rate: 3-tier {:.2} vs 2-tier {:.2}",
            three.wasted_rate,
            two.wasted_rate
        );
        // re-reads served from NVMe keep the deeper stack no slower
        assert!(
            three.mean_job_secs <= two.mean_job_secs * 1.05,
            "3-tier must not be slower: {:.1}s vs {:.1}s",
            three.mean_job_secs,
            two.mean_job_secs
        );
    }

    #[test]
    fn two_tier_row_is_deterministic() {
        let a = run(7, 0.1);
        let b = run(7, 0.1);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.trace_digest, rb.trace_digest, "{}", ra.stack);
        }
    }

    #[test]
    fn render_names_every_stack() {
        let s = render(&run(7, 0.1));
        assert!(s.contains("2-tier") && s.contains("4-tier") && s.contains("hotness"));
        assert!(s.contains("Wasted rate"));
    }
}
