//! Table II — Sort runtime under the five interference patterns.
//!
//! Paper numbers: (a) persistent on node1 → 137 s; (b) 10 s alternation →
//! 127 s; (c) 20 s alternation → 129 s; (d) 10 s anti-phased on two nodes
//! → 135 s; (e) 20 s anti-phased → 137 s. The shape: setups with the same
//! *total* amount of interference have the same runtime — (b) ≈ (c) (half
//! a node of interference) faster than (a) ≈ (d) ≈ (e) (one full node's
//! worth) — because DYRS keeps adapting and uses all residual bandwidth.

use crate::fig09;
use crate::render::TextTable;
use serde::{Deserialize, Serialize};

/// One Table II row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Pattern label.
    pub pattern: String,
    /// Effective interference (node-equivalents).
    pub interference_nodes: f64,
    /// Sort runtime, seconds.
    pub runtime_secs: f64,
}

/// Table II data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows in paper order (9a..9e).
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Runtime of a pattern by prefix.
    pub fn runtime(&self, prefix: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.pattern.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing {prefix}"))
            .runtime_secs
    }
}

/// Run the five patterns (same runs as Fig. 9).
pub fn run(seed: u64, input_gb: u64) -> Table2 {
    let f = fig09::run(seed, input_gb);
    let duty = [1.0, 0.5, 0.5, 1.0, 1.0];
    Table2 {
        rows: f
            .series
            .iter()
            .zip(duty)
            .map(|(s, d)| Table2Row {
                pattern: s.label.clone(),
                interference_nodes: d,
                runtime_secs: s.job_secs,
            })
            .collect(),
    }
}

/// Render in the paper's layout.
pub fn render(t: &Table2) -> String {
    let mut tt = TextTable::new(vec![
        "Interference pattern",
        "Total interference (nodes)",
        "Sort runtime (s)",
    ]);
    for r in &t.rows {
        tt.row(vec![
            r.pattern.clone(),
            format!("{:.1}", r.interference_nodes),
            format!("{:.1}", r.runtime_secs),
        ]);
    }
    format!(
        "TABLE II: Sort runtime vs interference pattern\n\
         (paper: same total interference => same runtime;\n\
          137/127/129/135/137s for a/b/c/d/e)\n\n{}",
        tt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_interference_gives_equal_runtime() {
        let t = run(7, 10);
        let a = t.runtime("9a");
        let b = t.runtime("9b");
        let c = t.runtime("9c");
        let d = t.runtime("9d");
        let e = t.runtime("9e");
        let close = |x: f64, y: f64, tol: f64| (x - y).abs() / x.max(y) <= tol;
        // same-duty setups match within tolerance. Pattern (e) — 20s
        // anti-phased alternation — is allowed a wider band: our modeled
        // interference kills a node outright while it is on, and the
        // longer phase can sync adversarially with the estimator's trust
        // cycle, a deviation EXPERIMENTS.md documents.
        assert!(close(b, c, 0.10), "b {b:.1} vs c {c:.1}");
        assert!(close(a, d, 0.10), "a {a:.1} vs d {d:.1}");
        assert!(close(d, e, 0.25), "d {d:.1} vs e {e:.1}");
        // half-duty patterns are no slower than full-duty ones
        assert!(
            b.min(c) <= a.max(d).max(e) * 1.02,
            "half-duty must not exceed full-duty: b={b:.1} c={c:.1} vs a={a:.1} d={d:.1} e={e:.1}"
        );
    }

    #[test]
    fn render_has_five_rows() {
        let t = run(7, 5);
        let s = render(&t);
        assert_eq!(t.rows.len(), 5);
        assert!(s.contains("9a"));
        assert!(s.contains("9e"));
    }
}
