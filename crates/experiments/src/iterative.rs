//! Motivation experiment: iterative analytics (paper §I).
//!
//! The paper motivates DYRS partly through iterative applications whose
//! *first* iteration reads cold data — 15× slower than later iterations
//! for Logistic Regression, 2.5× for K-Means. This experiment runs both
//! application shapes under plain HDFS and under DYRS and reports the
//! first-iteration penalty (iteration-1 duration ÷ mean later-iteration
//! duration): DYRS should collapse it toward 1×.

use crate::render::TextTable;
use crate::runner::{run_all, SimTask};
use crate::scenarios::{homogeneous_config, with_workload};
use dyrs::MigrationPolicy;
use dyrs_workloads::iterative;
use serde::{Deserialize, Serialize};

/// Result for one (application, policy) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterRun {
    /// Application name.
    pub app: String,
    /// Policy name.
    pub config: String,
    /// Iteration-1 duration, seconds.
    pub first_iter_secs: f64,
    /// Mean of iterations 2+, seconds.
    pub later_iter_secs: f64,
}

impl IterRun {
    /// The first-iteration penalty (the paper's 15× / 2.5×).
    pub fn penalty(&self) -> f64 {
        if self.later_iter_secs == 0.0 {
            0.0
        } else {
            self.first_iter_secs / self.later_iter_secs
        }
    }
}

/// Full experiment data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterStudy {
    /// All runs.
    pub runs: Vec<IterRun>,
}

impl IterStudy {
    /// Lookup.
    pub fn get(&self, app: &str, config: &str) -> &IterRun {
        self.runs
            .iter()
            .find(|r| r.app == app && r.config == config)
            .unwrap_or_else(|| panic!("missing {app}/{config}"))
    }
}

/// Run both applications under HDFS and DYRS.
pub fn run(seed: u64) -> IterStudy {
    let mut tasks = Vec::new();
    for app in iterative::apps() {
        for p in [MigrationPolicy::Disabled, MigrationPolicy::Dyrs] {
            let w = iterative::workload(&app, 0);
            let (cfg, jobs) = with_workload(homogeneous_config(p, seed), w);
            tasks.push(SimTask::new(
                format!("{}/{}", app.name, p.name()),
                cfg,
                jobs,
            ));
        }
    }
    let results = run_all(tasks, 0);
    let runs = results
        .into_iter()
        .map(|(label, r)| {
            let (app, config) = label.split_once('/').expect("label format");
            // iteration time = the map phase (the paper's Spark iterations
            // carry no per-iteration job-submission overhead, so comparing
            // end-to-end would dilute the penalty with platform costs)
            let mut iters: Vec<f64> = r
                .jobs
                .iter()
                .map(|j| (j.name.clone(), j.map_phase.as_secs_f64()))
                .collect::<std::collections::BTreeMap<_, _>>()
                .into_values()
                .collect();
            // BTreeMap sorts "iter1" < "iter2" ... (single-digit counts)
            let first = iters.remove(0);
            let later = iters.iter().sum::<f64>() / iters.len().max(1) as f64;
            IterRun {
                app: app.to_string(),
                config: config.to_string(),
                first_iter_secs: first,
                later_iter_secs: later,
            }
        })
        .collect();
    IterStudy { runs }
}

/// Render the comparison.
pub fn render(s: &IterStudy) -> String {
    let mut tt = TextTable::new(vec![
        "App",
        "Config",
        "Iter 1 (s)",
        "Iters 2+ (s)",
        "Penalty",
    ]);
    for r in &s.runs {
        tt.row(vec![
            r.app.clone(),
            r.config.clone(),
            format!("{:.1}", r.first_iter_secs),
            format!("{:.1}", r.later_iter_secs),
            format!("{:.1}x", r.penalty()),
        ]);
    }
    format!(
        "MOTIVATION — iterative analytics first-iteration penalty (paper §I)\n\
         (paper: cold first iterations run 15x (LogReg) / 2.5x (K-Means)\n\
          longer than later ones; DYRS collapses the gap)\n\n{}",
        tt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_first_iteration_is_the_outlier() {
        let s = run(7);
        let lr = s.get("logreg", "HDFS");
        let km = s.get("kmeans", "HDFS");
        assert!(
            lr.penalty() > 4.0,
            "LogReg cold penalty {:.1}x (paper 15x)",
            lr.penalty()
        );
        assert!(
            km.penalty() > 1.3 && km.penalty() < lr.penalty(),
            "K-Means penalty {:.1}x must be mild (paper 2.5x)",
            km.penalty()
        );
    }

    #[test]
    fn dyrs_collapses_the_penalty() {
        let s = run(7);
        for app in ["logreg", "kmeans"] {
            let hdfs = s.get(app, "HDFS").penalty();
            let dyrs = s.get(app, "DYRS").penalty();
            assert!(
                dyrs < hdfs,
                "{app}: DYRS penalty {dyrs:.1}x must beat HDFS {hdfs:.1}x"
            );
            assert!(
                dyrs < 3.0,
                "{app}: DYRS first iteration should be near-normal, got {dyrs:.1}x"
            );
        }
        // the read-dominated app sees the big collapse
        {
            let hdfs = s.get("logreg", "HDFS").penalty();
            let dyrs = s.get("logreg", "DYRS").penalty();
            assert!(
                dyrs < hdfs * 0.6,
                "logreg: collapse too weak ({hdfs:.1}x → {dyrs:.1}x)"
            );
        }
    }

    #[test]
    fn later_iterations_unaffected_by_policy() {
        // DYRS accelerates only the cold read; iterations 2+ are
        // framework-cached and must cost the same under both policies.
        let s = run(7);
        for app in ["logreg", "kmeans"] {
            let h = s.get(app, "HDFS").later_iter_secs;
            let d = s.get(app, "DYRS").later_iter_secs;
            // DYRS also migrates the tiny cache partitions, so allow a
            // small benefit — but nothing like the iteration-1 effect
            assert!(
                (h - d).abs() / h < 0.25,
                "{app}: later iterations {h:.1}s vs {d:.1}s must roughly match"
            );
        }
    }

    #[test]
    fn render_names_both_apps() {
        let out = render(&run(7));
        assert!(out.contains("logreg") && out.contains("kmeans"));
    }
}
