//! Table I — average job duration and speedup across the SWIM workload.
//!
//! Paper numbers: HDFS 31.5 s; HDFS-Inputs-in-RAM 16.9 s (+46%); Ignem
//! 66.4 s (−111%); DYRS 20.9 s (+33%). The shape that must hold: RAM bound
//! > DYRS > 0 > Ignem, with DYRS capturing most of the bound.

use crate::render::{pct, secs, TextTable};
use crate::scenarios::swim_runs;
use dyrs::MigrationPolicy;
use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Configuration name.
    pub config: String,
    /// Mean job duration, seconds.
    pub mean_duration_secs: f64,
    /// Speedup w.r.t. HDFS (1 − d/d_hdfs); `None` for the HDFS row.
    pub speedup_vs_hdfs: Option<f64>,
}

/// Full Table I result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows in paper order (HDFS, RAM, Ignem, DYRS).
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Row lookup by policy name.
    pub fn row(&self, name: &str) -> &Table1Row {
        self.rows
            .iter()
            .find(|r| r.config == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
    }

    /// Speedup of `name` vs HDFS.
    pub fn speedup(&self, name: &str) -> f64 {
        self.row(name).speedup_vs_hdfs.unwrap_or(0.0)
    }
}

/// Run the experiment.
pub fn run(seed: u64, scale: f64) -> Table1 {
    let runs = swim_runs(seed, scale);
    let hdfs_mean = runs
        .iter()
        .find(|(p, _)| *p == MigrationPolicy::Disabled)
        .expect("HDFS run present")
        .1
        .mean_job_duration_secs();
    let rows = runs
        .iter()
        .map(|(p, r)| {
            let mean = r.mean_job_duration_secs();
            Table1Row {
                config: p.name().to_string(),
                mean_duration_secs: mean,
                speedup_vs_hdfs: (*p != MigrationPolicy::Disabled).then(|| 1.0 - mean / hdfs_mean),
            }
        })
        .collect();
    Table1 { rows }
}

/// Render in the paper's layout.
pub fn render(t: &Table1) -> String {
    let mut tt = TextTable::new(vec![
        "Configuration",
        "Mean job duration (s)",
        "Speedup w.r.t HDFS",
    ]);
    for r in &t.rows {
        tt.row(vec![
            r.config.clone(),
            secs(r.mean_duration_secs),
            r.speedup_vs_hdfs.map(pct).unwrap_or_default(),
        ]);
    }
    format!(
        "TABLE I: Average job duration and speedup, SWIM workload\n\
         (paper: HDFS 31.5s; RAM +46%; Ignem -111%; DYRS +33%)\n\n{}",
        tt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_at_reduced_scale() {
        let t = run(7, 0.25);
        assert_eq!(t.rows.len(), 4);
        let ram = t.speedup("HDFS-Inputs-in-RAM");
        let dyrs = t.speedup("DYRS");
        let ignem = t.speedup("Ignem");
        // ordering: RAM bound ≥ DYRS > 0 > Ignem
        assert!(ram > 0.15, "RAM speedup {ram}");
        assert!(dyrs > 0.10, "DYRS speedup {dyrs}");
        assert!(
            dyrs <= ram + 0.03,
            "DYRS {dyrs} cannot beat the bound {ram}"
        );
        assert!(
            ignem < 0.0,
            "Ignem must slow down under heterogeneity: {ignem}"
        );
        // DYRS captures a meaningful share of the bound (paper: 33/46 ≈ 72%)
        assert!(dyrs / ram > 0.45, "DYRS/bound ratio {}", dyrs / ram);
    }

    #[test]
    fn render_contains_all_rows() {
        let t = run(7, 0.1);
        let s = render(&t);
        for name in ["HDFS", "HDFS-Inputs-in-RAM", "Ignem", "DYRS"] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
    }
}
