//! Plain-text rendering of tables and series, plus JSON export.
//!
//! The harness prints the same rows/series the paper's tables and figures
//! report; these helpers keep the formatting uniform across experiments.

use serde::Serialize;
use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<w$}", cells[i], w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            fmt_row(&mut out, r);
        }
        out
    }
}

/// Format a fraction as a signed percentage ("+33%", "-111%").
pub fn pct(x: f64) -> String {
    format!("{}{:.0}%", if x >= 0.0 { "+" } else { "" }, x * 100.0)
}

/// Format seconds with one decimal.
pub fn secs(x: f64) -> String {
    format!("{x:.1}")
}

/// Format bytes as a human-readable size.
pub fn bytes(b: u64) -> String {
    const GB: f64 = (1u64 << 30) as f64;
    const MB: f64 = (1u64 << 20) as f64;
    let b = b as f64;
    if b >= GB {
        format!("{:.1}GB", b / GB)
    } else if b >= MB {
        format!("{:.0}MB", b / MB)
    } else {
        format!("{:.0}B", b)
    }
}

/// Render an `(x, y)` series as an ASCII sparkline block for the figure
/// printouts: one row of `height` levels per `bucket` of x.
pub fn ascii_series(points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    let (xmin, xmax) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(x, _)| {
            (lo.min(x), hi.max(x))
        });
    let ymax = points.iter().map(|&(_, y)| y).fold(0.0f64, f64::max);
    let span = (xmax - xmin).max(1e-12);
    // Bucket means.
    let mut sums = vec![0.0f64; width];
    let mut counts = vec![0usize; width];
    for &(x, y) in points {
        let i = (((x - xmin) / span) * (width as f64 - 1.0)).round() as usize;
        sums[i] += y;
        counts[i] += 1;
    }
    let levels: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();
    let mut out = String::new();
    for h in (1..=height).rev() {
        let threshold = ymax * h as f64 / height as f64;
        for &v in &levels {
            let filled = v >= threshold - 1e-12 && v > 0.0;
            out.push(if filled { '█' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{}", "-".repeat(width));
    let _ = writeln!(out, "ymax={ymax:.2}  x=[{xmin:.1}..{xmax:.1}]");
    out
}

/// Serialize any result to pretty JSON for machine consumption.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("results are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.33), "+33%");
        assert_eq!(pct(-1.11), "-111%");
        assert_eq!(secs(31.52), "31.5");
        assert_eq!(bytes(256 << 20), "256MB");
        assert_eq!(bytes(24 << 30), "24.0GB");
        assert_eq!(bytes(100), "100B");
    }

    #[test]
    fn ascii_series_shape() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i % 10) as f64)).collect();
        let s = ascii_series(&pts, 40, 5);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 7); // 5 levels + rule + label
        assert!(lines[6].contains("ymax"));
        assert!(ascii_series(&[], 10, 3).is_empty());
    }

    #[test]
    #[ignore = "needs the real serde_json: the offline stand-in renders null (vendor/README.md)"]
    fn json_roundtrip() {
        #[derive(Serialize)]
        struct S {
            x: u32,
        }
        assert!(to_json(&S { x: 4 }).contains("\"x\": 4"));
    }
}
