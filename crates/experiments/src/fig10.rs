//! Figure 10 — the last 30 block reads of a Sort job: DYRS vs naive
//! load balancing.
//!
//! Paper claim: a naive scheme that hands migrations to any slave with
//! free queue slots lets "some of the last few migrations end up on a
//! slow node", producing stragglers; DYRS only assigns a block to a node
//! if it is expected to finish earliest there, so the tail of the job
//! stays off the slow node (§V-F3).

use crate::runner::{run_all, SimTask};
use crate::scenarios::{hetero_config, with_workload, SLOW_NODE};
use dyrs::MigrationPolicy;
use dyrs_workloads::sort;
use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// One read in the tail timeline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TailRead {
    /// Seconds before the job's last read (≤ 0).
    pub t_rel_secs: f64,
    /// Node that served it.
    pub source: u32,
    /// Whether it came from memory.
    pub from_memory: bool,
}

/// Tail timeline for one scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TailTimeline {
    /// Scheme name.
    pub config: String,
    /// The last 30 reads, oldest first.
    pub tail: Vec<TailRead>,
    /// Span of the last 30 reads, seconds.
    pub tail_span_secs: f64,
    /// Job runtime, seconds.
    pub job_secs: f64,
}

impl TailTimeline {
    /// Tail reads served by the slow node's *disk* (the straggler signature).
    pub fn slow_disk_tail_reads(&self) -> usize {
        self.tail
            .iter()
            .filter(|r| r.source == SLOW_NODE.0 && !r.from_memory)
            .count()
    }

    /// Tail reads not served from memory.
    pub fn cold_tail_reads(&self) -> usize {
        self.tail.iter().filter(|r| !r.from_memory).count()
    }
}

/// Figure 10 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10 {
    /// Naive baseline timeline.
    pub naive: TailTimeline,
    /// DYRS timeline.
    pub dyrs: TailTimeline,
}

/// Run a 10 GB Sort under the naive scheme and DYRS on the handicapped
/// cluster, and extract the last-30-reads timelines.
pub fn run(seed: u64, input_gb: u64) -> Fig10 {
    let mk = |policy: MigrationPolicy| {
        let cfg = hetero_config(policy, seed);
        // generous lead-time so migration coverage is high and the tail
        // behaviour (not lead-time shortage) dominates, as in the paper
        let w = sort::sort_workload(input_gb << 30, SimDuration::from_secs(45), 0);
        let (cfg, jobs) = with_workload(cfg, w);
        SimTask::new(policy.name(), cfg, jobs)
    };
    let results = run_all(
        vec![mk(MigrationPolicy::Naive), mk(MigrationPolicy::Dyrs)],
        0,
    );
    let timelines: Vec<TailTimeline> = results
        .into_iter()
        .map(|(config, r)| {
            let mut reads = r.reads.clone();
            reads.sort_by_key(|rd| rd.at);
            let last = reads.last().map(|rd| rd.at.as_secs_f64()).unwrap_or(0.0);
            let tail: Vec<TailRead> = reads
                .iter()
                .rev()
                .take(30)
                .map(|rd| TailRead {
                    t_rel_secs: rd.at.as_secs_f64() - last,
                    source: rd.source.0,
                    from_memory: rd.medium.is_memory(),
                })
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            let span = tail.first().map(|r| -r.t_rel_secs).unwrap_or(0.0);
            TailTimeline {
                config,
                tail,
                tail_span_secs: span,
                job_secs: r
                    .jobs
                    .first()
                    .map(|j| j.duration.as_secs_f64())
                    .unwrap_or(0.0),
            }
        })
        .collect();
    let mut it = timelines.into_iter();
    Fig10 {
        naive: it.next().expect("naive run"),
        dyrs: it.next().expect("dyrs run"),
    }
}

/// Render both timelines.
pub fn render(f: &Fig10) -> String {
    let mut out = String::from(
        "FIG 10: Last 30 block reads of a Sort job (time relative to last read)\n\
         (paper: naive balancing strands tail migrations on the slow node;\n\
          DYRS hands the tail to fast nodes)\n\n",
    );
    for t in [&f.naive, &f.dyrs] {
        out.push_str(&format!(
            "--- {} (job {:.0}s, tail span {:.1}s, slow-disk tail reads {}) ---\n",
            t.config,
            t.job_secs,
            t.tail_span_secs,
            t.slow_disk_tail_reads()
        ));
        for r in &t.tail {
            out.push_str(&format!(
                "  {:>7.2}s  node{}  {}\n",
                r.t_rel_secs,
                r.source,
                if r.from_memory { "mem " } else { "DISK" }
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyrs_tail_avoids_slow_node_stragglers() {
        let f = run(7, 10);
        assert!(
            f.dyrs.slow_disk_tail_reads() <= f.naive.slow_disk_tail_reads(),
            "DYRS tail slow-disk reads {} must not exceed naive {}",
            f.dyrs.slow_disk_tail_reads(),
            f.naive.slow_disk_tail_reads()
        );
        assert!(
            f.dyrs.cold_tail_reads() <= f.naive.cold_tail_reads(),
            "DYRS cold tail {} vs naive {}",
            f.dyrs.cold_tail_reads(),
            f.naive.cold_tail_reads()
        );
    }

    #[test]
    fn dyrs_job_at_least_as_fast() {
        let f = run(7, 10);
        assert!(
            f.dyrs.job_secs <= f.naive.job_secs * 1.02,
            "DYRS {:.1}s vs naive {:.1}s",
            f.dyrs.job_secs,
            f.naive.job_secs
        );
    }

    #[test]
    fn timelines_have_30_reads_ending_at_zero() {
        let f = run(7, 10);
        for t in [&f.naive, &f.dyrs] {
            assert_eq!(t.tail.len(), 30);
            let last = t.tail.last().expect("non-empty");
            assert!(last.t_rel_secs.abs() < 1e-9);
            assert!(t
                .tail
                .windows(2)
                .all(|w| w[0].t_rel_secs <= w[1].t_rel_secs));
        }
    }

    #[test]
    fn render_shows_both_schemes() {
        let s = render(&run(7, 5));
        assert!(s.contains("Naive"));
        assert!(s.contains("DYRS"));
    }
}
