//! Figure 9 — migration-time estimates under dynamic interference.
//!
//! Five interference patterns over a Sort job (paper §V-F2):
//!
//! * (a) node #1 persistently interfered,
//! * (b) node #1 alternating every 10 s,
//! * (c) node #1 alternating every 20 s,
//! * (d) nodes #1 and #2 alternating every 10 s, anti-phased,
//! * (e) nodes #1 and #2 alternating every 20 s, anti-phased.
//!
//! Claim: the slave's per-block migration-time estimate tracks the
//! interference closely — high while interference is on, recovering when
//! it stops — thanks to the EWMA plus the in-progress refresh (§IV-A).

use crate::render::ascii_series;
use crate::runner::{run_all, SimTask};
use crate::scenarios::{homogeneous_config, with_workload, DD_STREAMS};
use dyrs::MigrationPolicy;
use dyrs_cluster::{InterferenceSchedule, NodeId};
use dyrs_workloads::sort;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};

/// The five paper patterns, by label.
pub fn patterns() -> Vec<(&'static str, Vec<InterferenceSchedule>)> {
    let n1 = NodeId(0);
    let n2 = NodeId(1);
    let s10 = SimDuration::from_secs(10);
    let s20 = SimDuration::from_secs(20);
    vec![
        (
            "9a-persistent-n1",
            vec![InterferenceSchedule::persistent(n1, DD_STREAMS)],
        ),
        (
            "9b-alt10-n1",
            vec![InterferenceSchedule::alternating(n1, DD_STREAMS, s10, true)],
        ),
        (
            "9c-alt20-n1",
            vec![InterferenceSchedule::alternating(n1, DD_STREAMS, s20, true)],
        ),
        (
            "9d-alt10-n1n2",
            vec![
                InterferenceSchedule::alternating(n1, DD_STREAMS, s10, true),
                InterferenceSchedule::alternating(n2, DD_STREAMS, s10, false),
            ],
        ),
        (
            "9e-alt20-n1n2",
            vec![
                InterferenceSchedule::alternating(n1, DD_STREAMS, s20, true),
                InterferenceSchedule::alternating(n2, DD_STREAMS, s20, false),
            ],
        ),
    ]
}

/// Estimate series for one pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternSeries {
    /// Pattern label.
    pub label: String,
    /// Node #1 (node0) estimate samples `(secs, estimate_secs)`.
    pub node1: Vec<(f64, f64)>,
    /// Node #2 (node1) estimate samples.
    pub node2: Vec<(f64, f64)>,
    /// Sort job runtime under this pattern (feeds Table II).
    pub job_secs: f64,
}

/// Figure 9 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    /// One series pack per pattern, in paper order.
    pub series: Vec<PatternSeries>,
}

impl Fig9 {
    /// Lookup by label prefix ("9a".."9e").
    pub fn pattern(&self, prefix: &str) -> &PatternSeries {
        self.series
            .iter()
            .find(|s| s.label.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing pattern {prefix}"))
    }
}

/// Mean of series values within a window.
pub fn window_mean(series: &[(f64, f64)], lo: f64, hi: f64) -> f64 {
    let pts: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t >= lo && t < hi)
        .map(|&(_, v)| v)
        .collect();
    if pts.is_empty() {
        0.0
    } else {
        pts.iter().sum::<f64>() / pts.len() as f64
    }
}

/// Run a Sort job under DYRS for each pattern and record estimates.
pub fn run(seed: u64, input_gb: u64) -> Fig9 {
    let tasks: Vec<SimTask> = patterns()
        .into_iter()
        .map(|(label, interference)| {
            let mut cfg = homogeneous_config(MigrationPolicy::Dyrs, seed);
            cfg.interference = interference;
            let w = sort::sort_workload(input_gb << 30, SimDuration::from_secs(20), 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new(label, cfg, jobs)
        })
        .collect();
    let results = run_all(tasks, 0);
    let series = results
        .into_iter()
        .map(|(label, r)| {
            let pick = |node: usize| -> Vec<(f64, f64)> {
                r.nodes[node]
                    .estimate_series
                    .points()
                    .iter()
                    .map(|&(t, v)| (t.saturating_since(SimTime::ZERO).as_secs_f64(), v))
                    .collect()
            };
            PatternSeries {
                label,
                node1: pick(0),
                node2: pick(1),
                job_secs: r
                    .jobs
                    .first()
                    .map(|j| j.duration.as_secs_f64())
                    .unwrap_or(0.0),
            }
        })
        .collect();
    Fig9 { series }
}

/// Render one ASCII panel per pattern.
pub fn render(f: &Fig9) -> String {
    let mut out = String::from(
        "FIG 9: Estimated per-block migration time under interference\n\
         (paper: the estimate tracks each pattern; anti-phased nodes mirror)\n\n",
    );
    for s in &f.series {
        out.push_str(&format!(
            "--- {} (sort ran {:.0}s) ---\n",
            s.label, s.job_secs
        ));
        out.push_str("node #1 estimate (s):\n");
        out.push_str(&ascii_series(&s.node1, 72, 5));
        out.push_str("node #2 estimate (s):\n");
        out.push_str(&ascii_series(&s.node2, 72, 5));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig9 {
        run(7, 10)
    }

    #[test]
    fn persistent_keeps_node1_estimate_high() {
        let f = fig();
        let s = f.pattern("9a");
        let n1 = window_mean(&s.node1, 5.0, 60.0);
        let n2 = window_mean(&s.node2, 5.0, 60.0);
        assert!(
            n1 > n2 * 3.0,
            "persistent interference: node1 est {n1:.1}s vs node2 {n2:.1}s"
        );
    }

    #[test]
    fn alternating_estimate_oscillates() {
        let f = fig();
        let s = f.pattern("9c"); // 20s period: on [0,20), off [20,40)
        let on = window_mean(&s.node1, 8.0, 20.0);
        let off = window_mean(&s.node1, 28.0, 40.0);
        assert!(
            on > off * 1.5,
            "20s alternation: on-window {on:.1}s vs off-window {off:.1}s"
        );
    }

    #[test]
    fn anti_phased_nodes_mirror() {
        let f = fig();
        let s = f.pattern("9e"); // n1 on [0,20), n2 on [20,40)
        let n1_early = window_mean(&s.node1, 8.0, 20.0);
        let n2_early = window_mean(&s.node2, 8.0, 20.0);
        let n1_late = window_mean(&s.node1, 28.0, 40.0);
        let n2_late = window_mean(&s.node2, 28.0, 40.0);
        assert!(
            n1_early > n2_early,
            "early: n1 {n1_early:.1} vs n2 {n2_early:.1}"
        );
        assert!(
            n2_late > n1_late,
            "late: n2 {n2_late:.1} vs n1 {n1_late:.1}"
        );
    }

    #[test]
    fn estimates_recover_after_interference_stops() {
        let f = fig();
        let s = f.pattern("9b"); // 10s period
        let on = window_mean(&s.node1, 4.0, 10.0);
        let recovered = window_mean(&s.node1, 16.0, 20.0);
        assert!(
            recovered < on,
            "estimate must fall once interference stops: on {on:.1}, after {recovered:.1}"
        );
    }

    #[test]
    fn render_shows_all_patterns() {
        let s = render(&fig());
        for p in ["9a", "9b", "9c", "9d", "9e"] {
            assert!(s.contains(p), "missing {p}");
        }
    }
}
