//! `scenario` — run a user-authored simulation scenario from a JSON file.
//!
//! ```text
//! scenario path/to/scenario.json [--summary|--jobs|--nodes|--json]
//!          [--trace-out <dir>]
//! ```
//!
//! `--trace-out <dir>` additionally exports the run's observability data
//! (spans.jsonl, metrics.jsonl, provenance.jsonl, and a Perfetto-loadable
//! trace.json); see `docs/OBSERVABILITY.md`.
//!
//! A scenario file contains a full `SimConfig` plus the workload:
//!
//! ```json
//! {
//!   "config": { ... dyrs_sim::SimConfig ... },
//!   "jobs":   [ ... dyrs_engine::JobSpec ... ]
//! }
//! ```
//!
//! Every knob in the reproduction is reachable this way — policies,
//! interference schedules, failure injections, hardware specs — without
//! writing Rust. See `examples/scenarios/` for ready-made files.

use dyrs_engine::JobSpec;
use dyrs_sim::{SimConfig, SimResult, Simulation};
use serde::Deserialize;

#[derive(Deserialize)]
struct Scenario {
    config: SimConfig,
    jobs: Vec<JobSpec>,
}

fn print_summary(r: &SimResult) {
    println!("jobs completed : {}", r.jobs.len());
    println!("jobs failed    : {}", r.failed_jobs.len());
    println!("sim end        : {:.1}s", r.end_time.as_secs_f64());
    println!("mean job       : {:.1}s", r.mean_job_duration_secs());
    println!("mean map task  : {:.2}s", r.mean_map_task_secs());
    println!("memory reads   : {:.0}%", r.memory_read_fraction() * 100.0);
    println!(
        "migrations     : {} completed, {} bound, {} missed reads",
        r.master.completed, r.master.bound, r.master.missed_reads
    );
    println!("speculations   : {}", r.speculations);
}

fn print_jobs(r: &SimResult) {
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>5}",
        "job", "input", "lead(s)", "map(s)", "total(s)", "mem%"
    );
    for j in &r.jobs {
        println!(
            "{:<20} {:>7}MB {:>9.1} {:>9.1} {:>9.1} {:>4.0}%",
            j.name,
            j.input_bytes >> 20,
            j.lead_time.as_secs_f64(),
            j.map_phase.as_secs_f64(),
            j.duration.as_secs_f64(),
            j.memory_read_fraction * 100.0
        );
    }
}

fn print_nodes(r: &SimResult) {
    println!(
        "{:<7} {:>7} {:>7} {:>11} {:>11} {:>10} {:>9}",
        "node", "dreads", "mreads", "migrations", "peak-buf", "disk-busy", "util"
    );
    for n in &r.nodes {
        let util = n
            .utilization_series
            .time_weighted_mean(simkit::SimTime::ZERO, r.end_time, 0.0);
        println!(
            "{:<7} {:>7} {:>7} {:>11} {:>9}MB {:>9.1}s {:>8.0}%",
            n.node.to_string(),
            n.disk_reads,
            n.memory_reads,
            n.slave.completed,
            n.peak_buffer_bytes >> 20,
            n.disk_busy.as_secs_f64(),
            util * 100.0
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Extract `--trace-out <dir>` before mode detection (it takes a value).
    let trace_out: Option<std::path::PathBuf> =
        args.iter().position(|a| a == "--trace-out").map(|i| {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--trace-out needs a directory");
                std::process::exit(2);
            }
            args.remove(i).into()
        });
    let mode = args
        .iter()
        .position(|a| a.starts_with("--"))
        .map(|i| args.remove(i));
    let Some(path) = args.first() else {
        eprintln!(
            "usage: scenario <file.json> [--summary|--jobs|--nodes|--json] [--trace-out <dir>]"
        );
        std::process::exit(2);
    };
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let scenario: Scenario =
        serde_json::from_str(&raw).unwrap_or_else(|e| panic!("bad scenario {path}: {e}"));
    let result = Simulation::new(scenario.config, scenario.jobs).run();
    if let Some(dir) = &trace_out {
        result
            .obs
            .write_to_dir(dir)
            .unwrap_or_else(|e| panic!("cannot write trace to {}: {e}", dir.display()));
        eprintln!("trace written to {}", dir.display());
    }
    match mode.as_deref() {
        None | Some("--summary") => print_summary(&result),
        Some("--jobs") => print_jobs(&result),
        Some("--nodes") => print_nodes(&result),
        Some("--json") => {
            println!(
                "{}",
                serde_json::to_string_pretty(&result).expect("result serializes")
            )
        }
        Some(other) => {
            eprintln!("unknown mode {other}");
            std::process::exit(2);
        }
    }
}
