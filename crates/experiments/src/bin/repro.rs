//! `repro` — regenerate every table and figure of the DYRS paper.
//!
//! ```text
//! repro [--scale X] [--seed N] [--json DIR] [--report FILE] [targets...]
//!
//! targets: fig1 fig2 fig3 fig4 table1 fig5 fig6 fig7 fig8 fig9 table2
//!          fig10 fig11 policies ablations iterative replay sensitivity
//!          | all (default)
//! --scale X     workload scale factor (default 0.5; 1.0 = paper scale)
//! --seed N      RNG seed (default pinned)
//! --json DIR    also write machine-readable results to DIR/<target>.json
//! --report FILE write a one-page paper-vs-measured markdown report
//! --check       run every comparison; exit 1 if any shape check fails
//! ```

use dyrs_experiments::{
    ablations, fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11,
    iterative, policies, render, replay, report, sensitivity, table1, table2, tiers, DEFAULT_SEED,
};
use std::collections::BTreeSet;

struct Opts {
    scale: f64,
    seed: u64,
    json_dir: Option<String>,
    report: Option<String>,
    check: bool,
    targets: BTreeSet<String>,
}

const ALL: [&str; 19] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table2",
    "fig10",
    "fig11",
    "policies",
    "ablations",
    "iterative",
    "replay",
    "sensitivity",
    "tiers",
];

fn parse_args() -> Opts {
    let mut opts = Opts {
        scale: 0.5,
        seed: DEFAULT_SEED,
        json_dir: None,
        report: None,
        check: false,
        targets: BTreeSet::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number");
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--json" => {
                opts.json_dir = Some(args.next().expect("--json needs a directory"));
            }
            "--report" => {
                opts.report = Some(args.next().expect("--report needs a file path"));
            }
            "--check" => {
                opts.check = true;
            }
            "all" => {
                opts.targets.extend(ALL.iter().map(|s| s.to_string()));
            }
            t if ALL.contains(&t) => {
                opts.targets.insert(t.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("targets: {} | all", ALL.join(" "));
                std::process::exit(2);
            }
        }
    }
    if opts.targets.is_empty() && opts.report.is_none() && !opts.check {
        opts.targets.extend(ALL.iter().map(|s| s.to_string()));
    }
    opts
}

fn emit(opts: &Opts, target: &str, text: String, json: String) {
    println!("{text}");
    println!("{}", "=".repeat(72));
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        std::fs::write(format!("{dir}/{target}.json"), json).expect("write json");
    }
}

fn main() {
    let opts = parse_args();
    if opts.check {
        let rows = report::rows(opts.seed, opts.scale);
        let failed: Vec<_> = rows.iter().filter(|r| !r.ok).collect();
        for r in &rows {
            println!(
                "{} {} / {}: paper {}, measured {}",
                if r.ok { "PASS" } else { "FAIL" },
                r.artifact,
                r.metric,
                r.paper,
                r.measured
            );
        }
        println!(
            "\n{}/{} shape checks passed",
            rows.len() - failed.len(),
            rows.len()
        );
        if !failed.is_empty() {
            std::process::exit(1);
        }
        if opts.targets.is_empty() && opts.report.is_none() {
            return;
        }
    }
    if let Some(path) = &opts.report {
        let md = report::generate(opts.seed, opts.scale);
        std::fs::write(path, &md).expect("write report");
        println!("wrote paper-vs-measured report to {path}");
        if opts.targets.is_empty() {
            return;
        }
    }
    println!(
        "DYRS reproduction — scale {}, seed {}\n{}",
        opts.scale,
        opts.seed,
        "=".repeat(72)
    );
    for t in opts.targets.clone() {
        let (text, json) = match t.as_str() {
            "fig1" => {
                let f = fig01::run(opts.seed);
                (fig01::render(&f), render::to_json(&f))
            }
            "fig2" => {
                let f = fig02::run(opts.seed, 100_000);
                (fig02::render(&f), render::to_json(&f))
            }
            "fig3" => {
                let f = fig03::run(opts.seed, 40);
                (fig03::render(&f), render::to_json(&f))
            }
            "fig4" => {
                let f = fig04::run(opts.seed, opts.scale);
                (fig04::render(&f), render::to_json(&f))
            }
            "table1" => {
                let f = table1::run(opts.seed, opts.scale);
                (table1::render(&f), render::to_json(&f))
            }
            "fig5" => {
                let f = fig05::run(opts.seed, opts.scale);
                (fig05::render(&f), render::to_json(&f))
            }
            "fig6" => {
                let f = fig06::run(opts.seed, opts.scale);
                (fig06::render(&f), render::to_json(&f))
            }
            "fig7" => {
                let f = fig07::run(opts.seed, opts.scale);
                (fig07::render(&f), render::to_json(&f))
            }
            "fig8" => {
                let f = fig08::run(opts.seed, (28.0 * opts.scale).max(7.0) as u64);
                (fig08::render(&f), render::to_json(&f))
            }
            "fig9" => {
                let f = fig09::run(opts.seed, (20.0 * opts.scale).max(5.0) as u64);
                (fig09::render(&f), render::to_json(&f))
            }
            "table2" => {
                let f = table2::run(opts.seed, (20.0 * opts.scale).max(5.0) as u64);
                (table2::render(&f), render::to_json(&f))
            }
            "fig10" => {
                let f = fig10::run(opts.seed, (20.0 * opts.scale).max(5.0) as u64);
                (fig10::render(&f), render::to_json(&f))
            }
            "fig11" => {
                let f = fig11::run(opts.seed);
                (fig11::render(&f), render::to_json(&f))
            }
            "iterative" => {
                let f = iterative::run(opts.seed);
                (iterative::render(&f), render::to_json(&f))
            }
            "tiers" => {
                let f = tiers::run(opts.seed, opts.scale);
                (tiers::render(&f), render::to_json(&f))
            }
            "sensitivity" => {
                let f = sensitivity::run(opts.seed, opts.scale);
                (sensitivity::render(&f), render::to_json(&f))
            }
            "replay" => {
                let f = replay::run(opts.seed, opts.scale);
                (replay::render(&f), render::to_json(&f))
            }
            "policies" => {
                let f = policies::run(opts.seed, opts.scale);
                (policies::render(&f), render::to_json(&f))
            }
            "ablations" => {
                let gb = (20.0 * opts.scale).max(5.0) as u64;
                let parts = [
                    ablations::binding(opts.seed, gb),
                    ablations::refresh(opts.seed, gb),
                    ablations::queue_depth(opts.seed, gb),
                    ablations::eviction(opts.seed, gb),
                    ablations::serialization(opts.seed, gb),
                    ablations::memory_limit(opts.seed, opts.scale),
                ];
                let text = parts
                    .iter()
                    .map(ablations::render)
                    .collect::<Vec<_>>()
                    .join("\n");
                (text, render::to_json(&parts.to_vec()))
            }
            _ => unreachable!("validated in parse_args"),
        };
        emit(&opts, &t, text, json);
    }
}
