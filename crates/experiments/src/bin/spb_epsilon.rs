//! `spb_epsilon` — the approximate dirty-marking study (EXPERIMENTS.md).
//!
//! The scheduler's `spb_epsilon` gate drops sub-threshold estimate moves
//! on the heartbeat path: a node whose spb changed by ≤ ε (relative)
//! keeps its old snapshot value and is not marked dirty. That converts
//! estimator jitter from per-tick fleet-wide rescoring into no work at
//! all — at the price of scoring against slightly stale estimates.
//!
//! This binary sweeps ε over the 1M-pending × 1k-node state and records
//! both sides of that trade, per tick:
//!
//! * **skipped work** — entries rescored by the retarget pass, vs the
//!   exact (ε = 0) run;
//! * **decision drift** — fraction of a fixed 10k-block sample whose
//!   target differs from the exact run's target at the same tick.
//!
//! The heartbeat model separates noise from signal the way a smoothed
//! estimator does: every node reports through ±0.5% residual jitter
//! (what an EWMA leaves of per-transfer noise), while each tick a
//! rotating set of 32 nodes takes a real ±3–8% cost move (load shifting
//! around the fleet). Pending blocks span 64–512 MB so finish-time
//! scores are not artificially tied by uniform sizing.
//!
//! The sweep's finding (see EXPERIMENTS.md) is that ε is a gate, not a
//! dial. Below the jitter band the whole fleet dirties every tick; in
//! between, the real movers alone flip enough near-tied winners that
//! the cascade ceiling trips and the pass falls back to a full
//! reference walk anyway — work stays at 100% while decision drift
//! saturates. Only when ε clears the movers' scale does work collapse,
//! at maximal drift. The per-run `ceiling_frac` column substantiates
//! this: every full-work tick is a ceiling-tripped pass, not a
//! genuinely all-dirty one. All runs share one seed: identical
//! workloads, identical heartbeat streams, deterministic output.
//!
//! ```text
//! spb_epsilon [--out results/spb_epsilon.json] [--pending N] [--nodes N]
//! ```

use dyrs::master::{BlockRequest, Master};
use dyrs::types::EvictionMode;
use dyrs::{MigrationPolicy, SchedEngine, SchedulerConfig};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use simkit::Rng;

const MB: u64 = 1 << 20;
const BLOCK: u64 = 256 * MB;
const TICKS: usize = 12;
const EPSILONS: &[f64] = &[0.0, 1e-4, 1e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1];

struct EpsRun {
    epsilon: f64,
    /// Entries rescored per tick (mean over the measured ticks).
    rescored_mean: f64,
    /// Share of the exact run's rescoring this ε still performs.
    work_vs_exact: f64,
    /// Fraction of ticks whose pass tripped the cascade ceiling (and so
    /// finished with the full reference walk).
    ceiling_frac: f64,
    /// Mean per-tick fraction of sampled blocks whose target differs
    /// from the exact run.
    drift_mean: f64,
    /// Worst tick's differing fraction.
    drift_max: f64,
    /// Mean per-tick fraction of sampled blocks whose target changed
    /// from the *previous tick of the same run* — self-churn. The exact
    /// run churns by chasing estimator noise; a frozen run does not, so
    /// drift-vs-exact alone overstates ε's error.
    churn_mean: f64,
}

/// Per-tick sampled targets for one run: `targets[tick][sample]`.
type SampledTargets = Vec<Vec<Option<NodeId>>>;

fn run(epsilon: f64, pending: u64, nodes: u32) -> (f64, f64, SampledTargets) {
    let mut m = Master::new(
        MigrationPolicy::Dyrs,
        nodes as usize,
        140.0 * MB as f64,
        Rng::new(1),
    );
    m.set_sched_config(SchedulerConfig {
        engine: SchedEngine::Sharded,
        shards: 16,
        cascade_ceiling: 0.25,
        spb_epsilon: epsilon,
    });
    // Identical loader across ε runs: same Rng stream, same placement.
    let mut rng = Rng::new(2);
    let mut true_spb: Vec<f64> = (0..nodes)
        .map(|_| rng.range_f64(0.8, 4.0) / (140.0 * MB as f64))
        .collect();
    for (n, &s) in true_spb.iter().enumerate() {
        m.on_heartbeat(NodeId(n as u32), s, BLOCK);
    }
    let reqs: Vec<BlockRequest> = (0..pending)
        .map(|i| {
            let base = rng.below(nodes as u64) as u32;
            BlockRequest {
                block: BlockId(i),
                // Mixed block sizes (64–512 MB): realistic, and it keeps
                // finish-time scores from being artificially near-tied.
                bytes: (64 << (i % 4)) * MB,
                replicas: vec![
                    NodeId(base),
                    NodeId((base + 1) % nodes),
                    NodeId((base + 7) % nodes),
                ],
            }
        })
        .collect();
    m.request_migration(JobId(1), reqs, EvictionMode::Implicit);
    m.retarget(); // warm: score everything once
    let sample: Vec<BlockId> = (0..pending).step_by(101).map(BlockId).collect();
    let mut rescored_total = 0u64;
    let mut ceiling_ticks = 0u64;
    let mut targets: SampledTargets = Vec::with_capacity(TICKS);
    let mut walk = Rng::new(3);
    for tick in 0..TICKS {
        // A rotating 32-node set takes a real cost move this tick.
        for d in 0..32u32 {
            let n = ((d * (nodes / 32) + tick as u32) % nodes) as usize;
            let mv = walk.range_f64(0.03, 0.08);
            true_spb[n] *= if walk.below(2) == 0 {
                1.0 + mv
            } else {
                1.0 / (1.0 + mv)
            };
        }
        for (n, &spb) in true_spb.iter().enumerate() {
            // Residual estimator jitter on every report — the stream ε
            // is meant to absorb (the real movers above are what it must
            // not).
            let measured = spb * (1.0 + walk.range_f64(-0.005, 0.005));
            m.on_heartbeat(NodeId(n as u32), measured, BLOCK);
        }
        let st = m.retarget();
        rescored_total += st.rescored;
        ceiling_ticks += u64::from(st.ceiling_hits > 0);
        targets.push(sample.iter().map(|&b| m.target_of(b)).collect());
    }
    (
        rescored_total as f64 / TICKS as f64,
        ceiling_ticks as f64 / TICKS as f64,
        targets,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").unwrap_or_else(|| "results/spb_epsilon.json".into());
    let pending: u64 = flag("--pending").map_or(1_000_000, |v| v.parse().expect("--pending"));
    let nodes: u32 = flag("--nodes").map_or(1_000, |v| v.parse().expect("--nodes"));

    let (exact_mean, exact_ceiling, exact_targets) = run(0.0, pending, nodes);
    let mut rows: Vec<EpsRun> = Vec::new();
    for &eps in EPSILONS {
        let (rescored_mean, ceiling_frac, targets) = if eps == 0.0 {
            (exact_mean, exact_ceiling, exact_targets.clone())
        } else {
            run(eps, pending, nodes)
        };
        let mut drift_mean = 0.0;
        let mut drift_max: f64 = 0.0;
        let mut churn_mean = 0.0;
        for (tick, row) in targets.iter().enumerate() {
            let differing = row
                .iter()
                .zip(&exact_targets[tick])
                .filter(|(a, b)| a != b)
                .count();
            let frac = differing as f64 / row.len() as f64;
            drift_mean += frac / TICKS as f64;
            drift_max = drift_max.max(frac);
            if tick > 0 {
                let flipped = row
                    .iter()
                    .zip(&targets[tick - 1])
                    .filter(|(a, b)| a != b)
                    .count();
                churn_mean += flipped as f64 / row.len() as f64 / (TICKS - 1) as f64;
            }
        }
        let row = EpsRun {
            epsilon: eps,
            rescored_mean,
            work_vs_exact: rescored_mean / exact_mean,
            ceiling_frac,
            drift_mean,
            drift_max,
            churn_mean,
        };
        println!(
            "eps {:>7.0e}: rescored/tick {:>12.0} ({:>5.1}% of exact)  \
             ceiling {:>5.1}%  drift mean {:.3}% max {:.3}%  churn {:.3}%",
            row.epsilon,
            row.rescored_mean,
            100.0 * row.work_vs_exact,
            100.0 * row.ceiling_frac,
            100.0 * row.drift_mean,
            100.0 * row.drift_max,
            100.0 * row.churn_mean,
        );
        rows.push(row);
    }

    // Hand-rolled JSON (the vendored serde stack is a no-op stub).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"pending\": {pending},\n  \"nodes\": {nodes},\n  \"ticks\": {TICKS},\n"
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"epsilon\": {}, \"rescored_per_tick\": {:.1}, \
             \"work_vs_exact\": {:.6}, \"ceiling_frac\": {:.6}, \
             \"drift_mean\": {:.6}, \"drift_max\": {:.6}, \"churn_mean\": {:.6}}}{}\n",
            r.epsilon,
            r.rescored_mean,
            r.work_vs_exact,
            r.ceiling_frac,
            r.drift_mean,
            r.drift_max,
            r.churn_mean,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
