//! Generates the example scenario files in examples/scenarios/ (developer
//! tool; run after changing config schemas to keep the JSON in sync).
use dyrs::MigrationPolicy;
use dyrs_cluster::{InterferenceSchedule, NodeId};
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::{FailureEvent, FileSpec, SimConfig};
use simkit::SimTime;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/scenarios".into());
    std::fs::create_dir_all(&out).expect("mkdir");

    // 1. heterogeneous sort under DYRS
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 42);
    cfg.files.push(FileSpec::new("sort/input", 10 << 30));
    cfg.interference
        .push(InterferenceSchedule::persistent(NodeId(0), 2));
    let mut job = JobSpec::map_only(
        JobId(0),
        "sort-10g",
        SimTime::ZERO,
        vec!["sort/input".into()],
    );
    job.shuffle_bytes = 10 << 30;
    job.reduce_tasks = 6;
    write(&out, "hetero_sort.json", &cfg, &[job]);

    // 2. failure drill
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 7);
    cfg.files.push(FileSpec::new("data/a", 5 << 30));
    cfg.files.push(FileSpec::new("data/b", 5 << 30));
    cfg.failures.push(FailureEvent::MasterRestart {
        at: SimTime::from_secs(6),
    });
    cfg.failures.push(FailureEvent::NodeDown {
        at: SimTime::from_secs(15),
        node: NodeId(3),
    });
    let jobs = vec![
        JobSpec::map_only(JobId(0), "job-a", SimTime::ZERO, vec!["data/a".into()]),
        JobSpec::map_only(
            JobId(1),
            "job-b",
            SimTime::from_secs(4),
            vec!["data/b".into()],
        ),
    ];
    write(&out, "failures.json", &cfg, &jobs);
}

fn write(dir: &str, name: &str, cfg: &SimConfig, jobs: &[JobSpec]) {
    let v = serde_json::json!({ "config": cfg, "jobs": jobs });
    std::fs::write(
        format!("{dir}/{name}"),
        serde_json::to_string_pretty(&v).expect("serialize"),
    )
    .expect("write");
    println!("wrote {dir}/{name}");
}
