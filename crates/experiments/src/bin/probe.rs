//! Calibration probe: dump detailed stats for single scenario runs.
//! Not part of the reproduction surface — a developer tool.
//!
//! `probe [scale] [--trace-out <dir>]` — with `--trace-out`, the detail
//! run's observability data (spans, metrics, provenance, Perfetto trace)
//! is exported to `<dir>`; see `docs/OBSERVABILITY.md`.

use dyrs::MigrationPolicy;
use dyrs_experiments::scenarios::{hetero_config, with_workload};
use dyrs_sim::Simulation;
use dyrs_workloads::hive;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out: Option<std::path::PathBuf> =
        args.iter().position(|a| a == "--trace-out").map(|i| {
            args.remove(i);
            if i >= args.len() {
                panic!("--trace-out needs a directory");
            }
            args.remove(i).into()
        });
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let queries = hive::queries();
    // detail: DYRS on q15
    {
        let q = &queries[5];
        let w = hive::query_workload(q, scale, 0);
        let (cfg, jobs) = with_workload(hetero_config(MigrationPolicy::Dyrs, 11), w);
        let r = Simulation::new(cfg, jobs).run();
        println!("--- DYRS q15 disk reads ---");
        for rd in r.reads.iter().filter(|rd| !rd.medium.is_memory()) {
            println!(
                "  t={:7.2}s block={:?} src={} medium={:?} bytes={}MB job={:?}",
                rd.at.as_secs_f64(),
                rd.block,
                rd.source,
                rd.medium,
                rd.bytes >> 20,
                rd.job
            );
        }
        for n in &r.nodes {
            println!(
                "  {}: migs={} missed={} est_end={:.2}s",
                n.node,
                n.slave.completed,
                n.slave.missed_reads,
                n.estimate_series
                    .points()
                    .last()
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0)
            );
        }
        println!("  speculations={}", r.speculations);
        if let Some(dir) = &trace_out {
            r.obs
                .write_to_dir(dir)
                .unwrap_or_else(|e| panic!("cannot write trace to {}: {e}", dir.display()));
            println!("  trace written to {}", dir.display());
        }
    }
    for q in [&queries[5], &queries[9]] {
        println!(
            "=== {} scan={}GB (scale {scale}) ===",
            q.name,
            q.scan_bytes >> 30
        );
        for policy in MigrationPolicy::paper_configs() {
            let w = hive::query_workload(q, scale, 0);
            let (cfg, jobs) = with_workload(hetero_config(policy, 11), w);
            let r = Simulation::new(cfg, jobs).run();
            let total: f64 = r.jobs.iter().map(|j| j.duration.as_secs_f64()).sum();
            let s1 = &r
                .jobs
                .iter()
                .find(|j| j.name.ends_with("s1"))
                .expect("hive query workloads always contain a stage-1 job");
            println!(
                "{:<20} query={:7.1}s s1={:6.1}s s1_map={:6.1}s memfrac={:.2} migs={} missed={} pend_end={}",
                policy.name(),
                total,
                s1.duration.as_secs_f64(),
                s1.map_phase.as_secs_f64(),
                r.memory_read_fraction(),
                r.master.completed,
                r.master.missed_reads,
                r.master.requested_blocks as i64 - r.master.completed as i64 - r.master.missed_reads as i64,
            );
        }
    }
}
