//! # dyrs-experiments — the paper-reproduction harness
//!
//! One module per table/figure of the DYRS paper. Each module exposes a
//! `run(...)` function returning structured results plus a `render(...)`
//! producing the text the `repro` binary prints (the same rows/series the
//! paper reports), so tests can assert the *shape* of every claim and the
//! binary can regenerate every artifact.
//!
//! | module | artifact | paper claim (shape) |
//! |---|---|---|
//! | [`fig01`] | Fig. 1 | per-node disk utilization heterogeneous across nodes & time |
//! | [`fig02`] | Fig. 2 | 81% of jobs: lead-time ≥ read-time |
//! | [`fig03`] | Fig. 3 | 80% of utilization samples < 4%, mean 3.1% |
//! | [`fig04`] | Fig. 4 | Hive: DYRS up to ~48% / avg ~36% faster; Ignem slower |
//! | [`table1`] | Table I | SWIM means: RAM +46%, DYRS +33%, Ignem −111% |
//! | [`fig05`] | Fig. 5 | speedup by size bin: 34% / 47% / 26% |
//! | [`fig06`] | Fig. 6 | map tasks ~1.8× faster under DYRS |
//! | [`fig07`] | Fig. 7 | DYRS migrates ~45% of hypothetical's data, keeps ~72% of its speedup |
//! | [`fig08`] | Fig. 8 | reads/DataNode: DYRS & HDFS avoid slow node, Ignem uniform |
//! | [`fig09`] | Fig. 9 | estimate tracks interference patterns |
//! | [`table2`] | Table II | equal total interference ⇒ equal sort runtime |
//! | [`fig10`] | Fig. 10 | DYRS keeps tail migrations off the slow node |
//! | [`fig11`] | Fig. 11 | speedup vs input size and lead-time trade-off |
//! | [`tiers`] | extension | 2-tier vs 3/4-tier stacks: speedup & wasted-migration rate |
//!
//! The [`runner`] module runs independent simulations in parallel across
//! a thread pool (`crossbeam::scope`), which is how the multi-config
//! sweeps stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod iterative;
pub mod policies;
pub mod render;
pub mod replay;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod tiers;

/// Default seed used by the `repro` binary (any seed reproduces the
/// shapes; this one is pinned so published output is bit-stable).
pub const DEFAULT_SEED: u64 = 20190520; // IPPS 2019 conference date
