//! Figure 1 — disk bandwidth utilization over 24 h for three servers.
//!
//! Paper claim: "There is heterogeneity in the residual disk bandwidth
//! across both nodes and time" — one node consistently much busier (13×
//! and 5× the others on average).

use crate::render::ascii_series;
use dyrs_workloads::google;
use serde::{Deserialize, Serialize};

/// Figure 1 data: three representative utilization traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// Per-node traces, 5-minute samples over 24 h, utilization in `[0, 1]`.
    pub traces: Vec<Vec<f64>>,
    /// Mean utilization per node.
    pub means: Vec<f64>,
}

impl Fig1 {
    /// Ratio of the busiest node's mean to the quietest node's mean.
    pub fn heterogeneity_ratio(&self) -> f64 {
        let max = self.means.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.means.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }
}

/// Pick three representative nodes out of a synthesized population: the
/// busiest, the median, and a quiet one — the paper's node 1 / node 2 /
/// node 3 pattern.
pub fn run(seed: u64) -> Fig1 {
    let pop = google::cluster_utilization(seed, 60, google::SAMPLES_24H);
    let mut by_mean: Vec<(f64, usize)> = pop
        .iter()
        .enumerate()
        .map(|(i, t)| (t.iter().sum::<f64>() / t.len() as f64, i))
        .collect();
    by_mean.sort_by(|a, b| b.0.total_cmp(&a.0));
    let picks = [by_mean[0].1, by_mean[30].1, by_mean[50].1];
    let traces: Vec<Vec<f64>> = picks.iter().map(|&i| pop[i].clone()).collect();
    let means = traces
        .iter()
        .map(|t| t.iter().sum::<f64>() / t.len() as f64)
        .collect();
    Fig1 { traces, means }
}

/// Render the three traces as ASCII series.
pub fn render(f: &Fig1) -> String {
    let mut out = String::from(
        "FIG 1: Disk bandwidth utilization over 24h for three servers\n\
         (paper: node 1 consistently busier — 13x and 5x nodes 2 and 3)\n\n",
    );
    for (i, t) in f.traces.iter().enumerate() {
        let pts: Vec<(f64, f64)> = t
            .iter()
            .enumerate()
            .map(|(k, &v)| (k as f64 * 5.0 / 60.0, v * 100.0))
            .collect();
        out.push_str(&format!(
            "node {} (mean {:.1}% util, x-axis hours):\n{}",
            i + 1,
            f.means[i] * 100.0,
            ascii_series(&pts, 72, 6)
        ));
        out.push('\n');
    }
    out.push_str(&format!(
        "heterogeneity: busiest/quietest mean ratio = {:.1}x\n",
        f.heterogeneity_ratio()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_heterogeneous_traces() {
        let f = run(1);
        assert_eq!(f.traces.len(), 3);
        assert_eq!(f.traces[0].len(), google::SAMPLES_24H);
        // node 1 busier than node 2 busier than node 3
        assert!(f.means[0] > f.means[1]);
        assert!(f.means[1] > f.means[2]);
        // the paper's busiest node is an order of magnitude above quiet ones
        assert!(
            f.heterogeneity_ratio() > 4.0,
            "ratio {:.1}",
            f.heterogeneity_ratio()
        );
    }

    #[test]
    fn traces_vary_over_time() {
        let f = run(1);
        for t in &f.traces {
            let mean = t.iter().sum::<f64>() / t.len() as f64;
            let var = t.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / t.len() as f64;
            assert!(var > 0.0);
        }
    }

    #[test]
    fn render_has_three_panels() {
        let s = render(&run(1));
        assert!(s.contains("node 1"));
        assert!(s.contains("node 3"));
        assert!(s.contains("heterogeneity"));
    }
}
