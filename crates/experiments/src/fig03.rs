//! Figure 3 — CDF of disk utilization samples across servers over 24 h.
//!
//! Paper claims: "For 80% of these measurements, the utilization is under
//! 4%"; mean utilization 3.1% over the day. Clusters are heavily
//! over-provisioned for IO, so residual bandwidth for migration abounds.

use dyrs_workloads::google;
use serde::{Deserialize, Serialize};
use simkit::stats::Quantiles;

/// Figure 3 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// CDF points `(utilization, cumulative probability)`.
    pub cdf: Vec<(f64, f64)>,
    /// Fraction of samples under 4% utilization.
    pub under_4pct: f64,
    /// Mean utilization across all samples.
    pub mean: f64,
}

/// Sample `servers` servers over 24 h and build the CDF.
pub fn run(seed: u64, servers: usize) -> Fig3 {
    let traces = google::cluster_utilization(seed, servers, google::SAMPLES_24H);
    let mut q = Quantiles::new();
    for t in &traces {
        q.extend_from(t);
    }
    let mean = q.mean();
    let under = q.fraction_at_most(0.04);
    Fig3 {
        cdf: q.cdf(100),
        under_4pct: under,
        mean,
    }
}

/// Render the CDF summary.
pub fn render(f: &Fig3) -> String {
    let mut out = String::from(
        "FIG 3: CDF of disk utilization over 24h, 40 servers\n\
         (paper: 80% of samples under 4%; mean 3.1%)\n\n",
    );
    for p in [10, 25, 50, 75, 80, 90, 99] {
        let idx = (p * (f.cdf.len() - 1)) / 100;
        out.push_str(&format!("p{p:>2}: {:.2}% util\n", f.cdf[idx].0 * 100.0));
    }
    out.push_str(&format!(
        "\nunder 4% utilization: {:.1}% of samples   mean: {:.2}%\n",
        f.under_4pct * 100.0,
        f.mean * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_stats_match_paper() {
        let f = run(1, 40);
        assert!(
            (0.70..=0.90).contains(&f.under_4pct),
            "under-4% fraction {} (paper 0.80)",
            f.under_4pct
        );
        assert!(
            (0.015..=0.05).contains(&f.mean),
            "mean {} (paper 0.031)",
            f.mean
        );
    }

    #[test]
    fn cdf_monotone() {
        let f = run(2, 40);
        assert!(f
            .cdf
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn render_mentions_mean() {
        assert!(render(&run(1, 10)).contains("mean"));
    }
}
