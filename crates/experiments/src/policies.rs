//! Future-work study: alternative migration-scheduling policies at the
//! master.
//!
//! The paper ships FIFO and writes (§III): "In future work, we plan to
//! explore how alternative policies, and cooperation with the job
//! scheduler, can improve performance." This module runs the SWIM
//! workload under the three implemented pending-list disciplines —
//! FIFO (the paper), smallest-job-first, and earliest-deadline-first —
//! and reports the numbers that discriminate them: mean job duration,
//! small-job duration (SJF's target), and missed-read counts (work
//! wasted on blocks that were read before their migration was bound).

use crate::render::{secs, TextTable};
use crate::runner::{run_all, SimTask};
use crate::scenarios::{hetero_config, swim_params};
use dyrs::{MigrationOrder, MigrationPolicy};
use dyrs_workloads::swim::{self, size_bin, SizeBin};
use serde::{Deserialize, Serialize};

/// Metrics for one ordering discipline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrderRow {
    /// Discipline name ("FIFO" / "SJF" / "EDF").
    pub order: String,
    /// Mean job duration, seconds.
    pub mean_job_secs: f64,
    /// Mean duration of small (<64 MB) jobs — the majority class.
    pub small_job_secs: f64,
    /// Mean duration of large (>1 GB) jobs — SJF's potential victims.
    pub large_job_secs: f64,
    /// Fraction of input bytes read from memory.
    pub memory_fraction: f64,
    /// Pending migrations cancelled by reads (wasted intent).
    pub missed_reads: u64,
}

/// The full study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyStudy {
    /// One row per discipline, in [`MigrationOrder::all`] order.
    pub rows: Vec<OrderRow>,
}

impl PolicyStudy {
    /// Row lookup.
    pub fn row(&self, name: &str) -> &OrderRow {
        self.rows
            .iter()
            .find(|r| r.order == name)
            .unwrap_or_else(|| panic!("missing order {name}"))
    }
}

/// Run SWIM under DYRS with each pending-list discipline.
pub fn run(seed: u64, scale: f64) -> PolicyStudy {
    let params = swim_params(scale);
    let tasks: Vec<SimTask> = MigrationOrder::all()
        .into_iter()
        .map(|order| {
            let mut cfg = hetero_config(MigrationPolicy::Dyrs, seed);
            cfg.dyrs.migration_order = order;
            let w = swim::generate(&params, seed);
            cfg.files = w.files;
            SimTask::new(order.name(), cfg, w.jobs)
        })
        .collect();
    let results = run_all(tasks, 0);
    let rows = results
        .iter()
        .map(|(label, r)| {
            let mean_of = |bin: Option<SizeBin>| {
                let xs: Vec<f64> = r
                    .jobs
                    .iter()
                    .filter(|j| bin.map(|b| size_bin(j.input_bytes) == b).unwrap_or(true))
                    .map(|j| j.duration.as_secs_f64())
                    .collect();
                if xs.is_empty() {
                    0.0
                } else {
                    xs.iter().sum::<f64>() / xs.len() as f64
                }
            };
            OrderRow {
                order: label.clone(),
                mean_job_secs: mean_of(None),
                small_job_secs: mean_of(Some(SizeBin::Small)),
                large_job_secs: mean_of(Some(SizeBin::Large)),
                memory_fraction: r.memory_read_fraction(),
                missed_reads: r.master.missed_reads,
            }
        })
        .collect();
    PolicyStudy { rows }
}

/// Render the comparison table.
pub fn render(p: &PolicyStudy) -> String {
    let mut tt = TextTable::new(vec![
        "Order",
        "Mean job(s)",
        "Small jobs(s)",
        "Large jobs(s)",
        "Mem reads",
        "Missed",
    ]);
    for r in &p.rows {
        tt.row(vec![
            r.order.clone(),
            secs(r.mean_job_secs),
            secs(r.small_job_secs),
            secs(r.large_job_secs),
            format!("{:.0}%", r.memory_fraction * 100.0),
            r.missed_reads.to_string(),
        ]);
    }
    format!(
        "FUTURE WORK — migration-order policies on SWIM (DYRS master)\n\
         (paper ships FIFO and defers alternatives to future work)\n\n{}",
        tt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_orders_complete_the_workload() {
        let p = run(7, 0.2);
        assert_eq!(p.rows.len(), 3);
        for r in &p.rows {
            assert!(r.mean_job_secs > 0.0, "{} produced no jobs", r.order);
            assert!(r.memory_fraction > 0.2, "{} barely migrated", r.order);
        }
    }

    #[test]
    fn alternative_orders_do_not_tank_the_mean() {
        // the study's point is the trade-off space; sanity: no discipline
        // should catastrophically regress the FIFO baseline
        let p = run(7, 0.2);
        let fifo = p.row("FIFO").mean_job_secs;
        for name in ["SJF", "EDF"] {
            let x = p.row(name).mean_job_secs;
            assert!(x < fifo * 1.3, "{name} mean {x:.1}s vs FIFO {fifo:.1}s");
        }
    }

    #[test]
    fn sjf_favors_small_jobs() {
        let p = run(7, 0.25);
        // SJF must not make the majority class slower than FIFO does
        assert!(
            p.row("SJF").small_job_secs <= p.row("FIFO").small_job_secs * 1.05,
            "SJF small-job mean {:.1}s vs FIFO {:.1}s",
            p.row("SJF").small_job_secs,
            p.row("FIFO").small_job_secs
        );
    }

    #[test]
    fn render_lists_orders() {
        let s = render(&run(7, 0.1));
        for n in ["FIFO", "SJF", "EDF"] {
            assert!(s.contains(n));
        }
    }
}
