//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! Each ablation isolates one DYRS mechanism and measures what the paper's
//! headline workload loses without it:
//!
//! * **binding** — delayed+targeted (DYRS) vs delayed-any (naive) vs
//!   immediate-random (Ignem) on a heterogeneous Sort;
//! * **in-progress refresh** — the §IV-A heartbeat refresh on/off under
//!   suddenly-appearing interference;
//! * **queue depth** — the §III-A1 idleness-vs-early-binding trade-off,
//!   sweeping the slack;
//! * **eviction mode** — implicit vs explicit eviction memory footprint.

use crate::render::TextTable;
use crate::runner::{run_all, SimTask};
use crate::scenarios::{hetero_config, with_workload, SLOW_NODE};
use dyrs::MigrationPolicy;
use dyrs_cluster::InterferenceSchedule;
use dyrs_workloads::sort;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};

/// One ablation measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Sort job end-to-end duration, seconds.
    pub job_secs: f64,
    /// Fraction of input read from memory.
    pub memory_fraction: f64,
    /// Peak migration-buffer footprint across nodes, bytes.
    pub peak_buffer_bytes: u64,
}

/// A complete ablation study result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablation {
    /// Which mechanism was ablated.
    pub name: String,
    /// Variants in declared order.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// Lookup by variant prefix.
    pub fn row(&self, prefix: &str) -> &AblationRow {
        self.rows
            .iter()
            .find(|r| r.variant.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing variant {prefix}"))
    }
}

fn summarize(variant: String, r: &dyrs_sim::SimResult) -> AblationRow {
    AblationRow {
        variant,
        job_secs: r
            .jobs
            .first()
            .map(|j| j.duration.as_secs_f64())
            .unwrap_or(0.0),
        memory_fraction: r.memory_read_fraction(),
        peak_buffer_bytes: r
            .nodes
            .iter()
            .map(|n| n.peak_buffer_bytes)
            .max()
            .unwrap_or(0),
    }
}

/// Binding policy ablation: DYRS vs naive delayed binding vs Ignem on the
/// heterogeneous cluster.
pub fn binding(seed: u64, input_gb: u64) -> Ablation {
    let tasks = [
        MigrationPolicy::Dyrs,
        MigrationPolicy::Naive,
        MigrationPolicy::Ignem,
    ]
    .into_iter()
    .map(|p| {
        let cfg = hetero_config(p, seed);
        let w = sort::sort_workload(input_gb << 30, SimDuration::from_secs(20), 0);
        let (cfg, jobs) = with_workload(cfg, w);
        SimTask::new(p.name(), cfg, jobs)
    })
    .collect();
    Ablation {
        name: "binding".into(),
        rows: run_all(tasks, 0)
            .iter()
            .map(|(l, r)| summarize(l.clone(), r))
            .collect(),
    }
}

/// In-progress-refresh ablation: interference starts mid-job; without the
/// refresh the master keeps binding to the (suddenly slow) node until a
/// migration completes there.
pub fn refresh(seed: u64, input_gb: u64) -> Ablation {
    let tasks = [true, false]
        .into_iter()
        .map(|on| {
            let mut cfg = hetero_config(MigrationPolicy::Dyrs, seed);
            // interference arrives only at t=10s, after estimates settled
            cfg.interference = vec![InterferenceSchedule {
                node: SLOW_NODE,
                streams: 2,
                weight: dyrs_cluster::DD_WEIGHT,
                pattern: dyrs_cluster::InterferencePattern::Custom(vec![dyrs_cluster::Toggle {
                    at: SimTime::from_secs(10),
                    on: true,
                }]),
            }];
            cfg.dyrs.in_progress_refresh = on;
            let w = sort::sort_workload(input_gb << 30, SimDuration::from_secs(30), 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new(if on { "refresh-on" } else { "refresh-off" }, cfg, jobs)
        })
        .collect();
    Ablation {
        name: "in-progress refresh".into(),
        rows: run_all(tasks, 0)
            .iter()
            .map(|(l, r)| summarize(l.clone(), r))
            .collect(),
    }
}

/// Queue-depth ablation: sweep the §III-A1 slack.
pub fn queue_depth(seed: u64, input_gb: u64) -> Ablation {
    let tasks = [0usize, 1, 2, 4, 8]
        .into_iter()
        .map(|slack| {
            let mut cfg = hetero_config(MigrationPolicy::Dyrs, seed);
            cfg.dyrs.queue_slack = slack;
            let w = sort::sort_workload(input_gb << 30, SimDuration::from_secs(20), 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new(format!("slack-{slack}"), cfg, jobs)
        })
        .collect();
    Ablation {
        name: "queue depth".into(),
        rows: run_all(tasks, 0)
            .iter()
            .map(|(l, r)| summarize(l.clone(), r))
            .collect(),
    }
}

/// Serialization ablation (§III-B): the paper migrates one block at a
/// time per disk "to limit disk read concurrency"; this sweeps the
/// concurrency limit to quantify the choice. Higher concurrency batches
/// completions (every block finishes late) and adds disk contention, so
/// it should never beat the serialized default on time-to-first-byte
/// workloads like Sort.
pub fn serialization(seed: u64, input_gb: u64) -> Ablation {
    let tasks = [1usize, 2, 4, 8]
        .into_iter()
        .map(|limit| {
            let mut cfg = hetero_config(MigrationPolicy::Dyrs, seed);
            cfg.dyrs.max_concurrent_migrations = limit;
            let w = sort::sort_workload(input_gb << 30, SimDuration::from_secs(10), 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new(format!("concurrent-{limit}"), cfg, jobs)
        })
        .collect();
    Ablation {
        name: "migration serialization".into(),
        rows: run_all(tasks, 0)
            .iter()
            .map(|(l, r)| summarize(l.clone(), r))
            .collect(),
    }
}

/// Eviction-mode ablation: implicit (evict on read) vs explicit
/// (evict at job end) memory footprints.
pub fn eviction(seed: u64, input_gb: u64) -> Ablation {
    let tasks = [true, false]
        .into_iter()
        .map(|implicit| {
            let cfg = hetero_config(MigrationPolicy::Dyrs, seed);
            let mut w = sort::sort_workload(input_gb << 30, SimDuration::from_secs(30), 0);
            w.jobs[0].implicit_eviction = implicit;
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new(if implicit { "implicit" } else { "explicit" }, cfg, jobs)
        })
        .collect();
    Ablation {
        name: "eviction mode".into(),
        rows: run_all(tasks, 0)
            .iter()
            .map(|(l, r)| summarize(l.clone(), r))
            .collect(),
    }
}

/// Memory-limit ablation (§IV-A1 hard limit, §V-E3 diminishing returns):
/// sweep the per-node migration-buffer cap on the SWIM workload. The
/// paper observes "a diminishing return in speedup from using more
/// memory"; the sweep regenerates that curve — speedup rises steeply from
/// tiny buffers and flattens well below unlimited RAM.
pub fn memory_limit(seed: u64, scale: f64) -> Ablation {
    use crate::scenarios::swim_params;
    use dyrs_workloads::swim;
    const BLOCK: u64 = 256 << 20;
    let params = swim_params(scale);
    let mut tasks: Vec<SimTask> = Vec::new();
    // HDFS baseline for the speedup reference
    {
        let cfg = hetero_config(MigrationPolicy::Disabled, seed);
        let w = swim::generate(&params, seed);
        let (mut cfg2, jobs) = (cfg, w.jobs);
        cfg2.files = w.files;
        tasks.push(SimTask::new("baseline-hdfs", cfg2, jobs));
    }
    for blocks in [1u64, 2, 4, 8, 16, 64] {
        let mut cfg = hetero_config(MigrationPolicy::Dyrs, seed);
        cfg.mem_limit = Some(blocks * BLOCK);
        let w = swim::generate(&params, seed);
        cfg.files = w.files;
        tasks.push(SimTask::new(format!("limit-{blocks}blk"), cfg, w.jobs));
    }
    let results = run_all(tasks, 0);
    let rows = results
        .iter()
        .map(|(label, r)| AblationRow {
            variant: label.clone(),
            job_secs: r.mean_job_duration_secs(),
            memory_fraction: r.memory_read_fraction(),
            peak_buffer_bytes: r
                .nodes
                .iter()
                .map(|n| n.peak_buffer_bytes)
                .max()
                .unwrap_or(0),
        })
        .collect();
    Ablation {
        name: "memory hard limit".into(),
        rows,
    }
}

/// Render one ablation as a table.
pub fn render(a: &Ablation) -> String {
    let mut tt = TextTable::new(vec!["Variant", "Sort(s)", "Mem reads", "Peak buffer"]);
    for r in &a.rows {
        tt.row(vec![
            r.variant.clone(),
            format!("{:.1}", r.job_secs),
            format!("{:.0}%", r.memory_fraction * 100.0),
            crate::render::bytes(r.peak_buffer_bytes),
        ]);
    }
    format!("ABLATION — {}:\n{}", a.name, tt.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_binding_wins() {
        let a = binding(7, 10);
        let dyrs = a.row("DYRS");
        let ignem = a.row("Ignem");
        assert!(dyrs.job_secs <= a.row("Naive").job_secs * 1.02);
        assert!(dyrs.job_secs < ignem.job_secs, "DYRS must beat Ignem");
    }

    #[test]
    fn refresh_speeds_adaptation() {
        let a = refresh(7, 10);
        let on = a.row("refresh-on");
        let off = a.row("refresh-off");
        // without the refresh the system adapts slower (or at best equal)
        assert!(
            on.job_secs <= off.job_secs * 1.05,
            "refresh-on {:.1}s vs refresh-off {:.1}s",
            on.job_secs,
            off.job_secs
        );
        assert!(
            on.memory_fraction + 0.02 >= off.memory_fraction,
            "refresh must not lose coverage: {} vs {}",
            on.memory_fraction,
            off.memory_fraction
        );
    }

    #[test]
    fn zero_slack_never_helps() {
        let a = queue_depth(7, 10);
        let s0 = a.row("slack-0").job_secs;
        let s1 = a.row("slack-1").job_secs;
        // slack 0 risks disk idleness between heartbeats; it should never
        // beat the default meaningfully
        assert!(s1 <= s0 * 1.05, "slack-1 {s1:.1}s vs slack-0 {s0:.1}s");
    }

    #[test]
    fn serialization_never_loses() {
        let a = serialization(7, 10);
        let one = a.row("concurrent-1");
        for limit in ["concurrent-2", "concurrent-4", "concurrent-8"] {
            let x = a.row(limit);
            assert!(
                one.job_secs <= x.job_secs * 1.08,
                "serialized {:.1}s must not lose to {limit} {:.1}s",
                one.job_secs,
                x.job_secs
            );
            assert!(
                one.memory_fraction + 0.05 >= x.memory_fraction,
                "serialized coverage {:.2} vs {limit} {:.2}",
                one.memory_fraction,
                x.memory_fraction
            );
        }
    }

    #[test]
    fn implicit_eviction_keeps_footprint_lower() {
        let a = eviction(7, 10);
        let imp = a.row("implicit");
        let exp = a.row("explicit");
        assert!(
            imp.peak_buffer_bytes <= exp.peak_buffer_bytes,
            "implicit {} must not exceed explicit {}",
            imp.peak_buffer_bytes,
            exp.peak_buffer_bytes
        );
        // and performance is essentially unchanged
        assert!((imp.job_secs - exp.job_secs).abs() / exp.job_secs < 0.1);
    }

    #[test]
    fn memory_limit_shows_diminishing_returns() {
        let a = memory_limit(7, 0.2);
        let hdfs = a.row("baseline-hdfs").job_secs;
        let tiny = a.row("limit-1blk").job_secs;
        let mid = a.row("limit-8blk").job_secs;
        let big = a.row("limit-64blk").job_secs;
        // more memory never hurts …
        assert!(mid <= tiny * 1.05, "8blk {mid:.1}s vs 1blk {tiny:.1}s");
        assert!(big <= mid * 1.05, "64blk {big:.1}s vs 8blk {mid:.1}s");
        // … and even a modest buffer captures most of the benefit
        // (the paper's diminishing-returns observation, §V-E3)
        let gain_mid = hdfs - mid;
        let gain_big = hdfs - big;
        assert!(
            gain_mid >= 0.7 * gain_big,
            "8 blocks should capture most of the speedup: {gain_mid:.1} vs {gain_big:.1}"
        );
        // hard limits hold
        assert!(a.row("limit-1blk").peak_buffer_bytes <= 256 << 20);
        assert!(a.row("limit-8blk").peak_buffer_bytes <= 8 * (256 << 20));
    }

    #[test]
    fn render_lists_variants() {
        let a = binding(7, 5);
        let s = render(&a);
        assert!(s.contains("DYRS") && s.contains("Ignem"));
    }
}
