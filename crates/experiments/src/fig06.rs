//! Figure 6 — map-task durations in the SWIM workload.
//!
//! Paper claims: "Mapper tasks run 1.8x faster under DYRS than with
//! HDFS", improving cluster utilization (IO-bound mappers hold slots for
//! less time). Ignem produces a bimodal mix: very short tasks on fast
//! nodes, very long ones on the slow node.

use crate::render::{secs, TextTable};
use crate::scenarios::swim_runs;
use serde::{Deserialize, Serialize};
use simkit::stats::Quantiles;

/// Map-task duration summary for one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapTaskSummary {
    /// Configuration name.
    pub config: String,
    /// Number of map tasks.
    pub count: usize,
    /// Mean duration, seconds.
    pub mean: f64,
    /// Median duration.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile (the straggler tail).
    pub p99: f64,
    /// CDF points for plotting.
    pub cdf: Vec<(f64, f64)>,
}

/// Figure 6 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// Summaries in paper-config order.
    pub summaries: Vec<MapTaskSummary>,
}

impl Fig6 {
    /// Summary lookup.
    pub fn summary(&self, config: &str) -> &MapTaskSummary {
        self.summaries
            .iter()
            .find(|s| s.config == config)
            .unwrap_or_else(|| panic!("missing config {config}"))
    }

    /// Mean map-task speed ratio HDFS ÷ DYRS (the paper's 1.8×).
    pub fn dyrs_map_ratio(&self) -> f64 {
        self.summary("HDFS").mean / self.summary("DYRS").mean
    }
}

/// Run SWIM and summarize map-task durations.
pub fn run(seed: u64, scale: f64) -> Fig6 {
    let runs = swim_runs(seed, scale);
    let summaries = runs
        .iter()
        .map(|(p, r)| {
            let mut q = Quantiles::new();
            for t in r.tasks.iter().filter(|t| t.is_map) {
                q.observe(t.duration.as_secs_f64());
            }
            MapTaskSummary {
                config: p.name().to_string(),
                count: q.count(),
                mean: q.mean(),
                p50: q.percentile(50.0),
                p90: q.percentile(90.0),
                p99: q.percentile(99.0),
                cdf: q.cdf(50),
            }
        })
        .collect();
    Fig6 { summaries }
}

/// Render the distribution table.
pub fn render(f: &Fig6) -> String {
    let mut tt = TextTable::new(vec!["Config", "Tasks", "Mean(s)", "p50", "p90", "p99"]);
    for s in &f.summaries {
        tt.row(vec![
            s.config.clone(),
            s.count.to_string(),
            secs(s.mean),
            secs(s.p50),
            secs(s.p90),
            secs(s.p99),
        ]);
    }
    format!(
        "FIG 6: SWIM map-task durations\n\
         (paper: DYRS mappers 1.8x faster than HDFS; Ignem bimodal)\n\n{}\n\
         HDFS/DYRS mean map-task ratio: {:.2}x\n",
        tt.render(),
        f.dyrs_map_ratio()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyrs_mappers_substantially_faster() {
        let f = run(7, 0.25);
        let ratio = f.dyrs_map_ratio();
        // paper: 1.8x; shape: meaningfully faster but below the RAM bound
        assert!(ratio > 1.3, "HDFS/DYRS map ratio {ratio}");
        let ram_ratio = f.summary("HDFS").mean / f.summary("HDFS-Inputs-in-RAM").mean;
        assert!(
            ratio <= ram_ratio + 0.2,
            "DYRS {ratio} above RAM bound {ram_ratio}"
        );
    }

    #[test]
    fn ignem_has_the_longest_tail() {
        let f = run(7, 0.25);
        // Ignem's slow-node-bound reads create the worst stragglers
        assert!(
            f.summary("Ignem").p99 > f.summary("DYRS").p99,
            "Ignem p99 {} vs DYRS p99 {}",
            f.summary("Ignem").p99,
            f.summary("DYRS").p99
        );
    }

    #[test]
    fn cdfs_are_monotone() {
        let f = run(7, 0.1);
        for s in &f.summaries {
            assert!(s.cdf.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn render_reports_ratio() {
        assert!(render(&run(7, 0.1)).contains("map-task ratio"));
    }
}
