//! Figure 5 — SWIM job durations binned by input size.
//!
//! Paper claims: DYRS speeds up small (<64 MB), medium (64 MB–1 GB) and
//! large (>1 GB) jobs by 34%, 47% and 26% respectively; medium jobs gain
//! most (non-read overheads amortized better than small jobs, more of the
//! input migratable than large jobs); DYRS keeps >75% of the in-RAM bound
//! for small and medium jobs.

use crate::render::{pct, secs, TextTable};
use crate::scenarios::swim_runs;
use dyrs::MigrationPolicy;
use dyrs_engine::JobMetrics;
use dyrs_workloads::swim::{size_bin, SizeBin};
use serde::{Deserialize, Serialize};

/// Per-bin mean durations for each configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// Bin labels in order (Small, Medium, Large).
    pub bins: Vec<String>,
    /// Jobs per bin.
    pub counts: Vec<usize>,
    /// `means[config][bin]` mean duration in seconds; configs in
    /// paper order (HDFS, RAM, Ignem, DYRS).
    pub configs: Vec<String>,
    /// Mean duration per config per bin.
    pub means: Vec<Vec<f64>>,
}

impl Fig5 {
    fn config_idx(&self, name: &str) -> usize {
        self.configs
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("missing config {name}"))
    }

    /// Speedup of `config` vs HDFS in the given bin index.
    pub fn speedup(&self, config: &str, bin: usize) -> f64 {
        let hdfs = self.means[self.config_idx("HDFS")][bin];
        let own = self.means[self.config_idx(config)][bin];
        1.0 - own / hdfs
    }
}

fn bin_index(m: &JobMetrics) -> usize {
    match size_bin(m.input_bytes) {
        SizeBin::Small => 0,
        SizeBin::Medium => 1,
        SizeBin::Large => 2,
    }
}

/// Run SWIM under all policies and bin the durations.
pub fn run(seed: u64, scale: f64) -> Fig5 {
    let runs = swim_runs(seed, scale);
    let configs: Vec<String> = runs.iter().map(|(p, _)| p.name().to_string()).collect();
    let mut means = Vec::new();
    let mut counts = vec![0usize; 3];
    for (p, r) in &runs {
        let mut sums = [0.0f64; 3];
        let mut ns = [0usize; 3];
        for j in &r.jobs {
            let b = bin_index(j);
            sums[b] += j.duration.as_secs_f64();
            ns[b] += 1;
        }
        if *p == MigrationPolicy::Disabled {
            counts = ns.to_vec();
        }
        means.push(
            (0..3)
                .map(|b| {
                    if ns[b] == 0 {
                        0.0
                    } else {
                        sums[b] / ns[b] as f64
                    }
                })
                .collect(),
        );
    }
    Fig5 {
        bins: vec![
            "Small(<64MB)".into(),
            "Medium(64MB-1GB)".into(),
            "Large(>1GB)".into(),
        ],
        counts,
        configs,
        means,
    }
}

/// Render the per-bin table.
pub fn render(f: &Fig5) -> String {
    let mut tt = TextTable::new(vec![
        "Bin",
        "Jobs",
        "HDFS(s)",
        "RAM(s)",
        "Ignem(s)",
        "DYRS(s)",
        "DYRS speedup",
    ]);
    for b in 0..3 {
        tt.row(vec![
            f.bins[b].clone(),
            f.counts[b].to_string(),
            secs(f.means[f.config_idx("HDFS")][b]),
            secs(f.means[f.config_idx("HDFS-Inputs-in-RAM")][b]),
            secs(f.means[f.config_idx("Ignem")][b]),
            secs(f.means[f.config_idx("DYRS")][b]),
            pct(f.speedup("DYRS", b)),
        ]);
    }
    format!(
        "FIG 5: SWIM job duration by input-size bin\n\
         (paper: DYRS +34% small, +47% medium, +26% large)\n\n{}",
        tt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bins_speed_up_and_ram_bounds() {
        let f = run(7, 0.25);
        for b in 0..3 {
            assert!(f.counts[b] > 0, "bin {b} empty");
            let dyrs = f.speedup("DYRS", b);
            let ram = f.speedup("HDFS-Inputs-in-RAM", b);
            assert!(dyrs > 0.05, "bin {b}: DYRS speedup {dyrs}");
            assert!(dyrs <= ram + 0.05, "bin {b}: DYRS {dyrs} above bound {ram}");
        }
        // small+medium capture most of the bound (paper: >75%)
        for b in 0..2 {
            let ratio = f.speedup("DYRS", b) / f.speedup("HDFS-Inputs-in-RAM", b);
            assert!(ratio > 0.5, "bin {b}: bound capture {ratio}");
        }
    }

    #[test]
    fn large_jobs_gain_least_of_the_bound() {
        // the paper's ordering driver: a smaller share of a large input is
        // migratable within the fixed lead-time
        let f = run(7, 0.25);
        let capture = |b: usize| f.speedup("DYRS", b) / f.speedup("HDFS-Inputs-in-RAM", b);
        assert!(
            capture(2) < capture(1) + 0.2,
            "large-bin capture {} should not exceed medium {}",
            capture(2),
            capture(1)
        );
    }

    #[test]
    fn render_has_three_bins() {
        let s = render(&run(7, 0.1));
        assert!(s.contains("Small"));
        assert!(s.contains("Medium"));
        assert!(s.contains("Large"));
    }
}
