//! Figure 11 — Sort: how migration benefit depends on input size and
//! lead-time.
//!
//! Paper claims:
//!
//! * (a) at fixed lead-time, the *map-phase* speedup shrinks as input
//!   grows — the migratable share of the input is bounded by lead-time;
//! * (b) artificially adding lead-time lengthens short jobs end-to-end
//!   (the extra wait isn't recouped), while long jobs stay flat — the
//!   extra migration pays for the wait, improving cluster utilization
//!   for free.

use crate::render::{pct, secs, TextTable};
use crate::runner::{run_all, SimTask};
use crate::scenarios::{homogeneous_config, with_workload};
use dyrs::MigrationPolicy;
use dyrs_workloads::sort;
use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// One (size, lead-time, policy) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SortRun {
    /// Input size, GB.
    pub input_gb: u64,
    /// Artificial extra lead-time, seconds.
    pub extra_lead_secs: u64,
    /// Policy name.
    pub config: String,
    /// Map-phase duration, seconds.
    pub map_phase_secs: f64,
    /// End-to-end duration (includes lead-time), seconds.
    pub e2e_secs: f64,
}

/// Figure 11 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    /// Sizes swept in (a) at zero extra lead.
    pub sizes_gb: Vec<u64>,
    /// Lead-times swept in (b).
    pub leads_secs: Vec<u64>,
    /// Sizes used in the lead sweep (short job, long job).
    pub lead_sizes_gb: Vec<u64>,
    /// All runs.
    pub runs: Vec<SortRun>,
}

impl Fig11 {
    /// Lookup one run.
    pub fn get(&self, input_gb: u64, lead: u64, config: &str) -> &SortRun {
        self.runs
            .iter()
            .find(|r| r.input_gb == input_gb && r.extra_lead_secs == lead && r.config == config)
            .unwrap_or_else(|| panic!("missing run {input_gb}GB/{lead}s/{config}"))
    }

    /// Map-phase speedup of DYRS vs HDFS at a size (zero extra lead).
    pub fn map_speedup(&self, input_gb: u64) -> f64 {
        let h = self.get(input_gb, 0, "HDFS").map_phase_secs;
        let d = self.get(input_gb, 0, "DYRS").map_phase_secs;
        1.0 - d / h
    }
}

/// Run both sweeps.
pub fn run(seed: u64) -> Fig11 {
    let sizes_gb = vec![2u64, 5, 10, 20, 35];
    let leads_secs = vec![0u64, 20, 45, 90];
    let lead_sizes_gb = vec![2u64, 20];
    let mut tasks = Vec::new();
    // (a) size sweep, HDFS + DYRS
    for &gb in &sizes_gb {
        for p in [MigrationPolicy::Disabled, MigrationPolicy::Dyrs] {
            let cfg = homogeneous_config(p, seed);
            let w = sort::sort_workload(gb << 30, SimDuration::ZERO, 0);
            let (cfg, jobs) = with_workload(cfg, w);
            tasks.push(SimTask::new(format!("a/{gb}/0/{}", p.name()), cfg, jobs));
        }
    }
    // (b) lead sweep on DYRS for a short and a long job
    for &gb in &lead_sizes_gb {
        for &lead in &leads_secs {
            if lead == 0 {
                continue; // reuse the (a) run at zero lead for 2/20 GB
            }
            let cfg = homogeneous_config(MigrationPolicy::Dyrs, seed);
            let w = sort::sort_workload(gb << 30, SimDuration::from_secs(lead), 0);
            let (cfg, jobs) = with_workload(cfg, w);
            tasks.push(SimTask::new(format!("b/{gb}/{lead}/DYRS"), cfg, jobs));
        }
    }
    let results = run_all(tasks, 0);
    let runs = results
        .into_iter()
        .map(|(label, r)| {
            let parts: Vec<&str> = label.split('/').collect();
            let j = r.jobs.first().expect("sort completed");
            SortRun {
                input_gb: parts[1].parse().expect("size"),
                extra_lead_secs: parts[2].parse().expect("lead"),
                config: parts[3].to_string(),
                map_phase_secs: j.map_phase.as_secs_f64(),
                e2e_secs: j.duration.as_secs_f64(),
            }
        })
        .collect();
    Fig11 {
        sizes_gb,
        leads_secs,
        lead_sizes_gb,
        runs,
    }
}

/// Render both panels.
pub fn render(f: &Fig11) -> String {
    let mut a = TextTable::new(vec!["Input", "HDFS map(s)", "DYRS map(s)", "map speedup"]);
    for &gb in &f.sizes_gb {
        a.row(vec![
            format!("{gb}GB"),
            secs(f.get(gb, 0, "HDFS").map_phase_secs),
            secs(f.get(gb, 0, "DYRS").map_phase_secs),
            pct(f.map_speedup(gb)),
        ]);
    }
    let mut b = TextTable::new(vec!["Input", "lead+0s", "lead+20s", "lead+45s", "lead+90s"]);
    for &gb in &f.lead_sizes_gb {
        let cell = |lead: u64| secs(f.get(gb, lead, "DYRS").e2e_secs);
        b.row(vec![
            format!("{gb}GB"),
            cell(0),
            cell(20),
            cell(45),
            cell(90),
        ]);
    }
    format!(
        "FIG 11a: Sort map-phase duration vs input size (fixed lead-time)\n\
         (paper: relative speedup shrinks as input grows)\n\n{}\n\
         FIG 11b: Sort end-to-end duration vs artificial lead-time (DYRS)\n\
         (paper: extra lead hurts short jobs, is free for long jobs)\n\n{}",
        a.render(),
        b.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig11 {
        run(7)
    }

    #[test]
    fn map_speedup_shrinks_with_size() {
        let f = fig();
        let small = f.map_speedup(2);
        let large = f.map_speedup(35);
        assert!(small > 0.3, "small sort map speedup {small}");
        assert!(
            large < small,
            "large {large} must gain less than small {small}"
        );
    }

    #[test]
    fn extra_lead_hurts_short_jobs() {
        let f = fig();
        let base = f.get(2, 0, "DYRS").e2e_secs;
        let long = f.get(2, 90, "DYRS").e2e_secs;
        assert!(
            long > base * 1.3,
            "short job must pay for artificial lead: {base:.1} → {long:.1}"
        );
    }

    #[test]
    fn extra_lead_roughly_free_for_long_jobs() {
        let f = fig();
        let base = f.get(20, 0, "DYRS").e2e_secs;
        let long = f.get(20, 45, "DYRS").e2e_secs;
        // the paper's claim: the e2e duration "does not change despite the
        // extra lead-time" — allow modest drift either way
        assert!(
            (long - base).abs() / base < 0.15,
            "long job should stay ~flat: {base:.1} → {long:.1}"
        );
    }

    #[test]
    fn render_has_both_panels() {
        let s = render(&fig());
        assert!(s.contains("FIG 11a"));
        assert!(s.contains("FIG 11b"));
    }
}
