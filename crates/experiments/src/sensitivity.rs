//! Sensitivity analysis: do the headline conclusions survive the
//! modeling choices?
//!
//! DESIGN.md §6 lists the calibration decisions (task-read caps, dd
//! weight, speculative execution, spill handling, heartbeat cadence).
//! This study re-runs the Table I comparison while perturbing each one
//! and checks the *conclusions* — DYRS beats HDFS, stays under the
//! in-RAM bound, and dominates Ignem under heterogeneity — rather than
//! the numbers. A reproduction whose findings only hold at one parameter
//! point would not be a reproduction.

use crate::render::{pct, TextTable};
use crate::runner::{run_all, SimTask};
use crate::scenarios::{swim_params, DD_STREAMS, SLOW_NODE};
use dyrs::MigrationPolicy;
use dyrs_cluster::InterferenceSchedule;
use dyrs_sim::SimConfig;
use dyrs_workloads::swim;
use serde::{Deserialize, Serialize};

const MB: f64 = (1u64 << 20) as f64;

/// One perturbation of the model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Variant {
    /// Label ("baseline", "dd-weight-20", ...).
    pub name: String,
    /// DYRS speedup vs HDFS under this variant.
    pub dyrs: f64,
    /// In-RAM bound speedup.
    pub ram: f64,
    /// Ignem speedup.
    pub ignem: f64,
}

impl Variant {
    /// The conclusions that must hold everywhere: DYRS wins, the bound
    /// bounds, and Ignem trails DYRS decisively.
    pub fn conclusions_hold(&self) -> bool {
        self.dyrs > 0.05 && self.dyrs <= self.ram + 0.05 && self.ignem < self.dyrs - 0.10
    }
}

/// The full study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sensitivity {
    /// All variants, baseline first.
    pub variants: Vec<Variant>,
}

impl Sensitivity {
    /// Lookup by name prefix.
    pub fn variant(&self, prefix: &str) -> &Variant {
        self.variants
            .iter()
            .find(|v| v.name.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing variant {prefix}"))
    }
}

/// A named tweak applied to the baseline configuration.
type Perturbation = (&'static str, Box<dyn Fn(&mut SimConfig) + Send + Sync>);

fn perturbations() -> Vec<Perturbation> {
    vec![
        ("baseline", Box::new(|_| {})),
        (
            "spill-writes-real",
            Box::new(|c| c.engine.model_spill_writes = true),
        ),
        (
            "dd-weight-20",
            Box::new(|c| {
                c.interference =
                    vec![InterferenceSchedule::persistent(SLOW_NODE, DD_STREAMS).with_weight(20.0)]
            }),
        ),
        (
            "dd-weight-60",
            Box::new(|c| {
                c.interference =
                    vec![InterferenceSchedule::persistent(SLOW_NODE, DD_STREAMS).with_weight(60.0)]
            }),
        ),
        (
            "read-cap-7MBps",
            Box::new(|c| c.engine.disk_read_cap = 7.0 * MB),
        ),
        (
            "read-cap-15MBps",
            Box::new(|c| c.engine.disk_read_cap = 15.0 * MB),
        ),
        (
            "heartbeat-3s",
            Box::new(|c| c.dyrs.heartbeat_interval = simkit::SimDuration::from_secs(3)),
        ),
        ("ewma-alpha-0.25", Box::new(|c| c.dyrs.ewma_alpha = 0.25)),
        (
            "no-speculation",
            Box::new(|c| c.engine.speculative_max_attempts = 1),
        ),
    ]
}

/// Run the Table I comparison under every perturbation.
pub fn run(seed: u64, scale: f64) -> Sensitivity {
    let params = swim_params(scale);
    let policies = [
        MigrationPolicy::Disabled,
        MigrationPolicy::InstantRam,
        MigrationPolicy::Ignem,
        MigrationPolicy::Dyrs,
    ];
    let mut tasks = Vec::new();
    for (name, perturb) in perturbations() {
        for p in policies {
            let mut cfg = SimConfig::paper_default(p, seed);
            // default heterogeneity first, so perturbations may replace it
            cfg.interference = vec![InterferenceSchedule::persistent(SLOW_NODE, DD_STREAMS)];
            perturb(&mut cfg);
            let w = swim::generate(&params, seed);
            cfg.files = w.files;
            tasks.push(SimTask::new(format!("{name}/{}", p.name()), cfg, w.jobs));
        }
    }
    let results = run_all(tasks, 0);
    let mean = |name: &str, p: &str| -> f64 {
        results
            .iter()
            .find(|(l, _)| l == &format!("{name}/{p}"))
            .expect("run present")
            .1
            .mean_job_duration_secs()
    };
    let variants = perturbations()
        .iter()
        .map(|(name, _)| {
            let hdfs = mean(name, "HDFS");
            Variant {
                name: name.to_string(),
                dyrs: 1.0 - mean(name, "DYRS") / hdfs,
                ram: 1.0 - mean(name, "HDFS-Inputs-in-RAM") / hdfs,
                ignem: 1.0 - mean(name, "Ignem") / hdfs,
            }
        })
        .collect();
    Sensitivity { variants }
}

/// Render the study.
pub fn render(s: &Sensitivity) -> String {
    let mut tt = TextTable::new(vec!["Variant", "DYRS", "RAM bound", "Ignem", "Conclusions"]);
    for v in &s.variants {
        tt.row(vec![
            v.name.clone(),
            pct(v.dyrs),
            pct(v.ram),
            pct(v.ignem),
            if v.conclusions_hold() {
                "hold".into()
            } else {
                "BROKEN".to_string()
            },
        ]);
    }
    format!(
        "SENSITIVITY — Table I conclusions under model perturbations\n\
         (required everywhere: DYRS > 0, DYRS <= RAM bound, Ignem << DYRS)\n\n{}",
        tt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_hold_under_every_perturbation() {
        let s = run(7, 0.2);
        assert!(s.variants.len() >= 8);
        for v in &s.variants {
            assert!(
                v.conclusions_hold(),
                "{}: DYRS {} RAM {} Ignem {}",
                v.name,
                v.dyrs,
                v.ram,
                v.ignem
            );
        }
    }

    #[test]
    fn spill_writes_reduce_but_do_not_kill_the_benefit() {
        let s = run(7, 0.2);
        let base = s.variant("baseline").dyrs;
        let spill = s.variant("spill-writes-real").dyrs;
        assert!(spill > 0.05, "dirtier disks must not erase DYRS: {spill}");
        // direction: real write contention cannot *increase* the benefit much
        assert!(spill <= base + 0.10, "spill {spill} vs baseline {base}");
    }

    #[test]
    fn render_flags_conclusions() {
        let out = render(&run(7, 0.1));
        assert!(out.contains("Conclusions"));
        assert!(out.contains("baseline"));
    }
}
