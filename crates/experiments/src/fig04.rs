//! Figure 4 — Hive query durations (normalized to HDFS) and input sizes.
//!
//! Paper shapes: HDFS-Inputs-in-RAM ≈ 50% faster on average; DYRS up to
//! ~48% (best on q15), ~36% on average, still >25% on the largest
//! queries; Ignem *slower* than HDFS because it cannot avoid the slow
//! node. Queries are sorted by input size (Fig. 4b).

use crate::render::{bytes, pct, TextTable};
use crate::runner::{run_all, SimTask};
use crate::scenarios::{hetero_config, with_workload};
use dyrs::MigrationPolicy;
use dyrs_sim::SimResult;
use dyrs_workloads::hive;
use serde::{Deserialize, Serialize};

/// Result for one query under one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRun {
    /// Query label ("q15").
    pub query: String,
    /// Configuration name.
    pub config: String,
    /// End-to-end query duration (sum of its sequential stages), seconds.
    pub duration_secs: f64,
}

/// Full Figure 4 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    /// Query labels in input-size order.
    pub queries: Vec<String>,
    /// Query input sizes (Fig. 4b).
    pub input_bytes: Vec<u64>,
    /// All runs.
    pub runs: Vec<QueryRun>,
}

impl Fig4 {
    /// Duration of `query` under `config`.
    pub fn duration(&self, query: &str, config: &str) -> f64 {
        self.runs
            .iter()
            .find(|r| r.query == query && r.config == config)
            .unwrap_or_else(|| panic!("missing run {query}/{config}"))
            .duration_secs
    }

    /// Normalized duration (vs HDFS) of `query` under `config`.
    pub fn normalized(&self, query: &str, config: &str) -> f64 {
        self.duration(query, config) / self.duration(query, "HDFS")
    }

    /// Mean speedup of `config` across queries (1 − normalized).
    pub fn mean_speedup(&self, config: &str) -> f64 {
        let s: f64 = self
            .queries
            .iter()
            .map(|q| 1.0 - self.normalized(q, config))
            .sum();
        s / self.queries.len() as f64
    }

    /// Best speedup of `config` across queries, with the query name.
    pub fn best_speedup(&self, config: &str) -> (String, f64) {
        self.queries
            .iter()
            .map(|q| (q.clone(), 1.0 - self.normalized(q, config)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
    }
}

/// Run all queries under all four configurations. `scale` scales the
/// TPC-DS table sizes (1.0 = paper-like).
pub fn run(seed: u64, scale: f64) -> Fig4 {
    let queries = hive::queries();
    let mut tasks = Vec::new();
    for policy in MigrationPolicy::paper_configs() {
        for (qi, q) in queries.iter().enumerate() {
            let w = hive::query_workload(q, scale, (qi * 10) as u64);
            let (cfg, jobs) = with_workload(hetero_config(policy, seed), w);
            tasks.push(SimTask::new(
                format!("{}/{}", policy.name(), q.name),
                cfg,
                jobs,
            ));
        }
    }
    let results = run_all(tasks, 0);
    let mut runs = Vec::with_capacity(results.len());
    for (label, r) in &results {
        let (config, query) = label.split_once('/').expect("label format");
        runs.push(QueryRun {
            query: query.to_string(),
            config: config.to_string(),
            duration_secs: query_duration(r),
        });
    }
    Fig4 {
        queries: queries.iter().map(|q| q.name.to_string()).collect(),
        input_bytes: queries
            .iter()
            .map(|q| (q.scan_bytes as f64 * scale) as u64)
            .collect(),
        runs,
    }
}

/// A Hive query's stages run strictly sequentially (each stage is
/// submitted at its predecessor's completion), so the query duration is
/// the sum of its stage durations.
fn query_duration(r: &SimResult) -> f64 {
    r.jobs.iter().map(|j| j.duration.as_secs_f64()).sum()
}

/// Render Fig. 4a (normalized durations) and 4b (input sizes).
pub fn render(f: &Fig4) -> String {
    let mut tt = TextTable::new(vec![
        "Query",
        "Input",
        "HDFS",
        "RAM(norm)",
        "Ignem(norm)",
        "DYRS(norm)",
        "DYRS speedup",
    ]);
    for (q, &ib) in f.queries.iter().zip(&f.input_bytes) {
        tt.row(vec![
            q.clone(),
            bytes(ib),
            format!("{:.1}s", f.duration(q, "HDFS")),
            format!("{:.2}", f.normalized(q, "HDFS-Inputs-in-RAM")),
            format!("{:.2}", f.normalized(q, "Ignem")),
            format!("{:.2}", f.normalized(q, "DYRS")),
            pct(1.0 - f.normalized(q, "DYRS")),
        ]);
    }
    // bar panel: normalized DYRS durations, one row per query
    let mut bars = String::from("\nnormalized DYRS duration (shorter is better, | = HDFS):\n");
    for q in &f.queries {
        let norm = f.normalized(q, "DYRS").min(2.0);
        let width = (norm * 30.0).round() as usize;
        bars.push_str(&format!(
            "{q:>4} {}{} {:.2}\n",
            "#".repeat(width),
            if norm <= 1.0 {
                " ".repeat(30 - width) + "|"
            } else {
                String::new()
            },
            f.normalized(q, "DYRS")
        ));
    }
    let (best_q, best) = f.best_speedup("DYRS");
    format!(
        "FIG 4: Hive query durations normalized to HDFS, sorted by input size\n\
         (paper: DYRS up to +48% (q15), avg +36%; RAM avg +50%; Ignem slower)\n\n{}{}\n\
         DYRS: mean speedup {}, best {} on {}\n\
         RAM bound: mean speedup {}\nIgnem: mean speedup {}\n",
        tt.render(),
        bars,
        pct(f.mean_speedup("DYRS")),
        pct(best),
        best_q,
        pct(f.mean_speedup("HDFS-Inputs-in-RAM")),
        pct(f.mean_speedup("Ignem")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_at_reduced_scale() {
        let f = run(11, 0.2);
        assert_eq!(f.queries.len(), 10);
        let ram = f.mean_speedup("HDFS-Inputs-in-RAM");
        let dyrs = f.mean_speedup("DYRS");
        let ignem = f.mean_speedup("Ignem");
        assert!(ram > 0.25, "RAM mean speedup {ram}");
        assert!(dyrs > 0.2, "DYRS mean speedup {dyrs}");
        assert!(dyrs <= ram + 0.03, "DYRS cannot beat the bound");
        assert!(ignem < dyrs - 0.1, "Ignem must trail DYRS badly: {ignem}");
        // every query individually speeds up under DYRS
        for q in &f.queries {
            assert!(
                f.normalized(q, "DYRS") < 1.0,
                "{q} must be faster under DYRS"
            );
        }
    }

    #[test]
    fn input_sizes_sorted() {
        let f = run(11, 0.1);
        assert!(f.input_bytes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn render_mentions_all_queries() {
        let f = run(11, 0.1);
        let s = render(&f);
        for q in &f.queries {
            assert!(s.contains(q.as_str()));
        }
    }
}
