//! `dyrs-verify` CLI. See the library crate for the lint engine.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dyrs_verify::cli::run(&args));
}
