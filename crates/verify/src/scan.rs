//! Workspace traversal: decides which rules apply to which files and
//! drives the two-phase scan (hash-container name collection, then rule
//! checks) crate by crate.

use crate::lexer;
use crate::rules::{self, Finding, HashNames, RuleSet};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Crates whose iteration order can leak into scheduling/targeting
/// decisions (Algorithm 1 and the event loop around it).
const DECISION_CRATES: [&str; 4] = ["core", "dfs", "sim", "engine"];

/// Library crates where `unwrap()`/`panic!` must state the violated
/// invariant (the satellite-task scope plus this crate itself).
const STRICT_LIB_CRATES: [&str; 5] = ["core", "dfs", "cluster", "simkit", "verify"];

/// Scanning configuration for one file.
#[derive(Debug, Clone)]
pub struct ScanContext {
    /// Workspace root all reported paths are relative to.
    pub root: PathBuf,
}

impl ScanContext {
    /// Rule set for a workspace file, from its crate name and location.
    fn rules_for(&self, rel: &str) -> RuleSet {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        let in_src = rel.contains("/src/");
        // crates/net is the workspace's real-I/O fence: its TCP transport
        // legitimately reads the wall clock (socket deadlines) and spawns
        // threads, and it is the one crate allowed to touch std::net. The
        // daemons' *decisions* still run on SimTime ticks.
        let is_net = crate_name == "net";
        // crates/bench measures wall time by definition; its clock reads
        // are the product, not a hazard.
        let is_bench = crate_name == "bench";
        RuleSet {
            nondet_iter: in_src && DECISION_CRATES.contains(&crate_name),
            // The sim only advances SimTime; wall-clock reads and ambient
            // entropy are hazards everywhere else in library code.
            wall_clock: in_src && !is_net && !is_bench,
            ambient_rng: in_src && rel != "crates/simkit/src/rng.rs",
            nan_compare: in_src,
            lib_unwrap: in_src && STRICT_LIB_CRATES.contains(&crate_name),
            net_fence: in_src && !is_net,
            // crates/core/src/sched is the one place allowed to touch the
            // scheduler's raw pending slab; everywhere else must go
            // through its API (mirrors the net fence).
            pending_fence: in_src && !rel.starts_with("crates/core/src/sched"),
        }
    }
}

/// Scan the whole workspace under `root` (all `crates/*/src/**/*.rs`).
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let ctx = ScanContext {
        root: root.to_path_buf(),
    };
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();

        // Phase 1: hash-container names across the crate, so iterating a
        // field declared in another file is still caught.
        let mut sources: BTreeMap<PathBuf, (String, lexer::StrippedSource)> = BTreeMap::new();
        let mut names = HashNames::new();
        for file in &files {
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let stripped = lexer::strip(&text);
            rules::collect_hash_names(&stripped, &mut names);
            sources.insert(file.clone(), (text, stripped));
        }

        // Phase 2: rule checks.
        for (file, (text, stripped)) in &sources {
            let rel = relative_to(file, &ctx.root);
            let rules_for_file = ctx.rules_for(&rel);
            rules::check(stripped, text, &rel, rules_for_file, &names, &mut findings);
        }
    }
    findings.sort_by(|a, b| (a.rule, &a.path, a.line).cmp(&(b.rule, &b.path, b.line)));
    Ok(findings)
}

/// Scan explicitly-listed files (or directories) with every rule enabled —
/// used for lint fixtures and ad-hoc checks.
pub fn scan_file(root: &Path, paths: &[PathBuf]) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();

    let mut names = HashNames::new();
    let mut sources = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let stripped = lexer::strip(&text);
        rules::collect_hash_names(&stripped, &mut names);
        sources.push((file.clone(), text, stripped));
    }
    let mut findings = Vec::new();
    for (file, text, stripped) in &sources {
        let rel = relative_to(file, root);
        rules::check(
            stripped,
            text,
            &rel,
            RuleSet::strict(),
            &names,
            &mut findings,
        );
    }
    findings.sort_by(|a, b| (a.rule, &a.path, a.line).cmp(&(b.rule, &b.path, b.line)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_to(file: &Path, root: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}
