//! Cross-file lock analysis: `dyrs-verify -- locks`.
//!
//! A workspace-wide symbol pass over the stripped sources (see
//! [`crate::lexer`]) that records, per function, which *named locks* are
//! acquired and what happens while each guard is live. Named locks are
//! `Mutex`/`RwLock` struct fields, identified by `Type::field`; `let`
//! locals bound to `Mutex::new(..)` and unresolved `.lock()` receivers
//! participate in guard scoping too (so blocking-under-guard still
//! fires) but stay out of the cross-function ordering graph, since they
//! are per-instance.
//!
//! From the per-function facts and an approximate call graph (call sites
//! resolve to a function only when its bare name is defined exactly once
//! in the analyzed set — deterministic, and ambiguity simply narrows the
//! analysis rather than polluting it), the pass computes the transitive
//! lock-acquisition graph and reports:
//!
//! * **lock-cycle** — cycles in the acquisition graph: two code paths
//!   that take the same locks in opposite orders can deadlock;
//! * **lock-blocking** — a blocking operation (channel `send`/`recv`,
//!   `write_all`/`read_exact`, `join`, `accept`, …) executed — directly
//!   or via a call — while a guard is live;
//! * **lock-hierarchy** — an acquisition edge that contradicts the
//!   declared order in the workspace `locks.toml` manifest.
//!
//! ## Guard-scope model
//!
//! The tracker is lexical but mirrors Rust's temporary rules:
//!
//! * `let g = x.lock().unwrap();` — guard lives to the end of the
//!   enclosing block (or an explicit `drop(g)`);
//! * `x.lock().unwrap().push(1);` — a temporary: the guard dies at the
//!   end of the statement;
//! * `let v = x.lock().unwrap().get(k).cloned();` — also a temporary
//!   (the binding holds the *clone*, not the guard), so a blocking call
//!   on the next line is correctly not flagged;
//! * `if let Ok(g) = x.lock() { … }` / `match x.lock() { … }` /
//!   `for v in x.lock().unwrap().iter() { … }` — the guard spans the
//!   attached block.
//!
//! `crates/verify/tests/locks_proptest.rs` checks the tracker stays
//! balanced on arbitrary brace/guard nesting.

use crate::graph::Digraph;
use crate::lexer::{self, StrippedSource};
use crate::rules::{Finding, Rule};
use crate::tokens::{
    has_token, is_ident_byte, is_ident_start, line_of, matching_brace, matching_paren, next_ident,
    token_pos,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Operations that can block the calling thread. Matched as `.op(` /
/// `::op(` method- or path-call tokens.
const BLOCKING_OPS: [&str; 12] = [
    "send",
    "recv",
    "recv_timeout",
    "write_all",
    "read_exact",
    "join",
    "accept",
    "wait",
    "wait_timeout",
    "sleep",
    "connect",
    "flush",
];

/// Guard-result adapters that keep the expression a guard.
const GUARD_ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// Identifiers that look like calls but are control flow or bindings.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "let", "mut", "move", "in", "as", "else", "loop",
    "break", "continue",
];

// ---------------------------------------------------------------------------
// Lock identities
// ---------------------------------------------------------------------------

/// A named lock.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockRef {
    /// `Type::field` for struct fields, `fn::var` for locals/unresolved.
    pub id: String,
    /// Whether this is a shared (struct-field) lock that participates in
    /// the cross-function ordering graph.
    pub shared: bool,
}

/// One closed guard scope (exposed for the nesting proptest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardScope {
    /// The lock held over the scope.
    pub lock: String,
    /// 1-based line of the acquisition.
    pub start_line: usize,
    /// 1-based line where the guard dies (statement end, `drop`, or the
    /// closing brace of its block).
    pub end_line: usize,
}

// ---------------------------------------------------------------------------
// Per-function facts
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct BlockSite {
    op: String,
    path: String,
    line: usize,
}

#[derive(Debug, Clone)]
struct EdgeSite {
    from: String,
    to: String,
    path: String,
    line: usize,
    via: Option<String>,
}

#[derive(Debug, Clone)]
struct GuardedCall {
    held: Vec<LockRef>,
    callee: String,
    /// Written as `recv.callee(..)` (vs a free/path call) — used to match
    /// the call site against definitions with/without a `self` param.
    method: bool,
    line: usize,
}

#[derive(Debug, Default, Clone)]
struct FnFacts {
    path: String,
    /// Whether the definition takes a `self` parameter — a `.call()`
    /// site only resolves to a method, a free/path call only to a free
    /// fn, which keeps std trait methods (`.collect()`, `.iter()`) from
    /// resolving to unrelated workspace functions of the same name.
    has_self: bool,
    /// Shared locks acquired anywhere in the body.
    acquired: BTreeSet<String>,
    /// Blocking ops anywhere in the body.
    blocking: Vec<BlockSite>,
    /// Every call-looking token in the body: `(bare name, is_method)`.
    calls: BTreeSet<(String, bool)>,
    /// Direct acquisition-order edges observed under live guards.
    edges: Vec<EdgeSite>,
    /// Blocking ops observed under live guards (direct findings).
    guarded_blocking: Vec<(Vec<LockRef>, BlockSite)>,
    /// Calls made under live guards (resolved transitively later).
    guarded_calls: Vec<GuardedCall>,
}

// ---------------------------------------------------------------------------
// Hierarchy manifest
// ---------------------------------------------------------------------------

/// The declared lock order from `locks.toml`: earlier entries must be
/// acquired before later ones whenever both are held.
#[derive(Debug, Default, Clone)]
pub struct Hierarchy {
    order: Vec<String>,
}

impl Hierarchy {
    /// Parse the `order = [ "…", … ]` array from manifest text. Lines
    /// starting with `#` are comments; unknown keys are ignored.
    pub fn parse(text: &str) -> Result<Hierarchy, String> {
        let mut in_order = false;
        let mut done = false;
        let mut order = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut rest = line;
            if !in_order {
                let Some(after) = line.strip_prefix("order") else {
                    continue;
                };
                let after = after.trim_start();
                let Some(after) = after.strip_prefix('=') else {
                    continue;
                };
                rest = after.trim_start();
                let Some(after) = rest.strip_prefix('[') else {
                    return Err(format!("locks manifest line {}: expected `[`", i + 1));
                };
                in_order = true;
                rest = after;
            }
            // Collect quoted names from this (possibly partial) line.
            let mut s = rest;
            loop {
                s = s.trim_start().trim_start_matches(',').trim_start();
                if let Some(tail) = s.strip_prefix(']') {
                    let _ = tail;
                    in_order = false;
                    done = true;
                    break;
                }
                let Some(open) = s.strip_prefix('"') else {
                    break;
                };
                let Some(close) = open.find('"') else {
                    return Err(format!(
                        "locks manifest line {}: unterminated string",
                        i + 1
                    ));
                };
                order.push(open[..close].to_owned());
                s = &open[close + 1..];
            }
            if done {
                break;
            }
        }
        if !done && !order.is_empty() {
            return Err("locks manifest: `order = [...]` never closed".into());
        }
        Ok(Hierarchy { order })
    }

    /// Number of declared locks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no order is declared.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    fn index(&self, lock: &str) -> Option<usize> {
        self.order.iter().position(|l| l == lock)
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Analyze the whole workspace under `root` (all `crates/*/src/**/*.rs`),
/// checking acquisition edges against `manifest` when provided.
pub fn analyze_workspace(root: &Path, manifest: Option<&Path>) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    analyze_files(root, &files, manifest)
}

/// Analyze explicitly-listed files or directories (fixture mode).
pub fn analyze_paths(
    root: &Path,
    paths: &[PathBuf],
    manifest: Option<&Path>,
) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    analyze_files(root, &files, manifest)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn analyze_files(
    root: &Path,
    files: &[PathBuf],
    manifest: Option<&Path>,
) -> Result<Vec<Finding>, String> {
    let hierarchy = match manifest {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            Some(Hierarchy::parse(&text)?)
        }
        None => None,
    };
    let mut files = files.to_vec();
    files.sort();
    let mut sources = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, text));
    }
    Ok(analyze_sources(&sources, hierarchy.as_ref()))
}

/// Analyze in-memory sources (`(workspace-relative path, text)` pairs) —
/// the core of the pass, also used directly by tests.
pub fn analyze_sources(
    sources: &[(String, String)],
    hierarchy: Option<&Hierarchy>,
) -> Vec<Finding> {
    // Phase 1: lock fields across every source, so acquiring a field
    // declared in another file still resolves to its `Type::field` id.
    let mut fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut stripped: Vec<(String, StrippedSource, String)> = Vec::new();
    for (rel, text) in sources {
        let s = lexer::strip(text);
        collect_lock_fields(s.text(), &mut fields);
        stripped.push((rel.clone(), s, text.clone()));
    }

    // Phase 2: per-function facts.
    let mut fns: BTreeMap<String, Vec<FnFacts>> = BTreeMap::new();
    for (rel, s, _) in &stripped {
        for (name, facts) in analyze_file_fns(rel, s, &fields) {
            fns.entry(name).or_default().push(facts);
        }
    }

    // A call resolves only when its bare name has exactly one definition
    // *and* the call style matches the definition: `.call()` sites only
    // resolve to methods (a `self` param), free/path calls only to free
    // fns — otherwise `.collect()` would resolve to any workspace fn
    // that happens to be named `collect`.
    let unique: BTreeMap<&str, &FnFacts> = fns
        .iter()
        .filter(|(_, v)| v.len() == 1)
        .map(|(k, v)| (k.as_str(), &v[0]))
        .collect();
    let resolve = |callee: &str, method: bool| -> Option<&&FnFacts> {
        unique.get(callee).filter(|f| f.has_self == method)
    };

    // Call graph over resolvable names, for transitive summaries.
    let mut callg = Digraph::new();
    for (name, list) in &fns {
        for facts in list {
            for (callee, method) in &facts.calls {
                if resolve(callee, *method).is_some() {
                    callg.add_edge(name, callee);
                }
            }
        }
    }
    let trans_locks = |f: &str| -> BTreeSet<String> {
        let mut out = unique
            .get(f)
            .map(|x| x.acquired.clone())
            .unwrap_or_default();
        for g in callg.reachable_from(f) {
            if let Some(facts) = unique.get(g.as_str()) {
                out.extend(facts.acquired.iter().cloned());
            }
        }
        out
    };
    let trans_blocking = |f: &str| -> Option<BlockSite> {
        let mut best: Option<BlockSite> = None;
        let mut consider = |s: &BlockSite| {
            let key = (s.path.clone(), s.line, s.op.clone());
            if best
                .as_ref()
                .map(|b| key < (b.path.clone(), b.line, b.op.clone()))
                .unwrap_or(true)
            {
                best = Some(s.clone());
            }
        };
        if let Some(facts) = unique.get(f) {
            facts.blocking.iter().for_each(&mut consider);
        }
        for g in callg.reachable_from(f) {
            if let Some(facts) = unique.get(g.as_str()) {
                facts.blocking.iter().for_each(&mut consider);
            }
        }
        best
    };

    // Phase 3: assemble the lock graph and the findings.
    let mut findings = Vec::new();
    let mut lockg = Digraph::new();
    let mut edge_sites: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    let record_edge = |lockg: &mut Digraph,
                       edge_sites: &mut BTreeMap<(String, String), EdgeSite>,
                       e: EdgeSite| {
        lockg.add_edge(&e.from, &e.to);
        edge_sites
            .entry((e.from.clone(), e.to.clone()))
            .or_insert(e);
    };

    let excerpt = |path: &str, line: usize| -> String {
        stripped
            .iter()
            .find(|(rel, _, _)| rel == path)
            .and_then(|(_, _, orig)| orig.lines().nth(line.saturating_sub(1)))
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    };

    for list in fns.values() {
        for facts in list {
            for e in &facts.edges {
                record_edge(&mut lockg, &mut edge_sites, e.clone());
            }
            for (held, site) in &facts.guarded_blocking {
                let held_names: Vec<&str> = held.iter().map(|l| l.id.as_str()).collect();
                findings.push(Finding {
                    rule: Rule::LockBlocking,
                    path: site.path.clone(),
                    line: site.line,
                    excerpt: excerpt(&site.path, site.line),
                    message: format!(
                        "blocking `{}` while holding lock{} {}; narrow the guard so the lock \
                         is released before blocking",
                        site.op,
                        if held_names.len() == 1 { "" } else { "s" },
                        held_names.join(", "),
                    ),
                });
            }
            for call in &facts.guarded_calls {
                if resolve(&call.callee, call.method).is_none() {
                    continue;
                }
                let callee_locks = trans_locks(&call.callee);
                for from in call.held.iter().filter(|l| l.shared) {
                    for to in &callee_locks {
                        if *to != from.id {
                            record_edge(
                                &mut lockg,
                                &mut edge_sites,
                                EdgeSite {
                                    from: from.id.clone(),
                                    to: to.clone(),
                                    path: facts.path.clone(),
                                    line: call.line,
                                    via: Some(call.callee.clone()),
                                },
                            );
                        }
                    }
                }
                if let Some(site) = trans_blocking(&call.callee) {
                    let held_names: Vec<&str> = call.held.iter().map(|l| l.id.as_str()).collect();
                    findings.push(Finding {
                        rule: Rule::LockBlocking,
                        path: facts.path.clone(),
                        line: call.line,
                        excerpt: excerpt(&facts.path, call.line),
                        message: format!(
                            "call to `{}` blocks (`{}` at {}:{}) while holding lock{} {}",
                            call.callee,
                            site.op,
                            site.path,
                            site.line,
                            if held_names.len() == 1 { "" } else { "s" },
                            held_names.join(", "),
                        ),
                    });
                }
            }
        }
    }

    // Cycles — potential deadlocks.
    for cycle in lockg.cycles() {
        let mut legs = Vec::new();
        for i in 0..cycle.len() {
            let from = &cycle[i];
            let to = &cycle[(i + 1) % cycle.len()];
            if let Some(site) = edge_sites.get(&(from.clone(), to.clone())) {
                let via = site
                    .via
                    .as_ref()
                    .map(|f| format!(" via {f}()"))
                    .unwrap_or_default();
                legs.push(format!(
                    "{from} -> {to} at {}:{}{via}",
                    site.path, site.line
                ));
            }
        }
        let anchor = edge_sites
            .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
            .cloned();
        let (path, line) = anchor
            .map(|s| (s.path, s.line))
            .unwrap_or_else(|| (String::new(), 1));
        let mut ring = cycle.clone();
        ring.push(cycle[0].clone());
        findings.push(Finding {
            rule: Rule::LockCycle,
            path: path.clone(),
            line,
            excerpt: excerpt(&path, line),
            message: format!(
                "lock-order cycle {} — potential deadlock; pick one acquisition order \
                 (legs: {})",
                ring.join(" -> "),
                legs.join("; "),
            ),
        });
    }

    // Hierarchy violations.
    if let Some(h) = hierarchy {
        for ((from, to), site) in &edge_sites {
            if let (Some(fi), Some(ti)) = (h.index(from), h.index(to)) {
                if fi > ti {
                    let via = site
                        .via
                        .as_ref()
                        .map(|f| format!(" (via call to {f}())"))
                        .unwrap_or_default();
                    findings.push(Finding {
                        rule: Rule::LockHierarchy,
                        path: site.path.clone(),
                        line: site.line,
                        excerpt: excerpt(&site.path, site.line),
                        message: format!(
                            "lock `{to}` acquired while holding `{from}`{via}, but the \
                             locks.toml manifest orders `{to}` (#{}) before `{from}` (#{})",
                            ti + 1,
                            fi + 1,
                        ),
                    });
                }
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    findings.dedup();
    findings
}

// ---------------------------------------------------------------------------
// Symbol pass: lock fields
// ---------------------------------------------------------------------------

/// Record `Type::field` for every struct field whose type mentions
/// `Mutex<` or `RwLock<` (at any nesting depth — `Arc<Mutex<…>>` counts).
fn collect_lock_fields(stripped: &str, out: &mut BTreeMap<String, BTreeSet<String>>) {
    let bytes = stripped.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let Some((tok, start, end)) = next_ident(bytes, i) else {
            break;
        };
        i = end;
        if tok != "struct" {
            continue;
        }
        // `struct` must start a declaration, not be part of a path.
        if start > 0 && (bytes[start - 1] == b':' || is_ident_byte(bytes[start - 1])) {
            continue;
        }
        let Some((name, _, after_name)) = next_ident(bytes, end) else {
            continue;
        };
        // Walk to the body `{` (skipping generics) or a `;`/`(` (unit or
        // tuple struct — no named fields).
        let mut j = after_name;
        let mut body_open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    body_open = Some(j);
                    break;
                }
                b';' | b'(' => break,
                _ => j += 1,
            }
        }
        let Some(open) = body_open else { continue };
        let close = matching_brace(bytes, open);
        // Fields: `ident :` at depth 1, type runs to the `,` at depth 1.
        let body = &stripped[open + 1..close];
        let mut depth = 0i32;
        let mut field_start = 0usize;
        let b2 = body.as_bytes();
        for (k, &c) in b2.iter().enumerate() {
            match c {
                b'{' | b'(' | b'[' | b'<' => depth += 1,
                b'}' | b')' | b']' | b'>' => depth -= 1,
                b',' if depth <= 0 => {
                    record_lock_field(&body[field_start..k], name, out);
                    field_start = k + 1;
                }
                _ => {}
            }
        }
        record_lock_field(&body[field_start..], name, out);
        i = close;
    }
}

fn record_lock_field(field_decl: &str, owner: &str, out: &mut BTreeMap<String, BTreeSet<String>>) {
    let Some((fname, ftype)) = field_decl.split_once(':') else {
        return;
    };
    if !(has_token(ftype, "Mutex") || has_token(ftype, "RwLock")) {
        return;
    }
    let fname = fname
        .trim()
        .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .next()
        .unwrap_or("")
        .trim();
    if fname.is_empty() {
        return;
    }
    out.entry(fname.to_owned())
        .or_default()
        .insert(owner.to_owned());
}

// ---------------------------------------------------------------------------
// Function extraction and the guard-scope walker
// ---------------------------------------------------------------------------

struct FnSpan {
    name: String,
    line: usize,
    has_self: bool,
    body: std::ops::Range<usize>,
}

fn find_fns(stripped: &str) -> Vec<FnSpan> {
    let bytes = stripped.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let Some((tok, start, end)) = next_ident(bytes, i) else {
            break;
        };
        i = end;
        if tok != "fn" || (start > 0 && is_ident_byte(bytes[start - 1])) {
            continue;
        }
        let Some((name, _, after_name)) = next_ident(bytes, end) else {
            continue;
        };
        // Signature runs to the body `{` or a trait-decl `;` at paren
        // depth 0.
        let mut j = after_name;
        let mut paren = 0i32;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => {
                    open = Some(j);
                    break;
                }
                b';' if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching_brace(bytes, open);
        let has_self = has_token(&stripped[after_name..open], "self");
        out.push(FnSpan {
            name: name.to_owned(),
            line: line_of(bytes, start),
            has_self,
            body: open..close + 1,
        });
        // Continue *inside* the body so nested fns are found too; the
        // walker skips nested bodies itself.
        i = open + 1;
    }
    out
}

fn analyze_file_fns(
    rel: &str,
    stripped: &StrippedSource,
    fields: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<(String, FnFacts)> {
    let mut out = Vec::new();
    for span in find_fns(stripped.text()) {
        if stripped.in_test_region(span.line) {
            continue;
        }
        let mut walker = Walker::new(rel, &span.name, stripped.text(), span.body.clone(), fields);
        walker.run();
        walker.facts.has_self = span.has_self;
        out.push((span.name, walker.facts));
    }
    out
}

/// Run the guard-scope tracker over *every* function in `source` and
/// return the closed scopes — the proptest hook.
pub fn guard_scopes(source: &str) -> Vec<GuardScope> {
    let stripped = lexer::strip(source);
    let fields = {
        let mut f = BTreeMap::new();
        collect_lock_fields(stripped.text(), &mut f);
        f
    };
    let mut scopes = Vec::new();
    for span in find_fns(stripped.text()) {
        let mut walker = Walker::new("<mem>", &span.name, stripped.text(), span.body, &fields);
        walker.run();
        scopes.extend(walker.scopes);
    }
    scopes.sort_by(|a, b| {
        (a.start_line, a.end_line, &a.lock).cmp(&(b.start_line, b.end_line, &b.lock))
    });
    scopes
}

#[derive(Debug, Clone, PartialEq)]
enum Scope {
    /// Dies when the block at this brace depth closes.
    Block(usize),
    /// Dies at the end of the statement (next `;` at this depth).
    Stmt(usize),
    /// Waiting for the `{` that starts its block (`if let` / `match`).
    Pending,
}

#[derive(Debug, Clone)]
struct Guard {
    lock: LockRef,
    scope: Scope,
    name: Option<String>,
    start_line: usize,
}

struct Walker<'a> {
    path: String,
    fn_name: String,
    text: &'a str,
    bytes: &'a [u8],
    i: usize,
    end: usize,
    fields: &'a BTreeMap<String, BTreeSet<String>>,
    locals: BTreeSet<String>,
    depth: usize,
    paren: i32,
    /// Paren depth at each enclosing block's entry — a `;` only ends a
    /// statement when the paren depth is back to the current block's
    /// baseline (closure bodies inside call arguments sit at baseline
    /// ≥ 1, so their statements still terminate guards correctly).
    paren_at_block: Vec<i32>,
    guards: Vec<Guard>,
    // Statement state.
    stmt_has_let: bool,
    let_name: Option<String>,
    expect_let_name: bool,
    stmt_keyword: Option<String>,
    stmt_watermark: usize,
    prev_ident: Option<String>,
    facts: FnFacts,
    scopes: Vec<GuardScope>,
}

impl<'a> Walker<'a> {
    fn new(
        rel: &str,
        fn_name: &str,
        text: &'a str,
        body: std::ops::Range<usize>,
        fields: &'a BTreeMap<String, BTreeSet<String>>,
    ) -> Self {
        Walker {
            path: rel.to_owned(),
            fn_name: fn_name.to_owned(),
            text,
            bytes: text.as_bytes(),
            i: body.start + 1, // past the opening `{`
            end: body.end.saturating_sub(1),
            fields,
            locals: BTreeSet::new(),
            depth: 1,
            paren: 0,
            paren_at_block: vec![0],
            guards: Vec::new(),
            stmt_has_let: false,
            let_name: None,
            expect_let_name: false,
            stmt_keyword: None,
            stmt_watermark: 0,
            prev_ident: None,
            facts: FnFacts {
                path: rel.to_owned(),
                ..FnFacts::default()
            },
            scopes: Vec::new(),
        }
    }

    fn line_at(&self, pos: usize) -> usize {
        line_of(self.bytes, pos)
    }

    fn reset_stmt(&mut self) {
        self.stmt_has_let = false;
        self.let_name = None;
        self.expect_let_name = false;
        self.stmt_keyword = None;
        self.stmt_watermark = self.guards.len();
    }

    fn close_guard(&mut self, idx: usize, line: usize) {
        let g = self.guards.remove(idx);
        self.scopes.push(GuardScope {
            lock: g.lock.id,
            start_line: g.start_line,
            end_line: line,
        });
    }

    fn close_where(&mut self, line: usize, pred: impl Fn(&Guard) -> bool) {
        let mut i = 0;
        while i < self.guards.len() {
            if pred(&self.guards[i]) {
                self.close_guard(i, line);
            } else {
                i += 1;
            }
        }
        self.stmt_watermark = self.stmt_watermark.min(self.guards.len());
    }

    fn run(&mut self) {
        while self.i < self.end {
            let b = self.bytes[self.i];
            match b {
                b'{' => {
                    self.depth += 1;
                    // `if let`/`match`/`for`/`while` headers: their
                    // guards span the attached block.
                    let control = matches!(
                        self.stmt_keyword.as_deref(),
                        Some("if" | "while" | "for" | "match" | "loop")
                    );
                    let depth = self.depth;
                    for g in &mut self.guards {
                        if g.scope == Scope::Pending
                            || (control && matches!(g.scope, Scope::Stmt(_)))
                        {
                            g.scope = Scope::Block(depth);
                        }
                    }
                    self.paren_at_block.push(self.paren);
                    self.reset_stmt();
                    self.i += 1;
                }
                b'}' => {
                    let line = self.line_at(self.i);
                    let depth = self.depth;
                    self.close_where(
                        line,
                        |g| matches!(g.scope, Scope::Block(d) | Scope::Stmt(d) if d == depth),
                    );
                    self.depth = self.depth.saturating_sub(1);
                    if self.paren_at_block.len() > 1 {
                        self.paren_at_block.pop();
                    }
                    self.reset_stmt();
                    self.i += 1;
                }
                b'(' | b'[' => {
                    self.paren += 1;
                    self.i += 1;
                }
                b')' | b']' => {
                    self.paren -= 1;
                    self.i += 1;
                }
                b';' if self.paren == *self.paren_at_block.last().unwrap_or(&0) => {
                    let line = self.line_at(self.i);
                    let depth = self.depth;
                    self.close_where(line, |g| matches!(g.scope, Scope::Stmt(d) if d == depth));
                    self.reset_stmt();
                    self.i += 1;
                }
                _ if is_ident_start(b) => {
                    self.on_ident();
                }
                _ => {
                    self.i += 1;
                }
            }
        }
        // Function end: whatever is still open dies at the closing brace.
        let line = self.line_at(self.end.min(self.bytes.len().saturating_sub(1)));
        self.close_where(line, |_| true);
    }

    fn on_ident(&mut self) {
        let start = self.i;
        let mut j = start;
        while j < self.end && is_ident_byte(self.bytes[j]) {
            j += 1;
        }
        let ident = &self.text[start..j];
        self.i = j;
        let line = self.line_at(start);

        // Nested fn: skip its body entirely (it gets its own walk).
        if ident == "fn" && !self.preceded_by_ident(start) {
            if let Some(open) = self.find_body_open(j) {
                self.i = matching_brace(self.bytes, open) + 1;
            }
            return;
        }

        if self.stmt_keyword.is_none() {
            self.stmt_keyword = Some(ident.to_owned());
        }
        if ident == "let" {
            self.stmt_has_let = true;
            self.expect_let_name = true;
            self.prev_ident = Some(ident.to_owned());
            return;
        }
        if self.expect_let_name && ident != "mut" {
            self.let_name = Some(ident.to_owned());
            self.expect_let_name = false;
        }

        let preceded_dot = start > 0 && self.bytes[start - 1] == b'.';
        let preceded_colons =
            start > 1 && self.bytes[start - 1] == b':' && self.bytes[start - 2] == b':';
        let next = self.peek_nonspace(j);

        // `let x = Mutex::new(..)` / `let x: Mutex<..> = ..`: a local lock.
        if (ident == "Mutex" || ident == "RwLock") && self.stmt_has_let {
            if let Some(name) = self.let_name.clone() {
                self.locals.insert(name);
            }
        }

        // drop(g) kills a named guard early.
        if ident == "drop" && next == Some(b'(') {
            let open = self.pos_nonspace(j);
            let close = matching_paren(self.bytes, open);
            let arg = self.text[open + 1..close].trim();
            let arg = arg.trim_start_matches("&mut ").trim_start_matches('&');
            if let Some(idx) = self
                .guards
                .iter()
                .position(|g| g.name.as_deref() == Some(arg))
            {
                self.close_guard(idx, line);
            }
            self.prev_ident = Some(ident.to_owned());
            return;
        }

        // Acquisitions.
        if next == Some(b'(') {
            let open = self.pos_nonspace(j);
            let close = matching_paren(self.bytes, open);
            if ident == "lock" && (preceded_dot || preceded_colons) {
                let lock = if preceded_dot {
                    self.resolve_receiver()
                } else {
                    self.resolve_lock_arg(open, close)
                };
                if let Some(lock) = lock {
                    self.acquire(lock, line, close);
                    self.prev_ident = Some(ident.to_owned());
                    return;
                }
            }
            if (ident == "read" || ident == "write")
                && preceded_dot
                && self.text[open + 1..close].trim().is_empty()
            {
                // Zero-arg `.read()`/`.write()` on a known lock only —
                // everything else is I/O, not an RwLock.
                if let Some(lock) = self.resolve_receiver().filter(|l| l.shared) {
                    self.acquire(lock, line, close);
                    self.prev_ident = Some(ident.to_owned());
                    return;
                }
            }
            // Blocking operations.
            if BLOCKING_OPS.contains(&ident) && (preceded_dot || preceded_colons) {
                let site = BlockSite {
                    op: ident.to_owned(),
                    path: self.path.clone(),
                    line,
                };
                if !self.guards.is_empty() {
                    self.facts
                        .guarded_blocking
                        .push((self.held(), site.clone()));
                }
                self.facts.blocking.push(site);
                self.prev_ident = Some(ident.to_owned());
                return;
            }
            // A plain call (possibly resolvable to a workspace fn).
            let is_macro = self.bytes.get(j).copied() == Some(b'!');
            if !is_macro && !NON_CALL_KEYWORDS.contains(&ident) && !GUARD_ADAPTERS.contains(&ident)
            {
                self.facts.calls.insert((ident.to_owned(), preceded_dot));
                if !self.guards.is_empty() {
                    self.facts.guarded_calls.push(GuardedCall {
                        held: self.held(),
                        callee: ident.to_owned(),
                        method: preceded_dot,
                        line,
                    });
                }
            }
        }

        self.prev_ident = Some(ident.to_owned());
    }

    fn held(&self) -> Vec<LockRef> {
        self.guards.iter().map(|g| g.lock.clone()).collect()
    }

    /// Push a new guard for `lock` acquired at `line`; `close` is the
    /// byte offset of the acquisition call's closing paren.
    fn acquire(&mut self, lock: LockRef, line: usize, close: usize) {
        // Order edges: every held shared lock precedes the new one.
        for g in &self.guards {
            if g.lock.shared && lock.shared && g.lock.id != lock.id {
                self.facts.edges.push(EdgeSite {
                    from: g.lock.id.clone(),
                    to: lock.id.clone(),
                    path: self.path.clone(),
                    line,
                    via: None,
                });
            }
        }
        if lock.shared {
            self.facts.acquired.insert(lock.id.clone());
        }
        let scope = self.classify_scope(close + 1);
        let name = if matches!(scope, Scope::Block(_)) {
            self.let_name.clone()
        } else {
            None
        };
        self.guards.push(Guard {
            lock,
            scope,
            name,
            start_line: line,
        });
    }

    /// Decide the guard's lifetime from what follows the acquisition.
    fn classify_scope(&self, mut j: usize) -> Scope {
        loop {
            j = self.pos_nonspace(j);
            if j >= self.end {
                return Scope::Stmt(self.depth);
            }
            match self.bytes[j] {
                b'.' => {
                    // A chained adapter keeps the guard; any other method
                    // means the binding holds a derived value, so the
                    // guard is a statement temporary.
                    let Some((ident, _, after)) = next_ident(self.bytes, j + 1) else {
                        return Scope::Stmt(self.depth);
                    };
                    if GUARD_ADAPTERS.contains(&ident) {
                        let open = self.pos_nonspace(after);
                        if self.bytes.get(open).copied() == Some(b'(') {
                            j = matching_paren(self.bytes, open) + 1;
                            continue;
                        }
                    }
                    return Scope::Stmt(self.depth);
                }
                b';' => {
                    return if self.stmt_has_let {
                        Scope::Block(self.depth)
                    } else {
                        Scope::Stmt(self.depth)
                    };
                }
                b'{' => return Scope::Pending,
                b'?' => {
                    j += 1;
                }
                _ => return Scope::Stmt(self.depth),
            }
        }
    }

    /// `recv.lock()` — resolve the receiver identifier to a lock.
    fn resolve_receiver(&self) -> Option<LockRef> {
        let recv = self.prev_ident.as_deref()?;
        self.lock_ref_for(recv)
    }

    /// `Helper::lock(&self.outbound)` — resolve a lock named in the args.
    fn resolve_lock_arg(&self, open: usize, close: usize) -> Option<LockRef> {
        let args = &self.text[open + 1..close];
        // Leftmost known lock field wins; fall back to the last path
        // segment of the first `&`-prefixed argument.
        let mut best: Option<(usize, LockRef)> = None;
        for name in self.fields.keys() {
            if let Some(pos) = token_pos(args, name) {
                let r = self.lock_ref_for(name).filter(|l| l.shared);
                if let Some(r) = r {
                    if best.as_ref().map(|(p, _)| pos < *p).unwrap_or(true) {
                        best = Some((pos, r));
                    }
                }
            }
        }
        if let Some((_, r)) = best {
            return Some(r);
        }
        let arg = args.split(',').next()?.trim();
        let arg = arg.trim_start_matches("&mut ").trim_start_matches('&');
        let last = arg
            .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .find(|s| !s.is_empty())?;
        self.lock_ref_for(last)
    }

    fn lock_ref_for(&self, name: &str) -> Option<LockRef> {
        if let Some(owners) = self.fields.get(name) {
            let id = if owners.len() == 1 {
                format!("{}::{}", owners.first().expect("non-empty owner set"), name)
            } else {
                format!("?::{name}")
            };
            return Some(LockRef { id, shared: true });
        }
        if name.is_empty() || name == "self" {
            return None;
        }
        // A local or unresolved receiver: participates in guard scoping
        // (blocking-under-guard) but not in the shared ordering graph.
        Some(LockRef {
            id: format!("{}::{}::{}", self.fn_name, "local", name),
            shared: false,
        })
    }

    fn preceded_by_ident(&self, start: usize) -> bool {
        start > 0 && is_ident_byte(self.bytes[start - 1])
    }

    fn peek_nonspace(&self, from: usize) -> Option<u8> {
        self.bytes.get(self.pos_nonspace(from)).copied()
    }

    fn pos_nonspace(&self, mut j: usize) -> usize {
        while j < self.bytes.len() && (self.bytes[j] as char).is_whitespace() {
            j += 1;
        }
        j
    }

    fn find_body_open(&self, mut j: usize) -> Option<usize> {
        let mut paren = 0i32;
        while j < self.end {
            match self.bytes[j] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => return Some(j),
                b';' if paren == 0 => return None,
                _ => {}
            }
            j += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, manifest: Option<&str>) -> Vec<Finding> {
        let h = manifest.map(|m| Hierarchy::parse(m).expect("manifest parses"));
        analyze_sources(&[("mem.rs".to_owned(), src.to_owned())], h.as_ref())
    }

    #[test]
    fn blocking_send_under_let_guard_flagged() {
        let src = "struct S { q: Mutex<u32> }\n\
                   fn f(s: &S, tx: &Sender<u8>) {\n\
                       let g = s.q.lock().unwrap();\n\
                       tx.send(1).ok();\n\
                   }\n";
        let f = run(src, None);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::LockBlocking && f.line == 4),
            "{f:#?}"
        );
    }

    #[test]
    fn temporary_guard_does_not_cover_next_statement() {
        let src = "struct S { q: Mutex<Vec<u8>> }\n\
                   fn f(s: &S, tx: &Sender<u8>) {\n\
                       s.q.lock().unwrap().push(1);\n\
                       tx.send(1).ok();\n\
                   }\n";
        let f = run(src, None);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn cloned_binding_is_not_a_guard() {
        // The binding holds the clone, not the guard (Rust drops the
        // temporary at the end of the statement).
        let src = "struct S { q: Mutex<Vec<Sender<u8>>> }\n\
                   fn f(s: &S) {\n\
                       let tx = s.q.lock().unwrap().first().cloned().unwrap();\n\
                       tx.send(1).ok();\n\
                   }\n";
        let f = run(src, None);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn drop_releases_the_guard_early() {
        let src = "struct S { q: Mutex<u32> }\n\
                   fn f(s: &S, tx: &Sender<u8>) {\n\
                       let g = s.q.lock().unwrap();\n\
                       drop(g);\n\
                       tx.send(1).ok();\n\
                   }\n";
        let f = run(src, None);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn helper_style_acquisition_resolves_the_field() {
        let src = "struct S { outbound: Mutex<u32> }\n\
                   fn f(s: &S, tx: &Sender<u8>) {\n\
                       let g = Shared::lock(&s.outbound);\n\
                       tx.send(1).ok();\n\
                   }\n";
        let f = run(src, None);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::LockBlocking && f.message.contains("S::outbound")),
            "{f:#?}"
        );
    }

    #[test]
    fn opposite_order_is_a_cycle() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn ab(s: &S) { let x = s.a.lock().unwrap(); let y = s.b.lock().unwrap(); }\n\
                   fn ba(s: &S) { let y = s.b.lock().unwrap(); let x = s.a.lock().unwrap(); }\n";
        let f = run(src, None);
        assert!(f.iter().any(|f| f.rule == Rule::LockCycle), "{f:#?}");
    }

    #[test]
    fn transitive_cycle_via_call_graph() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn take_b(s: &S) { let y = s.b.lock().unwrap(); }\n\
                   fn ab(s: &S) { let x = s.a.lock().unwrap(); take_b(s); }\n\
                   fn ba(s: &S) { let y = s.b.lock().unwrap(); let x = s.a.lock().unwrap(); }\n";
        let f = run(src, None);
        assert!(f.iter().any(|f| f.rule == Rule::LockCycle), "{f:#?}");
    }

    #[test]
    fn hierarchy_violation_flagged() {
        let src = "struct S { low: Mutex<u32>, high: Mutex<u32> }\n\
                   fn f(s: &S) { let g = s.high.lock().unwrap(); let h = s.low.lock().unwrap(); }\n";
        let manifest = "order = [\"S::low\", \"S::high\"]\n";
        let f = run(src, Some(manifest));
        assert!(f.iter().any(|f| f.rule == Rule::LockHierarchy), "{f:#?}");
        let ok = "struct S { low: Mutex<u32>, high: Mutex<u32> }\n\
                  fn f(s: &S) { let g = s.low.lock().unwrap(); let h = s.high.lock().unwrap(); }\n";
        let f = run(ok, Some(manifest));
        assert!(!f.iter().any(|f| f.rule == Rule::LockHierarchy), "{f:#?}");
    }

    #[test]
    fn match_and_if_let_guards_span_their_block() {
        let src = "struct S { q: Mutex<u32> }\n\
                   fn f(s: &S, tx: &Sender<u8>) {\n\
                       if let Ok(g) = s.q.lock() {\n\
                           tx.send(1).ok();\n\
                       }\n\
                       tx.send(2).ok();\n\
                   }\n";
        let f = run(src, None);
        let lines: Vec<usize> = f
            .iter()
            .filter(|f| f.rule == Rule::LockBlocking)
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![4], "{f:#?}");
    }

    #[test]
    fn call_into_blocking_fn_flagged_transitively() {
        let src = "struct S { q: Mutex<u32> }\n\
                   fn notify(tx: &Sender<u8>) { tx.send(1).ok(); }\n\
                   fn f(s: &S, tx: &Sender<u8>) {\n\
                       let g = s.q.lock().unwrap();\n\
                       notify(tx);\n\
                   }\n";
        let f = run(src, None);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::LockBlocking && f.message.contains("notify")),
            "{f:#?}"
        );
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "struct S { q: Mutex<u32> }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn f(s: &S, tx: &Sender<u8>) {\n\
                           let g = s.q.lock().unwrap();\n\
                           tx.send(1).ok();\n\
                       }\n\
                   }\n";
        let f = run(src, None);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn local_mutex_guards_still_catch_blocking() {
        let src = "fn f(tx: &Sender<u8>) {\n\
                       let m = Mutex::new(0u32);\n\
                       let g = m.lock().unwrap();\n\
                       tx.send(1).ok();\n\
                   }\n";
        let f = run(src, None);
        assert!(f.iter().any(|f| f.rule == Rule::LockBlocking), "{f:#?}");
    }

    #[test]
    fn hierarchy_manifest_parses_multiline() {
        let h = Hierarchy::parse("# comment\norder = [\n  \"A::x\",  # trailing\n  \"B::y\",\n]\n")
            .expect("parses");
        assert_eq!(h.len(), 2);
        assert_eq!(h.index("B::y"), Some(1));
    }
}
