//! # dyrs-verify — nondeterminism & correctness linting for the DYRS workspace
//!
//! DYRS's evaluation rests on a deterministic discrete-event simulation:
//! two runs with the same seed must produce bit-identical results, and the
//! reproduction's paper-claim tests depend on it. This crate is the
//! source-level half of the verification story (the runtime half is the
//! `Audit` trait in `simkit::audit`): a dependency-free scanner over the
//! workspace's `.rs` files that flags constructs known to leak
//! nondeterminism or mask broken invariants:
//!
//! * **nondet-iter** — iterating a `HashMap`/`HashSet` in decision-path
//!   crates, where hash-order can leak into Algorithm 1 tie-breaking;
//! * **wall-clock** — `Instant::now`/`SystemTime` in simulation code that
//!   must only observe [`SimTime`];
//! * **ambient-rng** — `thread_rng`/`OsRng`/entropy seeding outside
//!   `simkit::rng`;
//! * **nan-compare** — `partial_cmp(..).unwrap()`-style float comparisons
//!   that panic (or worse, silently mis-sort) on NaN;
//! * **lib-unwrap** — `unwrap()`/`panic!`/empty `expect("")` in library
//!   crates, which hide *which* invariant was violated.
//!
//! Beyond the per-file token rules, two **cross-file passes** analyze the
//! workspace as a whole:
//!
//! * `dyrs-verify -- locks` ([`locks`]) — a symbol pass over every crate
//!   that tracks lock-guard scopes, builds an approximate call graph, and
//!   reports lock-order cycles (**lock-cycle**), blocking operations
//!   under a live guard (**lock-blocking**), and violations of the
//!   declared `locks.toml` hierarchy (**lock-hierarchy**);
//! * `dyrs-verify -- schema` ([`schema`]) — parses the wire protocol in
//!   `crates/net` into a structural snapshot and diffs it against the
//!   committed `crates/net/schema.lock`, failing on any non-append-only
//!   change (**schema-drift**) with a `--bless` flow for legitimate
//!   additions.
//!
//! Findings are suppressed through a checked-in allowlist
//! (`verify-allowlist.txt` at the workspace root) keyed on the rule, the
//! file, and the exact source line — so CI failures are deterministic and
//! every suppression carries a written justification in the file.
//!
//! Run it as `cargo run -p dyrs-verify -- lint`.
//!
//! [`SimTime`]: https://docs.rs/simkit

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod cli;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod rules;
pub mod scan;
pub mod schema;
mod tokens;

pub use allowlist::Allowlist;
pub use graph::Digraph;
pub use locks::{guard_scopes, GuardScope, Hierarchy};
pub use rules::{Finding, Rule};
pub use scan::{scan_file, scan_workspace, ScanContext};
pub use schema::Snapshot;
