//! Byte-level token helpers shared by the cross-file passes
//! ([`crate::locks`], [`crate::schema`]). All of them operate on
//! *stripped* source (see [`crate::lexer`]) so string and comment bodies
//! can't fake tokens or braces.

pub(crate) fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Next identifier token at or after `from`: `(text, start, end)`.
pub(crate) fn next_ident(bytes: &[u8], mut from: usize) -> Option<(&str, usize, usize)> {
    while from < bytes.len() && !is_ident_start(bytes[from]) {
        from += 1;
    }
    if from >= bytes.len() {
        return None;
    }
    let start = from;
    let mut end = start;
    while end < bytes.len() && is_ident_byte(bytes[end]) {
        end += 1;
    }
    let s = std::str::from_utf8(&bytes[start..end]).ok()?;
    Some((s, start, end))
}

/// Offset of the `}` matching the `{` at `open` (or the last byte if the
/// source is unbalanced — stripped input keeps literal braces out).
pub(crate) fn matching_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len().saturating_sub(1)
}

/// Offset of the `)` matching the `(` at `open`.
pub(crate) fn matching_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len().saturating_sub(1)
}

/// 1-based line number of byte offset `pos`.
pub(crate) fn line_of(bytes: &[u8], pos: usize) -> usize {
    1 + bytes[..pos.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// First identifier-boundary occurrence of `word` in `hay`.
pub(crate) fn token_pos(hay: &str, word: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = 0;
    while let Some(rel) = hay.get(start..)?.find(word) {
        let pos = start + rel;
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

pub(crate) fn has_token(hay: &str, word: &str) -> bool {
    token_pos(hay, word).is_some()
}

/// Collapse every whitespace run to a single space and trim — makes
/// fingerprints and recorded types reformat-proof.
pub(crate) fn normalize_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_ws = true; // leading whitespace dropped
    for c in s.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// FNV-1a 64-bit — a stable, dependency-free content fingerprint.
pub(crate) fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
