//! Command-line entry: `dyrs-verify <lint|locks|schema> [options]`.

use crate::allowlist::Allowlist;
use crate::rules::Finding;
use crate::{locks, scan, schema};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const USAGE: &str = "\
usage: dyrs-verify <command> [options]

commands:
  lint     per-file nondeterminism & correctness lints
  locks    cross-file lock analysis (cycles, blocking-under-guard,
           hierarchy violations against locks.toml)
  schema   wire-schema drift check against crates/net/schema.lock

run `dyrs-verify <command> --help` for command options.

exit status: 0 clean · 1 findings/drift · 2 usage";

const LINT_USAGE: &str = "\
usage: dyrs-verify lint [options] [paths…]

Scans the workspace's crates/*/src for nondeterminism hazards. With
explicit paths, scans only those files/directories with every rule
enabled (fixture mode; the allowlist is not applied).

options:
  --root DIR          workspace root (default: current directory)
  --allowlist FILE    suppression file (default: ROOT/verify-allowlist.txt)
  --emit-allowlist    print findings as allowlist entries and exit 1
  --prune             rewrite the allowlist with stale entries removed
                      (still exits 1 when any were pruned)
  -h, --help          this text

exit status: 0 clean · 1 findings (or stale allowlist entries) · 2 usage";

const LOCKS_USAGE: &str = "\
usage: dyrs-verify locks [options] [paths…]

Workspace-wide lock analysis: tracks guard scopes per function, builds an
approximate call graph, and reports lock-order cycles, blocking
operations performed while a guard is live, and violations of the
declared lock hierarchy. With explicit paths, analyzes only those
files/directories (fixture mode; the allowlist is not applied).

options:
  --root DIR          workspace root (default: current directory)
  --allowlist FILE    suppression file (default: ROOT/verify-allowlist.txt)
  --manifest FILE     lock hierarchy manifest (default: ROOT/locks.toml
                      when it exists; in fixture mode only when given)
  -h, --help          this text

exit status: 0 clean · 1 findings · 2 usage";

const SCHEMA_USAGE: &str = "\
usage: dyrs-verify schema [options]

Parses the wire protocol (proto.rs + wire.rs) into a structural snapshot
and diffs it against the committed schema lock. Any non-append-only
change — tag reuse or renumbering, field removal/reorder/retype, payload
shape change — fails the check. Append-only additions fail too until
blessed; breaking changes can only be blessed together with a
PROTOCOL_VERSION bump.

options:
  --root DIR          workspace root (default: current directory)
  --proto FILE        protocol enum source (default: ROOT/crates/net/src/proto.rs)
  --wire FILE         codec source (default: ROOT/crates/net/src/wire.rs)
  --lock FILE         schema lock file (default: ROOT/crates/net/schema.lock)
  --bless             regenerate the lock file from the current sources
  -h, --help          this text

exit status: 0 clean/blessed · 1 drift (or refused bless) · 2 usage";

/// Run the CLI; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    match cmd.as_str() {
        "-h" | "--help" => {
            println!("{USAGE}");
            0
        }
        "lint" => run_lint(rest),
        "locks" => run_locks(rest),
        "schema" => run_schema(rest),
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            2
        }
    }
}

fn run_lint(rest: &[String]) -> i32 {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut emit = false;
    let mut prune = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return missing_value("--root", LINT_USAGE),
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return missing_value("--allowlist", LINT_USAGE),
            },
            "--emit-allowlist" => emit = true,
            "--prune" => prune = true,
            "-h" | "--help" => {
                println!("{LINT_USAGE}");
                return 0;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{LINT_USAGE}");
                return 2;
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let fixture_mode = !paths.is_empty();
    let findings = if fixture_mode {
        scan::scan_file(&root, &paths)
    } else {
        scan::scan_workspace(&root)
    };
    let findings = match findings {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dyrs-verify: {e}");
            return 2;
        }
    };

    if emit {
        for f in &findings {
            println!("{}", Allowlist::format_entry(f));
        }
        return i32::from(!findings.is_empty());
    }

    // Fixture mode is for proving the lint *fires*; no suppression there.
    let (kept, suppressed, stale) = if fixture_mode {
        (findings, 0, Vec::new())
    } else {
        let path = allowlist_path.unwrap_or_else(|| root.join("verify-allowlist.txt"));
        let allowlist = match std::fs::read_to_string(&path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("dyrs-verify: {e}");
                    return 2;
                }
            },
            Err(_) => Allowlist::default(), // absent file = empty allowlist
        };
        let (kept, suppressed, stale) = allowlist.apply(findings);
        if prune && !stale.is_empty() {
            let stale_lines: BTreeSet<usize> = stale.iter().map(|e| e.at).collect();
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    let pruned = Allowlist::prune(&text, &stale_lines);
                    if let Err(e) = std::fs::write(&path, pruned) {
                        eprintln!("dyrs-verify: cannot rewrite {}: {e}", path.display());
                        return 2;
                    }
                    eprintln!(
                        "dyrs-verify: pruned {} stale entr(ies) from {}",
                        stale.len(),
                        path.display()
                    );
                }
                Err(e) => {
                    eprintln!("dyrs-verify: cannot read {}: {e}", path.display());
                    return 2;
                }
            }
        }
        (kept, suppressed, stale)
    };

    for f in &kept {
        println!("{f}");
    }
    let mut failed = !kept.is_empty();
    for e in &stale {
        eprintln!(
            "stale allowlist entry (line {}): {} {} :: {}",
            e.at, e.rule, e.path, e.line_text
        );
        failed = true;
    }
    if failed {
        eprintln!(
            "dyrs-verify: {} finding(s), {} suppressed, {} stale allowlist entr(ies)",
            kept.len(),
            suppressed,
            stale.len()
        );
        1
    } else {
        println!("dyrs-verify: clean ({suppressed} suppressed by allowlist)");
        0
    }
}

fn run_locks(rest: &[String]) -> i32 {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut manifest: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return missing_value("--root", LOCKS_USAGE),
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return missing_value("--allowlist", LOCKS_USAGE),
            },
            "--manifest" => match it.next() {
                Some(v) => manifest = Some(PathBuf::from(v)),
                None => return missing_value("--manifest", LOCKS_USAGE),
            },
            "-h" | "--help" => {
                println!("{LOCKS_USAGE}");
                return 0;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{LOCKS_USAGE}");
                return 2;
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let fixture_mode = !paths.is_empty();
    let findings = if fixture_mode {
        locks::analyze_paths(&root, &paths, manifest.as_deref())
    } else {
        // Workspace runs pick up the checked-in manifest by default.
        let default_manifest = root.join("locks.toml");
        let manifest = manifest.or_else(|| default_manifest.exists().then_some(default_manifest));
        locks::analyze_workspace(&root, manifest.as_deref())
    };
    let findings = match findings {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dyrs-verify: {e}");
            return 2;
        }
    };

    let (kept, suppressed) = if fixture_mode {
        (findings, 0)
    } else {
        let path = allowlist_path.unwrap_or_else(|| root.join("verify-allowlist.txt"));
        let allowlist = match std::fs::read_to_string(&path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("dyrs-verify: {e}");
                    return 2;
                }
            },
            Err(_) => Allowlist::default(),
        };
        // Stale entries are `lint`'s concern (it sees every rule family);
        // here they would double-report, so only suppression applies.
        let (kept, suppressed, _stale) = allowlist.apply(findings);
        (kept, suppressed)
    };

    report_findings("locks", &kept, suppressed)
}

fn run_schema(rest: &[String]) -> i32 {
    let mut root = PathBuf::from(".");
    let mut proto: Option<PathBuf> = None;
    let mut wire: Option<PathBuf> = None;
    let mut lock: Option<PathBuf> = None;
    let mut bless = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return missing_value("--root", SCHEMA_USAGE),
            },
            "--proto" => match it.next() {
                Some(v) => proto = Some(PathBuf::from(v)),
                None => return missing_value("--proto", SCHEMA_USAGE),
            },
            "--wire" => match it.next() {
                Some(v) => wire = Some(PathBuf::from(v)),
                None => return missing_value("--wire", SCHEMA_USAGE),
            },
            "--lock" => match it.next() {
                Some(v) => lock = Some(PathBuf::from(v)),
                None => return missing_value("--lock", SCHEMA_USAGE),
            },
            "--bless" => bless = true,
            "-h" | "--help" => {
                println!("{SCHEMA_USAGE}");
                return 0;
            }
            other => {
                eprintln!("unknown option `{other}`\n{SCHEMA_USAGE}");
                return 2;
            }
        }
    }
    let proto = proto.unwrap_or_else(|| root.join("crates/net/src/proto.rs"));
    let wire = wire.unwrap_or_else(|| root.join("crates/net/src/wire.rs"));
    let lock = lock.unwrap_or_else(|| root.join("crates/net/schema.lock"));

    let proto_text = match std::fs::read_to_string(&proto) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dyrs-verify: cannot read {}: {e}", proto.display());
            return 2;
        }
    };
    let wire_text = match std::fs::read_to_string(&wire) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dyrs-verify: cannot read {}: {e}", wire.display());
            return 2;
        }
    };
    let current = match schema::Snapshot::parse_sources(&proto_text, &wire_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dyrs-verify: {e}");
            return 2;
        }
    };
    let proto_rel = proto
        .strip_prefix(&root)
        .unwrap_or(&proto)
        .to_string_lossy()
        .replace('\\', "/");

    let committed = match std::fs::read_to_string(&lock) {
        Ok(text) => match schema::Snapshot::from_lock_text(&text) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("dyrs-verify: {e}");
                return 2;
            }
        },
        Err(_) => None,
    };

    let Some(committed) = committed else {
        if bless {
            return write_lock(&lock, &current);
        }
        eprintln!(
            "dyrs-verify: no schema lock at {}; run `dyrs-verify -- schema --bless` to \
             create it",
            lock.display()
        );
        return 1;
    };

    let drift = schema::diff(&committed, &current, &proto_rel, &proto_text);
    let breaking = drift.iter().filter(|d| d.breaking).count();

    if bless {
        if breaking > 0 && committed.version == current.version {
            for d in drift.iter().filter(|d| d.breaking) {
                println!("{}", d.finding);
            }
            eprintln!(
                "dyrs-verify: refusing to bless {breaking} breaking change(s) without a \
                 PROTOCOL_VERSION bump — existing tags and layouts are append-only"
            );
            return 1;
        }
        return write_lock(&lock, &current);
    }

    if drift.is_empty() {
        println!(
            "dyrs-verify: schema OK ({} messages, {} payloads, version {})",
            current.messages.len(),
            current.payloads.len(),
            current.version.map_or("?".to_owned(), |v| v.to_string()),
        );
        return 0;
    }
    for d in &drift {
        println!("{}", d.finding);
    }
    eprintln!(
        "dyrs-verify: schema drift — {} breaking, {} append-only; {}",
        breaking,
        drift.len() - breaking,
        if breaking > 0 {
            "breaking changes require a PROTOCOL_VERSION bump before `--bless`"
        } else {
            "run `dyrs-verify -- schema --bless` if the additions are intended"
        },
    );
    1
}

fn write_lock(lock: &Path, snap: &schema::Snapshot) -> i32 {
    match std::fs::write(lock, snap.to_lock_text()) {
        Ok(()) => {
            println!(
                "dyrs-verify: blessed {} ({} messages, {} payloads)",
                lock.display(),
                snap.messages.len(),
                snap.payloads.len()
            );
            0
        }
        Err(e) => {
            eprintln!("dyrs-verify: cannot write {}: {e}", lock.display());
            2
        }
    }
}

fn report_findings(pass: &str, kept: &[Finding], suppressed: usize) -> i32 {
    for f in kept {
        println!("{f}");
    }
    if kept.is_empty() {
        println!("dyrs-verify: {pass} clean ({suppressed} suppressed by allowlist)");
        0
    } else {
        eprintln!(
            "dyrs-verify: {pass} — {} finding(s), {} suppressed",
            kept.len(),
            suppressed
        );
        1
    }
}

fn missing_value(flag: &str, usage: &str) -> i32 {
    eprintln!("{flag} needs a value\n{usage}");
    2
}
