//! Command-line entry: `dyrs-verify lint [--root DIR] [--allowlist FILE]
//! [--emit-allowlist] [paths…]`.

use crate::allowlist::Allowlist;
use crate::scan;
use std::path::PathBuf;

const USAGE: &str = "\
usage: dyrs-verify lint [options] [paths…]

Scans the workspace's crates/*/src for nondeterminism hazards. With
explicit paths, scans only those files/directories with every rule
enabled (fixture mode; the allowlist is not applied).

options:
  --root DIR          workspace root (default: current directory)
  --allowlist FILE    suppression file (default: ROOT/verify-allowlist.txt)
  --emit-allowlist    print findings as allowlist entries and exit 1
  -h, --help          this text

exit status: 0 clean · 1 findings (or stale allowlist entries) · 2 usage";

/// Run the CLI; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    if cmd == "-h" || cmd == "--help" {
        println!("{USAGE}");
        return 0;
    }
    if cmd != "lint" {
        eprintln!("unknown command `{cmd}`\n{USAGE}");
        return 2;
    }

    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut emit = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return 2;
                }
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--allowlist needs a value\n{USAGE}");
                    return 2;
                }
            },
            "--emit-allowlist" => emit = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return 0;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return 2;
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let fixture_mode = !paths.is_empty();
    let findings = if fixture_mode {
        scan::scan_file(&root, &paths)
    } else {
        scan::scan_workspace(&root)
    };
    let findings = match findings {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dyrs-verify: {e}");
            return 2;
        }
    };

    if emit {
        for f in &findings {
            println!("{}", Allowlist::format_entry(f));
        }
        return i32::from(!findings.is_empty());
    }

    // Fixture mode is for proving the lint *fires*; no suppression there.
    let (kept, suppressed, stale) = if fixture_mode {
        (findings, 0, Vec::new())
    } else {
        let path = allowlist_path.unwrap_or_else(|| root.join("verify-allowlist.txt"));
        let allowlist = match std::fs::read_to_string(&path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("dyrs-verify: {e}");
                    return 2;
                }
            },
            Err(_) => Allowlist::default(), // absent file = empty allowlist
        };
        allowlist.apply(findings)
    };

    for f in &kept {
        println!("{f}");
    }
    let mut failed = !kept.is_empty();
    for e in &stale {
        eprintln!(
            "stale allowlist entry (line {}): {} {} :: {}",
            e.at, e.rule, e.path, e.line_text
        );
        failed = true;
    }
    if failed {
        eprintln!(
            "dyrs-verify: {} finding(s), {} suppressed, {} stale allowlist entr(ies)",
            kept.len(),
            suppressed,
            stale.len()
        );
        1
    } else {
        println!("dyrs-verify: clean ({suppressed} suppressed by allowlist)");
        0
    }
}
