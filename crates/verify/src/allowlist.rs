//! The checked-in suppression list (`verify-allowlist.txt`).
//!
//! Each entry is keyed on the rule name, the workspace-relative path, and
//! the exact (trimmed) source line — **not** the line number — so the
//! suppression survives unrelated edits to the file but dies with the
//! line it justified. Stale entries fail the lint: the allowlist can only
//! shrink or carry live, justified suppressions.
//!
//! Format, one entry per line:
//!
//! ```text
//! # justification for the next entry
//! <rule> <path> :: <trimmed source line>
//! ```

use crate::rules::{Finding, Rule};

/// One parsed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule being suppressed.
    pub rule: Rule,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Exact trimmed source line being justified.
    pub line_text: String,
    /// Line number *within the allowlist file* (for error reporting).
    pub at: usize,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

impl Allowlist {
    /// Parse allowlist text. Returns `Err` with a message on malformed lines.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (rule_name, rest) = line.split_once(char::is_whitespace).ok_or_else(|| {
                format!(
                    "allowlist line {}: expected `<rule> <path> :: <line>`",
                    i + 1
                )
            })?;
            let rule = Rule::from_name(rule_name)
                .ok_or_else(|| format!("allowlist line {}: unknown rule `{rule_name}`", i + 1))?;
            let (path, line_text) = rest
                .split_once(" :: ")
                .ok_or_else(|| format!("allowlist line {}: missing ` :: ` separator", i + 1))?;
            entries.push(Entry {
                rule,
                path: path.trim().to_owned(),
                line_text: line_text.trim().to_owned(),
                at: i + 1,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split findings into (kept, suppressed) and report stale entries
    /// that matched nothing.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize, Vec<Entry>) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let hit = self
                .entries
                .iter()
                .position(|e| e.rule == f.rule && e.path == f.path && e.line_text == f.excerpt);
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed += 1;
                }
                None => kept.push(f),
            }
        }
        let stale: Vec<Entry> = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.clone())
            .collect();
        (kept, suppressed, stale)
    }

    /// Render a finding as an allowlist entry line (for `--emit-allowlist`).
    pub fn format_entry(f: &Finding) -> String {
        format!("{} {} :: {}", f.rule, f.path, f.excerpt)
    }

    /// Rewrite allowlist text with the entries at `stale_lines` (1-based
    /// file line numbers, as reported in [`Entry::at`]) removed, along
    /// with the comment/blank block immediately above each — the written
    /// justification dies with the suppression it justified.
    pub fn prune(text: &str, stale_lines: &std::collections::BTreeSet<usize>) -> String {
        let mut out: Vec<&str> = Vec::new();
        let mut pending: Vec<&str> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                pending.push(raw);
                continue;
            }
            if stale_lines.contains(&(i + 1)) {
                // Keep any leading blank separators but drop the comment
                // block attached to the pruned entry.
                while pending.last().is_some_and(|l| l.trim().starts_with('#')) {
                    pending.pop();
                }
            } else {
                out.append(&mut pending);
                out.push(raw);
            }
            pending.clear();
        }
        out.append(&mut pending);
        let mut s = out.join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line: 7,
            excerpt: excerpt.to_owned(),
            message: String::new(),
        }
    }

    #[test]
    fn suppresses_exact_matches_and_reports_stale() {
        let al = Allowlist::parse(
            "# read-only summary over counters; order does not reach decisions\n\
             nondet-iter crates/sim/src/x.rs :: for (k, v) in counts.iter() {\n\
             wall-clock crates/sim/src/y.rs :: let t = Instant::now();\n",
        )
        .expect("well-formed allowlist parses");
        assert_eq!(al.len(), 2);
        let findings = vec![finding(
            Rule::NondetIter,
            "crates/sim/src/x.rs",
            "for (k, v) in counts.iter() {",
        )];
        let (kept, suppressed, stale) = al.apply(findings);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, Rule::WallClock);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("nonsense-rule a.rs :: x\n").is_err());
        assert!(Allowlist::parse("nondet-iter missing-separator\n").is_err());
    }

    #[test]
    fn prune_removes_stale_entries_and_their_justifications() {
        let text = "# keep: live suppression\n\
                    lib-unwrap crates/a/src/a.rs :: x.unwrap();\n\
                    \n\
                    # drop: the hazard was fixed\n\
                    wall-clock crates/b/src/b.rs :: let t = Instant::now();\n";
        let stale: std::collections::BTreeSet<usize> = [5].into_iter().collect();
        let pruned = Allowlist::prune(text, &stale);
        assert!(pruned.contains("keep: live suppression"));
        assert!(pruned.contains("lib-unwrap"));
        assert!(!pruned.contains("drop: the hazard was fixed"));
        assert!(!pruned.contains("wall-clock"));
        // The pruned text still parses and kept entries survive.
        assert_eq!(Allowlist::parse(&pruned).expect("parses").len(), 1);
    }

    #[test]
    fn line_number_changes_do_not_invalidate_entries() {
        let al =
            Allowlist::parse("lib-unwrap crates/core/src/a.rs :: x.unwrap();\n").expect("parses");
        let mut f = finding(Rule::LibUnwrap, "crates/core/src/a.rs", "x.unwrap();");
        f.line = 999;
        let (kept, suppressed, _) = al.apply(vec![f]);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
    }
}
