//! Lint rules. Each rule is a cheap token-level scan over stripped source
//! (comments and string bodies already blanked by [`crate::lexer`]), so a
//! hazard hidden in prose or a doc example never fires, and one written in
//! code always does.

use crate::lexer::StrippedSource;
use std::collections::BTreeSet;
use std::fmt;

/// The lint rules, in severity order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` iteration in a decision-path crate.
    NondetIter,
    /// `Instant::now` / `SystemTime` in simulation code.
    WallClock,
    /// `thread_rng` / OS entropy outside `simkit::rng`.
    AmbientRng,
    /// `partial_cmp`-based float ordering (panics or mis-sorts on NaN).
    NanCompare,
    /// `unwrap()` / `panic!` / empty `expect("")` in library code.
    LibUnwrap,
    /// Raw sockets or thread spawns outside `crates/net` — the one crate
    /// allowed to host real-I/O nondeterminism.
    NetFence,
    /// Direct access to the scheduler's raw pending store outside
    /// `crates/core/src/sched/` — everything else must go through the
    /// scheduler API so its indexes and dirty-sets stay consistent.
    PendingFence,
    /// A cycle in the transitive lock-acquisition graph — two code paths
    /// take the same locks in opposite orders (emitted by the cross-file
    /// `locks` pass, see [`crate::locks`]).
    LockCycle,
    /// A blocking operation (channel send/recv, `write_all`, `join`,
    /// `accept`, …) executed while a lock guard is live.
    LockBlocking,
    /// A lock acquired out of the order declared in the workspace
    /// `locks.toml` manifest.
    LockHierarchy,
    /// The wire protocol diverged from the committed `schema.lock`
    /// (emitted by the `schema` pass, see [`crate::schema`]).
    SchemaDrift,
}

impl Rule {
    /// Stable rule name used in reports and the allowlist.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NondetIter => "nondet-iter",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::NanCompare => "nan-compare",
            Rule::LibUnwrap => "lib-unwrap",
            Rule::NetFence => "net-fence",
            Rule::PendingFence => "pending-fence",
            Rule::LockCycle => "lock-cycle",
            Rule::LockBlocking => "lock-blocking",
            Rule::LockHierarchy => "lock-hierarchy",
            Rule::SchemaDrift => "schema-drift",
        }
    }

    /// Parse a rule name as written in the allowlist.
    pub fn from_name(name: &str) -> Option<Rule> {
        Some(match name {
            "nondet-iter" => Rule::NondetIter,
            "wall-clock" => Rule::WallClock,
            "ambient-rng" => Rule::AmbientRng,
            "nan-compare" => Rule::NanCompare,
            "lib-unwrap" => Rule::LibUnwrap,
            "net-fence" => Rule::NetFence,
            "pending-fence" => Rule::PendingFence,
            "lock-cycle" => Rule::LockCycle,
            "lock-blocking" => Rule::LockBlocking,
            "lock-hierarchy" => Rule::LockHierarchy,
            "schema-drift" => Rule::SchemaDrift,
            _ => return None,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The trimmed *original* source line (allowlist key).
    pub excerpt: String,
    /// Human explanation of the hazard.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}\n    {}",
            self.rule, self.path, self.line, self.message, self.excerpt
        )
    }
}

/// Which rule families apply to the file being scanned.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// Flag hash-container iteration (decision-path crates).
    pub nondet_iter: bool,
    /// Flag wall-clock reads.
    pub wall_clock: bool,
    /// Flag ambient randomness.
    pub ambient_rng: bool,
    /// Flag NaN-unsafe comparisons.
    pub nan_compare: bool,
    /// Flag unwrap/panic in library code.
    pub lib_unwrap: bool,
    /// Flag raw sockets / thread spawns (everywhere except `crates/net`).
    pub net_fence: bool,
    /// Flag raw pending-store access (everywhere except
    /// `crates/core/src/sched/`).
    pub pending_fence: bool,
}

impl RuleSet {
    /// Everything on — used for explicitly-passed paths (fixtures).
    pub fn strict() -> Self {
        RuleSet {
            nondet_iter: true,
            wall_clock: true,
            ambient_rng: true,
            nan_compare: true,
            lib_unwrap: true,
            net_fence: true,
            pending_fence: true,
        }
    }
}

/// Names of identifiers declared with a hash-container type, collected
/// across a whole crate so cross-file field iteration is still caught.
pub type HashNames = BTreeSet<String>;

/// Record identifiers bound to `HashMap`/`HashSet` types in this source.
pub fn collect_hash_names(stripped: &StrippedSource, names: &mut HashNames) {
    for (_, line) in stripped.lines() {
        let declares_type = line.contains("HashMap<")
            || line.contains("HashSet<")
            || line.contains("HashMap ::")
            || line.contains("HashMap::new")
            || line.contains("HashMap::with_capacity")
            || line.contains("HashMap::default")
            || line.contains("HashSet::new")
            || line.contains("HashSet::with_capacity")
            || line.contains("HashSet::default");
        if !declares_type {
            continue;
        }
        // `name: HashMap<..>` / `name: Vec<HashMap<..>>` / fn params: the
        // identifier before the first `:` on the line.
        if let Some(colon) = line.find(':') {
            if let Some(ident) = last_ident_before(line, colon) {
                names.insert(ident.to_owned());
            }
        }
        // `let [mut] name = HashMap::new()` bindings.
        if let Some(rest) = line.trim_start().strip_prefix("let ") {
            let rest = rest
                .trim_start()
                .strip_prefix("mut ")
                .unwrap_or(rest.trim_start());
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                names.insert(ident);
            }
        }
    }
}

/// Run the configured rules over one stripped file.
pub fn check(
    stripped: &StrippedSource,
    original: &str,
    path: &str,
    rules: RuleSet,
    hash_names: &HashNames,
    findings: &mut Vec<Finding>,
) {
    let original_lines: Vec<&str> = original.lines().collect();
    let excerpt = |n: usize| -> String {
        original_lines
            .get(n - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    };

    for (n, line) in stripped.lines() {
        let in_test = stripped.in_test_region(n);

        if rules.wall_clock && !in_test {
            if let Some(tok) = ["Instant::now", "SystemTime"]
                .iter()
                .find(|t| has_token(line, t))
            {
                findings.push(Finding {
                    rule: Rule::WallClock,
                    path: path.to_owned(),
                    line: n,
                    excerpt: excerpt(n),
                    message: format!(
                        "wall-clock read `{tok}` in simulation code; observe simkit::SimTime instead"
                    ),
                });
            }
        }

        if rules.ambient_rng && !in_test {
            if let Some(tok) = ["thread_rng", "OsRng", "from_entropy", "getrandom"]
                .iter()
                .find(|t| has_token(line, t))
            {
                findings.push(Finding {
                    rule: Rule::AmbientRng,
                    path: path.to_owned(),
                    line: n,
                    excerpt: excerpt(n),
                    message: format!(
                        "ambient randomness `{tok}`; derive a seeded stream from simkit::Rng instead"
                    ),
                });
            }
        }

        // `fn partial_cmp` is a PartialOrd *implementation*, not a use.
        if rules.nan_compare
            && !in_test
            && has_token(line, "partial_cmp")
            && !line.trim_start().starts_with("fn partial_cmp")
        {
            findings.push(Finding {
                rule: Rule::NanCompare,
                path: path.to_owned(),
                line: n,
                excerpt: excerpt(n),
                message: "NaN-unsafe float ordering via `partial_cmp`; use `f64::total_cmp`"
                    .to_owned(),
            });
        }

        if rules.lib_unwrap && !in_test {
            let hit = if line.contains(".unwrap()") {
                Some(".unwrap()")
            } else if line.contains("expect(\"\")") {
                Some("expect(\"\")")
            } else {
                ["panic!(", "unreachable!(", "todo!(", "unimplemented!("]
                    .into_iter()
                    .find(|t| line.contains(*t))
            };
            if let Some(tok) = hit {
                findings.push(Finding {
                    rule: Rule::LibUnwrap,
                    path: path.to_owned(),
                    line: n,
                    excerpt: excerpt(n),
                    message: format!(
                        "`{tok}` in library code; state the violated invariant via `expect(..)` or return a Result"
                    ),
                });
            }
        }

        if rules.net_fence && !in_test {
            if let Some(tok) = [
                "std::net",
                "TcpListener",
                "TcpStream",
                "UdpSocket",
                "thread::spawn",
                "crossbeam::scope",
            ]
            .iter()
            .find(|t| has_token(line, t))
            {
                findings.push(Finding {
                    rule: Rule::NetFence,
                    path: path.to_owned(),
                    line: n,
                    excerpt: excerpt(n),
                    message: format!(
                        "real-I/O primitive `{tok}` outside crates/net; sockets and thread \
                         spawns live behind the dyrs-net Transport trait"
                    ),
                });
            }
        }

        if rules.pending_fence && !in_test {
            // `raw_pending` is the per-shard entry slab; `raw_shards` is
            // the shard vector itself. Either one reached from outside
            // the sched module bypasses the dirty-set bookkeeping.
            if let Some(tok) = ["raw_pending", "raw_shards"]
                .iter()
                .find(|t| has_token(line, t))
            {
                findings.push(Finding {
                    rule: Rule::PendingFence,
                    path: path.to_owned(),
                    line: n,
                    excerpt: excerpt(n),
                    message: format!(
                        "raw pending-store access `{tok}` outside crates/core/src/sched; go \
                         through the Scheduler API so its shard indexes and dirty-sets stay \
                         consistent"
                    ),
                });
            }
        }

        if rules.nondet_iter && !in_test {
            if let Some(name) = nondet_iteration(line, hash_names) {
                findings.push(Finding {
                    rule: Rule::NondetIter,
                    path: path.to_owned(),
                    line: n,
                    excerpt: excerpt(n),
                    message: format!(
                        "iteration over hash-ordered container `{name}` in a decision path; \
                         use a BTreeMap/BTreeSet or sort before use"
                    ),
                });
            }
        }
    }
}

/// Does this line iterate one of the known hash-container identifiers?
fn nondet_iteration<'a>(line: &str, names: &'a HashNames) -> Option<&'a str> {
    const ITER_METHODS: [&str; 8] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".retain(",
    ];
    let for_in = line
        .find(" in ")
        .filter(|_| line.trim_start().starts_with("for "));
    for name in names {
        let mut from = 0;
        while let Some(pos) = token_position(line, name, from) {
            from = pos + name.len();
            let after = &line[pos + name.len()..];
            // Allow an index expression between the name and the method,
            // e.g. `self.streams[node.index()].drain(..)`.
            let after = skip_index(after);
            if ITER_METHODS.iter().any(|m| after.starts_with(m)) {
                return Some(name);
            }
            // `for x in &self.name` / `for (_, v) in take(&mut self.name[i])`
            if let Some(in_pos) = for_in {
                if pos > in_pos {
                    return Some(name);
                }
            }
        }
    }
    None
}

/// Skip a balanced leading `[...]` (with nesting) if present.
fn skip_index(s: &str) -> &str {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'[') {
        return s;
    }
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return &s[i + 1..];
                }
            }
            _ => {}
        }
    }
    s
}

/// Find `word` as a whole identifier token at or after `from`.
fn token_position(line: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut start = from;
    while let Some(rel) = line.get(start..)?.find(word) {
        let pos = start + rel;
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whole-token containment (identifier boundaries on both sides).
fn has_token(line: &str, word: &str) -> bool {
    token_position(line, word, 0).is_some()
}

fn last_ident_before(line: &str, pos: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    let ident = &line[start..end];
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    const NOT_BINDINGS: [&str; 8] = [
        "crate", "std", "self", "Self", "super", "dyn", "impl", "where",
    ];
    if NOT_BINDINGS.contains(&ident) {
        return None;
    }
    Some(ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn run(src: &str, rules: RuleSet) -> Vec<Finding> {
        let stripped = strip(src);
        let mut names = HashNames::new();
        collect_hash_names(&stripped, &mut names);
        let mut out = Vec::new();
        check(&stripped, src, "x.rs", rules, &names, &mut out);
        out
    }

    #[test]
    fn flags_wall_clock_but_not_in_comments() {
        let f = run(
            "// Instant::now() is banned\nlet t = std::time::Instant::now();\n",
            RuleSet::strict(),
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn flags_hashmap_iteration_across_decls() {
        let src = "struct S { streams: HashMap<u64, u32> }\n\
                   fn f(s: &S) { for (k, v) in s.streams.iter() { use_(k, v); } }\n";
        let f = run(src, RuleSet::strict());
        assert!(
            f.iter().any(|f| f.rule == Rule::NondetIter && f.line == 2),
            "{f:?}"
        );
    }

    #[test]
    fn flags_for_loop_over_taken_hashmap() {
        let src = "struct S { active: Vec<HashMap<u64, u32>> }\n\
                   fn f(s: &mut S, i: usize) {\n\
                   for (_, sid) in std::mem::take(&mut s.active[i]) { cancel(sid); }\n}\n";
        let f = run(src, RuleSet::strict());
        assert!(
            f.iter().any(|f| f.rule == Rule::NondetIter && f.line == 3),
            "{f:?}"
        );
    }

    #[test]
    fn keyed_access_is_fine() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   fn f(s: &S) { let v = s.m.get(&3); drop(v); }\n";
        let f = run(src, RuleSet::strict());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let f = run(src, RuleSet::strict());
        let unwraps: Vec<_> = f.iter().filter(|f| f.rule == Rule::LibUnwrap).collect();
        assert_eq!(unwraps.len(), 1);
        assert_eq!(unwraps[0].line, 1);
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let f = run("fn lib() { x.unwrap_or_else(|| 3); }\n", RuleSet::strict());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn empty_expect_flagged_messaged_expect_fine() {
        let src = "fn a() { x.expect(\"\"); }\nfn b() { y.expect(\"queue non-empty\"); }\n";
        let f = run(src, RuleSet::strict());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn partial_cmp_flagged() {
        let f = run(
            "fn s(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
            RuleSet::strict(),
        );
        assert!(f.iter().any(|f| f.rule == Rule::NanCompare));
    }

    #[test]
    fn raw_pending_access_flagged_but_not_longer_identifiers() {
        let f = run(
            "fn f(s: &Scheduler) -> usize { s.raw_pending.len() }\n",
            RuleSet::strict(),
        );
        assert!(f.iter().any(|f| f.rule == Rule::PendingFence), "{f:?}");
        let f = run(
            "fn f(raw_pending_depth: usize) -> usize { raw_pending_depth }\n",
            RuleSet::strict(),
        );
        assert!(
            !f.iter().any(|f| f.rule == Rule::PendingFence),
            "identifier boundaries must hold: {f:?}"
        );
    }

    #[test]
    fn thread_rng_flagged() {
        let f = run(
            "fn f() { let x = rand::thread_rng(); }\n",
            RuleSet::strict(),
        );
        assert!(f.iter().any(|f| f.rule == Rule::AmbientRng));
    }
}
