//! A small deterministic directed graph over string-keyed nodes.
//!
//! Backs both halves of the locks pass: the approximate call graph
//! (function → functions it calls) and the lock-acquisition graph
//! (lock A → lock B acquired while A is held). Everything is ordered —
//! `BTreeMap`/`BTreeSet` storage, sorted iteration — so two runs over the
//! same workspace report cycles and reachability in the same order, which
//! keeps the CI output and allowlist keys stable.

use std::collections::{BTreeMap, BTreeSet};

/// Directed graph with deterministic iteration order.
#[derive(Debug, Default, Clone)]
pub struct Digraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl Digraph {
    /// An empty graph.
    pub fn new() -> Self {
        Digraph::default()
    }

    /// Add the edge `from → to` (idempotent).
    pub fn add_edge(&mut self, from: &str, to: &str) {
        self.edges
            .entry(from.to_owned())
            .or_default()
            .insert(to.to_owned());
        // Materialize the target so `nodes()` sees sinks too.
        self.edges.entry(to.to_owned()).or_default();
    }

    /// Whether the edge `from → to` exists.
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.edges.get(from).is_some_and(|s| s.contains(to))
    }

    /// All nodes, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.edges.keys().map(String::as_str)
    }

    /// Direct successors of `node`, sorted.
    pub fn successors(&self, node: &str) -> impl Iterator<Item = &str> {
        self.edges
            .get(node)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// Every node reachable from `start` (excluding `start` itself unless
    /// it sits on a cycle back to itself), in sorted order.
    pub fn reachable_from(&self, start: &str) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<&str> = self.successors(start).collect();
        while let Some(n) = stack.pop() {
            if seen.insert(n.to_owned()) {
                stack.extend(self.successors(n));
            }
        }
        seen
    }

    /// Elementary cycles, canonicalized and deduplicated.
    ///
    /// Each cycle is reported once, rotated so its lexicographically
    /// smallest node comes first (`[a, b]` means `a → b → a`). Uses an
    /// iterative DFS per start node bounded by the graph size; workspaces
    /// have tens of locks, not thousands, so simplicity beats Johnson's
    /// algorithm here.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
        for start in self.nodes() {
            // DFS from `start`, only visiting nodes >= start so each
            // cycle is discovered exactly once from its smallest node.
            let mut path: Vec<String> = vec![start.to_owned()];
            let mut iters: Vec<Vec<String>> = vec![self
                .successors(start)
                .filter(|s| *s >= start)
                .map(str::to_owned)
                .collect()];
            while let Some(frontier) = iters.last_mut() {
                match frontier.pop() {
                    None => {
                        path.pop();
                        iters.pop();
                    }
                    Some(next) => {
                        if next == start {
                            found.insert(path.clone());
                        } else if !path.contains(&next) {
                            path.push(next.clone());
                            iters.push(
                                self.successors(&next)
                                    .filter(|s| *s >= start)
                                    .map(str::to_owned)
                                    .collect(),
                            );
                        }
                    }
                }
            }
        }
        found.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(edges: &[(&str, &str)]) -> Digraph {
        let mut d = Digraph::new();
        for (a, b) in edges {
            d.add_edge(a, b);
        }
        d
    }

    #[test]
    fn finds_two_node_cycle_once() {
        let d = g(&[("a", "b"), ("b", "a"), ("b", "c")]);
        assert_eq!(d.cycles(), vec![vec!["a".to_owned(), "b".to_owned()]]);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let d = g(&[("x", "x")]);
        assert_eq!(d.cycles(), vec![vec!["x".to_owned()]]);
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let d = g(&[("a", "b"), ("b", "c"), ("a", "c")]);
        assert!(d.cycles().is_empty());
    }

    #[test]
    fn three_node_cycle_canonicalized() {
        let d = g(&[("b", "c"), ("c", "a"), ("a", "b")]);
        assert_eq!(
            d.cycles(),
            vec![vec!["a".to_owned(), "b".to_owned(), "c".to_owned()]]
        );
    }

    #[test]
    fn reachability_is_transitive() {
        let d = g(&[("a", "b"), ("b", "c")]);
        let r = d.reachable_from("a");
        assert!(r.contains("b") && r.contains("c"));
        assert!(!r.contains("a"));
    }
}
