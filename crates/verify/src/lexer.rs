//! A minimal Rust source "lexer" for linting: blanks out comments and the
//! *contents* of string/char literals (keeping `"` delimiters so rules can
//! still see `expect("")`), and locates `#[cfg(test)]` regions so rules
//! can skip test-only code. Byte offsets and line structure are preserved
//! exactly, so findings report real line numbers.

/// Source with comments and literal bodies blanked, line structure intact.
#[derive(Debug)]
pub struct StrippedSource {
    text: String,
    /// Half-open line ranges (1-based) covered by `#[cfg(test)]` items.
    test_regions: Vec<(usize, usize)>,
}

impl StrippedSource {
    /// Lines of the stripped text, 1-based alongside their numbers.
    pub fn lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.text.lines().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// Whether a 1-based line number falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| start <= line && line < end)
    }

    /// The stripped text (for tests and debugging).
    pub fn text(&self) -> &str {
        &self.text
    }
}

/// Strip `source`, preserving byte-for-byte length and newlines.
pub fn strip(source: &str) -> StrippedSource {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Push `n` bytes of blank, preserving any newlines in the skipped span.
    let blank = |out: &mut Vec<u8>, span: &[u8]| {
        for &b in span {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        let rest = &bytes[i..];

        if rest.starts_with(b"//") {
            let end = memchr_newline(rest);
            blank(&mut out, &rest[..end]);
            i += end;
        } else if rest.starts_with(b"/*") {
            let end = block_comment_end(rest);
            blank(&mut out, &rest[..end]);
            i += end;
        } else if b == b'"' {
            let end = string_end(rest, 0);
            out.push(b'"');
            blank(&mut out, &rest[1..end - 1]);
            out.push(b'"');
            i += end;
        } else if (b == b'r' || b == b'b') && raw_or_byte_string_len(rest).is_some() {
            let (hashes, end) = raw_or_byte_string_len(rest).expect("checked above");
            // Keep the opening/closing quotes for expect("")-style rules;
            // blank everything else including the r/b prefix and hashes.
            let open = rest
                .iter()
                .position(|&c| c == b'"')
                .expect("raw string has an opening quote");
            blank(&mut out, &rest[..open]);
            out.push(b'"');
            blank(&mut out, &rest[open + 1..end - 1 - hashes]);
            out.push(b'"');
            blank(&mut out, &rest[end - hashes..end]);
            i += end;
        } else if b == b'\'' {
            if let Some(end) = char_literal_len(rest) {
                blank(&mut out, &rest[..end]);
                i += end;
            } else {
                // A lifetime: copy verbatim.
                out.push(b);
                i += 1;
            }
        } else {
            out.push(b);
            i += 1;
        }
    }

    let text = String::from_utf8(out).expect("stripping only replaces ASCII spans with spaces");
    let test_regions = find_test_regions(&text);
    StrippedSource { text, test_regions }
}

fn memchr_newline(bytes: &[u8]) -> usize {
    bytes
        .iter()
        .position(|&b| b == b'\n')
        .unwrap_or(bytes.len())
}

/// Length of a (nested) block comment starting at `/*`.
fn block_comment_end(bytes: &[u8]) -> usize {
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i..].starts_with(b"/*") {
            depth += 1;
            i += 2;
        } else if bytes[i..].starts_with(b"*/") {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    bytes.len()
}

/// Length of a `"..."` string starting at the opening quote (after `skip`
/// prefix bytes), honouring backslash escapes.
fn string_end(bytes: &[u8], skip: usize) -> usize {
    let mut i = skip + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// If `bytes` starts a raw string (`r"`, `r#"`, …) or byte string (`b"`,
/// `br#"`, …), return `(hash_count, total_len)`.
fn raw_or_byte_string_len(bytes: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = i < bytes.len() && bytes[i] == b'r';
    if raw {
        i += 1;
    }
    if i == 0 {
        return None; // plain `"` handled by the caller
    }
    let mut hashes = 0;
    while raw && i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return None; // identifier like `b` or `r#ident`, not a string
    }
    if !raw {
        // b"...": ordinary escape rules.
        return Some((0, string_end(bytes, i)));
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let mut j = i + 1;
    while j < bytes.len() {
        if bytes[j..].starts_with(&closer) {
            return Some((hashes, j + closer.len()));
        }
        j += 1;
    }
    Some((hashes, bytes.len()))
}

/// If `bytes` starts a character literal (not a lifetime), its length.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    // bytes[0] == '\''
    match bytes.get(1)? {
        b'\\' => {
            // Escaped char: find the closing quote.
            let mut i = 2;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'\'' => return Some(i + 1),
                    _ => i += 1,
                }
            }
            Some(bytes.len())
        }
        _ => {
            // `'x'` is a char; `'a` (no closing quote right after one
            // char) is a lifetime. Multibyte chars: scan to the next `'`
            // within a small window.
            let window = bytes.len().min(6);
            for (i, &b) in bytes.iter().enumerate().take(window).skip(2) {
                if b == b'\'' {
                    return Some(i + 1);
                }
                if b & 0x80 == 0 && !b.is_ascii_alphanumeric() {
                    break;
                }
            }
            None
        }
    }
}

/// Locate `#[cfg(test)]` items and the line span of their bodies.
fn find_test_regions(stripped: &str) -> Vec<(usize, usize)> {
    let bytes = stripped.as_bytes();
    let mut regions = Vec::new();
    let needle = b"#[cfg(test)]";
    let mut from = 0;
    while let Some(pos) = find_from(bytes, needle, from) {
        from = pos + needle.len();
        // Walk forward to the item's opening `{`; a `;` first means the
        // attribute decorated a braceless item (e.g. a `use`), skip it.
        let mut i = from;
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut j = open;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let start_line = line_of(bytes, pos);
        let end_line = line_of(bytes, j.min(bytes.len().saturating_sub(1))) + 1;
        regions.push((start_line, end_line));
    }
    regions
}

fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

fn line_of(bytes: &[u8], pos: usize) -> usize {
    1 + bytes[..pos].iter().filter(|&&b| b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip("let x = 1; // Instant::now()\n/* SystemTime */ let y = 2;\n");
        assert!(!s.text().contains("Instant::now"));
        assert!(!s.text().contains("SystemTime"));
        assert!(s.text().contains("let x = 1;"));
        assert!(s.text().contains("let y = 2;"));
    }

    #[test]
    fn strips_doc_comments_with_code_examples() {
        let s = strip("/// let v = map.iter().next().unwrap();\nfn f() {}\n");
        assert!(!s.text().contains("unwrap"));
        assert!(s.text().contains("fn f() {}"));
    }

    #[test]
    fn blanks_string_bodies_but_keeps_quotes() {
        let s = strip(r#"x.expect("thread_rng is fine in prose"); y.expect("");"#);
        assert!(!s.text().contains("thread_rng"));
        assert!(s.text().contains(r#"expect("")"#));
    }

    #[test]
    fn preserves_line_numbers_through_multiline_strings() {
        let s = strip("let a = \"one\ntwo\nthree\";\nlet b = 4;\n");
        let lines: Vec<(usize, &str)> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].1.contains("let b = 4;"));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let s = strip(r##"let a = r#"panic!("x")"#; let c = '"'; fn f<'a>(x: &'a str) {}"##);
        assert!(!s.text().contains("panic!"));
        assert!(s.text().contains("fn f<'a>(x: &'a str) {}"));
    }

    #[test]
    fn finds_cfg_test_regions() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn lib2() {}\n";
        let s = strip(src);
        assert!(!s.in_test_region(1));
        assert!(s.in_test_region(3));
        assert!(s.in_test_region(4));
        assert!(!s.in_test_region(6));
    }

    #[test]
    fn cfg_test_on_braceless_item_is_ignored() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let s = strip(src);
        assert!(!s.in_test_region(3));
    }
}
