//! Locks-pass fixture: acquires `high` before `low`, contradicting the
//! declared order in the sibling `locks.toml`. Expected: exactly one
//! `lock-hierarchy` finding when analyzed with that manifest (and none
//! without it — a single direction is not a cycle).

use std::sync::Mutex;

pub struct Tiers {
    low: Mutex<u32>,
    high: Mutex<u32>,
}

pub fn inverted(t: &Tiers) {
    let h = t.high.lock().unwrap();
    let l = t.low.lock().unwrap();
    let _ = (*h, *l);
}
