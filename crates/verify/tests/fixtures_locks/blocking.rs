//! Locks-pass fixture: a channel send performed while a mutex guard is
//! live. Expected: exactly one `lock-blocking` finding, on the `send`
//! line.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Outbox {
    queue: Mutex<Vec<u64>>,
}

pub fn drain_under_guard(o: &Outbox, tx: &Sender<u64>) {
    let q = o.queue.lock().unwrap();
    for v in q.iter() {
        tx.send(*v).ok();
    }
}

pub fn drain_narrow(o: &Outbox, tx: &Sender<u64>) {
    // The fixed shape: copy out under the guard, send after it drops.
    // Must not fire.
    let items: Vec<u64> = o.queue.lock().unwrap().clone();
    for v in items {
        tx.send(v).ok();
    }
}
