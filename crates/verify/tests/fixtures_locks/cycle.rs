//! Locks-pass fixture: two functions acquire `a` and `b` in opposite
//! orders — one of them *through a helper call*, proving the cycle is
//! found transitively via the call graph, not just from direct
//! acquisitions. Expected: exactly one `lock-cycle` finding.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

fn grab_b(p: &Pair) {
    let b = p.b.lock().unwrap();
    let _ = *b;
}

pub fn a_then_b(p: &Pair) {
    let a = p.a.lock().unwrap();
    grab_b(p);
    let _ = *a;
}

pub fn b_then_a(p: &Pair) {
    let b = p.b.lock().unwrap();
    let a = p.a.lock().unwrap();
    let _ = (*a, *b);
}
