//! End-to-end checks for the two cross-file passes. Each seeded fixture
//! under `tests/fixtures_locks/` must produce exactly its one intended
//! diagnostic (and nothing else), the schema mutants under
//! `tests/fixtures_schema/` must each fail drift detection against the
//! blessed `schema_ok.lock`, `--bless` must accept an append-only
//! addition, and both passes must exit zero on the real workspace.

use dyrs_verify::{cli, locks, Rule};
use std::path::{Path, PathBuf};

fn locks_fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures_locks")
        .join(name)
}

fn schema_fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures_schema")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/verify sits two levels under the workspace root")
        .to_path_buf()
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

// ---------------------------------------------------------------------------
// locks pass: one fixture per diagnostic, exact findings
// ---------------------------------------------------------------------------

#[test]
fn cycle_fixture_reports_exactly_one_lock_cycle() {
    let findings = locks::analyze_paths(&workspace_root(), &[locks_fixture("cycle.rs")], None)
        .expect("analyze cycle fixture");
    let rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec![Rule::LockCycle],
        "cycle.rs must produce exactly one lock-cycle finding: {findings:#?}"
    );
    let msg = &findings[0].message;
    assert!(
        msg.contains("Pair::a") && msg.contains("Pair::b"),
        "cycle message names both locks: {msg}"
    );
    assert!(
        msg.contains("grab_b"),
        "the a->b leg is call-mediated, so the cycle report must name the \
         callee that closes it: {msg}"
    );
}

#[test]
fn blocking_fixture_fires_under_wide_guard_only() {
    let findings = locks::analyze_paths(&workspace_root(), &[locks_fixture("blocking.rs")], None)
        .expect("analyze blocking fixture");
    let rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec![Rule::LockBlocking],
        "blocking.rs must produce exactly one lock-blocking finding \
         (drain_narrow releases before sending and must stay silent): {findings:#?}"
    );
    assert!(
        findings[0].message.contains("send") && findings[0].message.contains("Outbox::queue"),
        "finding names the op and the held lock: {}",
        findings[0].message
    );
}

#[test]
fn hierarchy_fixture_needs_the_manifest_to_fire() {
    let root = workspace_root();
    let fixture = locks_fixture("hierarchy.rs");
    let manifest = locks_fixture("locks.toml");

    let with = locks::analyze_paths(&root, &[fixture.clone()], Some(&manifest))
        .expect("analyze with manifest");
    let rules: Vec<Rule> = with.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec![Rule::LockHierarchy],
        "with the manifest, inverted() is exactly one hierarchy violation: {with:#?}"
    );
    assert!(
        with[0].message.contains("Tiers::low") && with[0].message.contains("Tiers::high"),
        "violation names both ends of the bad edge: {}",
        with[0].message
    );

    let without = locks::analyze_paths(&root, &[fixture], None).expect("analyze without manifest");
    assert!(
        without.is_empty(),
        "hierarchy.rs has no cycle and no blocking op — without a declared \
         order there is nothing to report: {without:#?}"
    );
}

#[test]
fn locks_cli_exits_nonzero_on_fixtures_and_zero_on_workspace() {
    let root = workspace_root();
    let root_s = root.to_string_lossy().into_owned();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures_locks")
        .to_string_lossy()
        .into_owned();
    let manifest = locks_fixture("locks.toml").to_string_lossy().into_owned();

    let code = cli::run(&args(&[
        "locks",
        "--root",
        &root_s,
        "--manifest",
        &manifest,
        &dir,
    ]));
    assert_eq!(code, 1, "seeded lock fixtures must fail the locks pass");

    let code = cli::run(&args(&["locks", "--root", &root_s]));
    assert_eq!(
        code, 0,
        "the real workspace must be clean — a genuine finding means either \
         new code needs its guard narrowed or the finding belongs in the allowlist"
    );
}

// ---------------------------------------------------------------------------
// schema pass: blessed lock accepts the base, rejects every mutant
// ---------------------------------------------------------------------------

fn schema_exit(proto: &str, wire: &str, lock: &str, bless: bool) -> i32 {
    let mut a = vec![
        "schema".to_string(),
        "--proto".to_string(),
        proto.to_string(),
        "--wire".to_string(),
        wire.to_string(),
        "--lock".to_string(),
        lock.to_string(),
    ];
    if bless {
        a.push("--bless".to_string());
    }
    cli::run(&a)
}

#[test]
fn schema_clean_fixture_passes_and_mutants_fail() {
    let wire = schema_fixture("wire_ok.rs");
    let lock = schema_fixture("schema_ok.lock");

    assert_eq!(
        schema_exit(&schema_fixture("proto_ok.rs"), &wire, &lock, false),
        0,
        "unchanged protocol matches its blessed lock"
    );
    for mutant in ["proto_tag_reuse.rs", "proto_reorder.rs", "proto_retype.rs"] {
        assert_eq!(
            schema_exit(&schema_fixture(mutant), &wire, &lock, false),
            1,
            "{mutant} is a wire break and must fail the drift check"
        );
    }
    // Append-only drift still fails a plain check — it needs an explicit
    // bless — but is not a breaking change.
    assert_eq!(
        schema_exit(&schema_fixture("proto_append.rs"), &wire, &lock, false),
        1,
        "unblessed append still fails (the lock is stale)"
    );
}

#[test]
fn schema_bless_accepts_append_only_and_refuses_breaking() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("schema_bless");
    std::fs::create_dir_all(&tmp).expect("mk tmpdir");
    let lock = tmp.join("schema.lock").to_string_lossy().into_owned();
    std::fs::copy(schema_fixture("schema_ok.lock"), &lock).expect("copy blessed lock");
    let wire = schema_fixture("wire_ok.rs");

    // Breaking mutants cannot be blessed without a PROTOCOL_VERSION bump.
    assert_eq!(
        schema_exit(&schema_fixture("proto_reorder.rs"), &wire, &lock, true),
        1,
        "--bless must refuse a field reorder at the same protocol version"
    );

    // Appending a fresh-tag variant blesses cleanly...
    assert_eq!(
        schema_exit(&schema_fixture("proto_append.rs"), &wire, &lock, true),
        0,
        "--bless accepts an append-only addition"
    );
    let blessed = std::fs::read_to_string(&lock).expect("read blessed lock");
    assert!(
        blessed.contains("message Ping tag=2"),
        "blessed lock records the new variant: {blessed}"
    );

    // ...and a re-check against the regenerated lock is clean.
    assert_eq!(
        schema_exit(&schema_fixture("proto_append.rs"), &wire, &lock, false),
        0,
        "post-bless the appended protocol matches its lock"
    );
}

#[test]
fn renumbered_membership_tag_is_a_wire_break() {
    let wire = schema_fixture("wire_ok.rs");
    let lock = schema_fixture("schema_membership.lock");

    assert_eq!(
        schema_exit(&schema_fixture("proto_membership.rs"), &wire, &lock, false),
        0,
        "the membership protocol slice matches its blessed lock"
    );
    // Negative control for the membership additions: swapping the
    // DrainNode/DecommissionAck tags is the refactor most likely to slip
    // through review, and an old peer would decode a drain command as an
    // ack. The drift check must flag it as breaking...
    assert_eq!(
        schema_exit(
            &schema_fixture("proto_membership_renumber.rs"),
            &wire,
            &lock,
            false,
        ),
        1,
        "renumbering membership tags must fail the drift check"
    );

    // ...and --bless must refuse to launder it at the same version.
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("schema_membership");
    std::fs::create_dir_all(&tmp).expect("mk tmpdir");
    let scratch = tmp.join("schema.lock").to_string_lossy().into_owned();
    std::fs::copy(schema_fixture("schema_membership.lock"), &scratch).expect("copy blessed lock");
    assert_eq!(
        schema_exit(
            &schema_fixture("proto_membership_renumber.rs"),
            &wire,
            &scratch,
            true,
        ),
        1,
        "--bless must refuse renumbered membership tags without a version bump"
    );
}

#[test]
fn reordered_tier_field_is_a_wire_break() {
    let lock = schema_fixture("schema_tier.lock");

    assert_eq!(
        schema_exit(
            &schema_fixture("proto_tier.rs"),
            &schema_fixture("wire_tier.rs"),
            &lock,
            false,
        ),
        0,
        "the tier protocol slice (dest_tier appended last at v2) matches \
         its blessed lock"
    );
    // Negative control for the tier additions: `dest_tier` was appended
    // as the LAST field of the Migration payload at the v2 bump, so old
    // decoders still find every pre-tier field at its old offset. Moving
    // it into the middle — the "group the small fields together" refactor
    // — makes an old peer read the tier byte as part of `bytes`. The
    // drift check must flag the renumbered field order as breaking...
    assert_eq!(
        schema_exit(
            &schema_fixture("proto_tier.rs"),
            &schema_fixture("wire_tier_renumber.rs"),
            &lock,
            false,
        ),
        1,
        "renumbering the Migration payload's field order must fail the \
         drift check"
    );

    // ...and --bless must refuse to launder it at the same version.
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("schema_tier");
    std::fs::create_dir_all(&tmp).expect("mk tmpdir");
    let scratch = tmp.join("schema.lock").to_string_lossy().into_owned();
    std::fs::copy(schema_fixture("schema_tier.lock"), &scratch).expect("copy blessed lock");
    assert_eq!(
        schema_exit(
            &schema_fixture("proto_tier.rs"),
            &schema_fixture("wire_tier_renumber.rs"),
            &scratch,
            true,
        ),
        1,
        "--bless must refuse a reordered Migration payload without a \
         version bump"
    );
}

#[test]
fn schema_cli_is_clean_on_the_real_protocol() {
    let root = workspace_root().to_string_lossy().into_owned();
    let code = cli::run(&args(&["schema", "--root", &root]));
    assert_eq!(
        code, 0,
        "crates/net/src/proto.rs must match the committed crates/net/schema.lock; \
         if you changed the protocol intentionally, run `dyrs-verify -- schema --bless`"
    );
}
