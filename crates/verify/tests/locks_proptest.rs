//! Property test for the guard-scope tracker in `dyrs_verify::locks`.
//!
//! The generator emits a random function body — nested plain blocks,
//! `if let` guard blocks, block-scoped `let` guards, single-statement
//! temporary guards, early `drop`s, and inert statements — while
//! recording, from the construction itself, exactly which scopes the
//! walker must report. The property is that [`guard_scopes`] returns
//! precisely that set: every acquisition produces one scope, every scope
//! closes (balanced), and each closes on the right line (the `;` for
//! temporaries, the `drop` call, or the closing brace of its block).

use dyrs_verify::{guard_scopes, GuardScope};
use proptest::prelude::*;
use proptest::{Strategy, TestRng};

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Program {
    source: String,
    expected: Vec<GuardScope>,
}

/// Append one randomly-shaped block body to `lines`, recording the guard
/// scopes it creates. `open` ends are back-filled: `drop` closes a guard
/// at the drop line, anything still open closes at the `}` the caller
/// writes immediately after this returns.
fn gen_block(
    rng: &mut TestRng,
    depth: usize,
    lines: &mut Vec<String>,
    expected: &mut Vec<GuardScope>,
    counter: &mut usize,
) {
    let pad = "    ".repeat(depth);
    // Block-scoped guards opened in THIS block: (index into expected, var).
    let mut open: Vec<(usize, String)> = Vec::new();
    let n = 1 + rng.below(4) as usize;
    for _ in 0..n {
        match rng.below(6) {
            // Inert statement — must not open or close anything.
            0 => lines.push(format!("{pad}p.tick();")),
            // Block-scoped guard: lives until drop or the block's `}`.
            1 => {
                let k = rng.below(3);
                let name = format!("g{counter}");
                *counter += 1;
                let start = lines.len() + 1;
                lines.push(format!("{pad}let {name} = p.m{k}.lock().unwrap();"));
                expected.push(GuardScope {
                    lock: format!("P::m{k}"),
                    start_line: start,
                    end_line: 0,
                });
                open.push((expected.len() - 1, name));
            }
            // Temporary guard: dies at the `;` on the same line.
            2 => {
                let k = rng.below(3);
                let line = lines.len() + 1;
                lines.push(format!("{pad}p.m{k}.lock().unwrap().is_empty();"));
                expected.push(GuardScope {
                    lock: format!("P::m{k}"),
                    start_line: line,
                    end_line: line,
                });
            }
            // Nested plain block.
            3 if depth < 4 => {
                lines.push(format!("{pad}{{"));
                gen_block(rng, depth + 1, lines, expected, counter);
                lines.push(format!("{pad}}}"));
            }
            // `if let` guard: spans exactly the attached block.
            4 if depth < 4 => {
                let k = rng.below(3);
                let name = format!("g{counter}");
                *counter += 1;
                let start = lines.len() + 1;
                lines.push(format!("{pad}if let Ok({name}) = p.m{k}.lock() {{"));
                let idx = expected.len();
                expected.push(GuardScope {
                    lock: format!("P::m{k}"),
                    start_line: start,
                    end_line: 0,
                });
                gen_block(rng, depth + 1, lines, expected, counter);
                lines.push(format!("{pad}}}"));
                expected[idx].end_line = lines.len();
            }
            // Early drop of a same-block guard (inert if none is open).
            5 => {
                if open.is_empty() {
                    lines.push(format!("{pad}let x{counter} = 1;"));
                    *counter += 1;
                } else {
                    let pick = rng.below(open.len() as u64) as usize;
                    let (idx, name) = open.remove(pick);
                    let line = lines.len() + 1;
                    lines.push(format!("{pad}drop({name});"));
                    expected[idx].end_line = line;
                }
            }
            _ => lines.push(format!("{pad}p.tick();")),
        }
    }
    // Whatever survived dies at the closing brace the caller writes next.
    let close = lines.len() + 1;
    for (idx, _) in open {
        expected[idx].end_line = close;
    }
}

fn gen_program(rng: &mut TestRng) -> Program {
    let mut lines: Vec<String> = vec![
        "struct P {".into(),
        "    m0: Mutex<u32>,".into(),
        "    m1: Mutex<u32>,".into(),
        "    m2: Mutex<u32>,".into(),
        "}".into(),
        String::new(),
        "fn scramble(p: &P) {".into(),
    ];
    let mut expected = Vec::new();
    let mut counter = 0usize;
    gen_block(rng, 1, &mut lines, &mut expected, &mut counter);
    lines.push("}".into());
    expected.sort_by(|a, b| {
        (a.start_line, a.end_line, &a.lock).cmp(&(b.start_line, b.end_line, &b.lock))
    });
    Program {
        source: lines.join("\n") + "\n",
        expected,
    }
}

#[derive(Debug)]
struct ArbProgram;

impl Strategy for ArbProgram {
    type Value = Program;
    fn generate(&self, rng: &mut TestRng) -> Program {
        gen_program(rng)
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The walker's scope tracking is balanced and exact on arbitrary
    /// brace/guard nesting: one scope per acquisition, every scope
    /// closed, start/end lines exactly as constructed.
    #[test]
    fn guard_scopes_match_construction(prog in ArbProgram) {
        let scopes = guard_scopes(&prog.source);
        let total_lines = prog.source.lines().count();
        for s in &scopes {
            prop_assert!(
                s.start_line <= s.end_line && s.end_line <= total_lines,
                "unbalanced scope {s:?} in:\n{}",
                prog.source
            );
        }
        prop_assert_eq!(
            &scopes,
            &prog.expected,
            "scope set diverged from construction; source:\n{}",
            prog.source
        );
    }
}
