//! Lint fixture: raw sockets and thread spawns outside `crates/net`.
//! Scanned by `tests/lint_fixtures.rs` — never compiled, so it needs no
//! real dependencies. Every hazard here must be caught; the
//! commented-out ones must NOT be (comments are stripped before rules
//! run).

// let banned = std::net::TcpStream::connect(addr);  <- comment: must not fire

pub fn opens_raw_socket(addr: &str) -> std::io::Result<std::net::TcpStream> {
    // net-fence: sockets live behind the dyrs-net Transport trait.
    std::net::TcpStream::connect(addr)
}

pub fn spawns_thread() {
    // net-fence: ad-hoc threads make event order machine-dependent.
    std::thread::spawn(|| {});
}

pub fn scoped_threads() {
    // net-fence: crossbeam scopes are spawns too.
    crossbeam::scope(|s| drop(s)).expect("scope");
}

pub fn says_tcpstream_in_a_string() -> &'static str {
    "TcpStream is only prose here and must not fire"
}
