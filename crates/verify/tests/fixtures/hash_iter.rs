//! Lint fixture: hash-ordered iteration in a decision path, NaN-unsafe
//! float ordering, and invariant-free panics. Scanned by
//! `tests/lint_fixtures.rs` — never compiled.

use std::collections::HashMap;

pub struct Scheduler {
    pub queued: HashMap<u64, u64>,
}

pub fn pick_target(s: &Scheduler) -> Option<u64> {
    // nondet-iter: hash order decides which node wins the tie.
    for (node, bytes) in s.queued.iter() {
        if *bytes == 0 {
            return Some(*node);
        }
    }
    None
}

pub fn sort_by_cost(costs: &mut Vec<f64>) {
    // nan-compare: silently mis-sorts the moment a NaN appears.
    costs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn first_queued(s: &Scheduler) -> u64 {
    // lib-unwrap: which invariant did we just assume?
    *s.queued.keys().next().unwrap()
}

pub fn keyed_access_is_fine(s: &Scheduler) -> Option<u64> {
    s.queued.get(&7).copied()
}

#[cfg(test)]
mod tests {
    // Test code is exempt from lib-unwrap: this must not fire.
    pub fn in_test_unwrap(v: Option<u64>) -> u64 {
        v.unwrap()
    }
}
