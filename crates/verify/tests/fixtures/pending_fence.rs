//! Lint fixture: raw pending-store access outside `crates/core/src/sched`.
//! Scanned by `tests/lint_fixtures.rs` — never compiled, so it needs no
//! real dependencies. Every hazard here must be caught; the
//! commented-out ones must NOT be (comments are stripped before rules
//! run).

// for e in master.sched.raw_pending.iter() {}  <- comment: must not fire
// let n = sched.raw_shards.len();  <- comment: must not fire

pub fn iterates_raw_store(sched: &Scheduler) -> usize {
    // pending-fence: the slab's indexes and dirty-sets drift if callers
    // reach around the Scheduler API.
    sched.raw_pending.len()
}

pub fn mutates_raw_slot(sched: &mut Scheduler) {
    // pending-fence: even single-slot writes bypass the dirty tracking.
    sched.raw_pending[0] = None;
}

pub fn iterates_the_shard_vector(sched: &Scheduler) -> usize {
    // pending-fence: the shard vector is as raw as the slab — walking it
    // from outside the module reads entries the dirty-sets don't cover.
    sched.raw_shards.iter().map(|s| s.len()).sum()
}

pub fn indexes_a_shard_directly(sched: &mut Scheduler) {
    // pending-fence: single-shard reach-around, same hazard.
    sched.raw_shards[0].queue.clear();
}

pub fn says_raw_pending_in_a_string() -> &'static str {
    "raw_pending is only prose here and must not fire"
}

pub fn a_rawer_identifier_is_fine(raw_pending_depth: usize, raw_shards_hint: usize) -> usize {
    // not the tokens themselves: identifier boundaries must hold
    raw_pending_depth + raw_shards_hint
}
