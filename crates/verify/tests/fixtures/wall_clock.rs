//! Lint fixture: wall-clock reads and ambient entropy in simulation
//! code. Scanned by `tests/lint_fixtures.rs` — never compiled, so it
//! needs no real dependencies. Every hazard here must be caught; the
//! commented-out ones must NOT be (comments are stripped before rules
//! run).

// let banned = std::time::Instant::now();  <- comment: must not fire

pub fn stamp_wallclock() -> std::time::Instant {
    // wall-clock: the simulation must only observe SimTime.
    std::time::Instant::now()
}

pub fn stamp_system_time() -> u64 {
    let t = std::time::SystemTime::now();
    secs_since_epoch(t)
}

pub fn ambient_seed() -> u64 {
    // ambient-rng: entropy outside simkit::rng breaks replay.
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn says_instant_in_a_string() -> &'static str {
    "Instant::now is only prose here and must not fire"
}
