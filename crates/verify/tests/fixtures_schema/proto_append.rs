//! Mutation of `proto_ok.rs`: a new `Ping` variant with a fresh tag —
//! the one legitimate kind of schema change. Expected: non-breaking
//! `schema-drift` that `--bless` accepts without a version bump.

pub const PROTOCOL_VERSION: u16 = 1;

pub enum Message {
    Hello { role: Role, node: u32 },
    Welcome { version: u16 },
    Ping { seq: u64 },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 1,
            Message::Ping { .. } => 2,
        }
    }
}
