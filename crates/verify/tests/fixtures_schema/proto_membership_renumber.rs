//! Mutation of `proto_membership.rs`: `DrainNode` and `DecommissionAck`
//! swap wire tags — the exact drift a careless "clean up the message
//! order" refactor produces. An old peer would decode a drain command
//! as an ack (and vice versa), so this must fail the drift check as
//! breaking, and `--bless` must refuse it at the same protocol version.

pub const PROTOCOL_VERSION: u16 = 1;

pub enum Message {
    Hello { role: Role, node: u32 },
    Welcome { version: u16 },
    JoinRequest { node: u32 },
    DrainNode { node: u32 },
    DecommissionAck { node: u32, membership: u8 },
    Checkpoint { data: Vec<u8> },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 1,
            Message::JoinRequest { .. } => 2,
            Message::DrainNode { .. } => 4,
            Message::DecommissionAck { .. } => 3,
            Message::Checkpoint { .. } => 5,
        }
    }
}
