//! Schema-pass fixture codec for the tier slice: `Migration` encodes
//! `dest_tier` last, exactly how the real protocol appended it at the
//! v1 → v2 bump (old decoders read every pre-tier field at its old
//! offset and only the trailing byte is new).

wire_newtype!(NodeId => u32, BlockId => u64);

impl Wire for Role {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Role::Slave => 0,
            Role::Client => 1,
        });
    }
}

impl Wire for Migration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.block.encode(out);
        self.bytes.encode(out);
        self.dest_tier.encode(out);
    }
}
