//! Schema-pass fixture: the membership slice of the protocol in
//! miniature — join/drain/ack/checkpoint riding on fresh tags after the
//! handshake pair. `schema_membership.lock` is its blessed snapshot;
//! `proto_membership_renumber.rs` renumbers two of the tags and must
//! fail the drift check as a wire break.

pub const PROTOCOL_VERSION: u16 = 1;

pub enum Message {
    Hello { role: Role, node: u32 },
    Welcome { version: u16 },
    JoinRequest { node: u32 },
    DrainNode { node: u32 },
    DecommissionAck { node: u32, membership: u8 },
    Checkpoint { data: Vec<u8> },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 1,
            Message::JoinRequest { .. } => 2,
            Message::DrainNode { .. } => 3,
            Message::DecommissionAck { .. } => 4,
            Message::Checkpoint { .. } => 5,
        }
    }
}
