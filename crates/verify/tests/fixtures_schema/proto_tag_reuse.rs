//! Mutation of `proto_ok.rs`: the new `Ping` variant reuses wire tag 0,
//! which belongs to `Hello`. Expected: breaking `schema-drift` (tag
//! reuse).

pub const PROTOCOL_VERSION: u16 = 1;

pub enum Message {
    Hello { role: Role, node: u32 },
    Welcome { version: u16 },
    Ping { seq: u64 },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 1,
            Message::Ping { .. } => 0,
        }
    }
}
