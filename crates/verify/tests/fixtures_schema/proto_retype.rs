//! Mutation of `proto_ok.rs`: `Hello.node` widened from u32 to u64 —
//! same names, same order, different bytes. Expected: breaking
//! `schema-drift` (field retype).

pub const PROTOCOL_VERSION: u16 = 1;

pub enum Message {
    Hello { role: Role, node: u64 },
    Welcome { version: u16 },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 1,
        }
    }
}
