//! Schema-pass fixture: the tier slice of the protocol in miniature —
//! protocol v2's `Migration` payload with `dest_tier` appended as the
//! last field (the tier-aware Algorithm 1 addition). `schema_tier.lock`
//! is its blessed snapshot; `wire_tier_renumber.rs` moves `dest_tier`
//! into the middle of the encode order and must fail the drift check as
//! a wire break.

pub const PROTOCOL_VERSION: u16 = 2;

pub enum Message {
    Hello { role: Role, node: u32 },
    Welcome { version: u16 },
    Bind { migrations: Vec<Migration> },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 1,
            Message::Bind { .. } => 2,
        }
    }
}
