//! Mutation of `proto_ok.rs`: `Hello`'s fields are swapped. The bytes a
//! peer on the old layout decodes as `role` are now `node`'s. Expected:
//! breaking `schema-drift` (field reorder).

pub const PROTOCOL_VERSION: u16 = 1;

pub enum Message {
    Hello { node: u32, role: Role },
    Welcome { version: u16 },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 1,
        }
    }
}
