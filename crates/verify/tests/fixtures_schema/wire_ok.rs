//! Schema-pass fixture codec: one enum-discriminant impl, one
//! field-order impl, and a newtype macro invocation — the three payload
//! shapes the snapshot records structurally.

wire_newtype!(NodeId => u32, BlockId => u64);

impl Wire for Role {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Role::Slave => 0,
            Role::Client => 1,
        });
    }
}

impl Wire for Sample {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.bytes.encode(out);
    }
}
