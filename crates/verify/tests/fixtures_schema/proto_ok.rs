//! Schema-pass fixture: a miniature protocol in the same shape as
//! `crates/net/src/proto.rs`. `schema_ok.lock` is its blessed snapshot;
//! the `proto_*.rs` siblings are mutations of this file that must each
//! fail the drift check in a specific way.

pub const PROTOCOL_VERSION: u16 = 1;

pub enum Message {
    Hello { role: Role, node: u32 },
    Welcome { version: u16 },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Welcome { .. } => 1,
        }
    }
}
