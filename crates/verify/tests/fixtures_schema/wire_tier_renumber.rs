//! Mutation of `wire_tier.rs`: `dest_tier` encodes in the middle of the
//! `Migration` payload instead of last — the drift a "group the small
//! fields together" refactor produces. An old peer would read the tier
//! byte as the high byte of `bytes`, so this must fail the drift check
//! as breaking, and `--bless` must refuse it at the same version.

wire_newtype!(NodeId => u32, BlockId => u64);

impl Wire for Role {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Role::Slave => 0,
            Role::Client => 1,
        });
    }
}

impl Wire for Migration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.block.encode(out);
        self.dest_tier.encode(out);
        self.bytes.encode(out);
    }
}
