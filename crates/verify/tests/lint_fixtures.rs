//! End-to-end lint checks: the scanner must fire on the seeded fixtures
//! (proving the rules detect what they claim to), exit non-zero on them
//! through the real CLI, and exit zero on the actual workspace tree.

use dyrs_verify::{cli, scan_file, scan_workspace, Allowlist, Rule};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/verify sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn fixtures_trigger_every_rule() {
    let findings = scan_file(&workspace_root(), &[fixture_dir()]).expect("fixtures scan");
    let fired: Vec<Rule> = {
        let mut rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
        rules.sort();
        rules.dedup();
        rules
    };
    assert_eq!(
        fired,
        vec![
            Rule::NondetIter,
            Rule::WallClock,
            Rule::AmbientRng,
            Rule::NanCompare,
            Rule::LibUnwrap,
            Rule::NetFence,
            Rule::PendingFence,
        ],
        "every rule must fire on the fixtures; findings: {findings:#?}"
    );
}

#[test]
fn fixtures_do_not_fire_on_comments_strings_or_tests() {
    let findings = scan_file(&workspace_root(), &[fixture_dir()]).expect("fixtures scan");
    for f in &findings {
        assert!(
            !f.excerpt.contains("must not fire"),
            "rule fired on exempt code: {f}"
        );
    }
    // The `#[cfg(test)]` unwrap and the keyed access are exempt: exactly
    // one lib-unwrap (the bare `.next().unwrap()` in pick/first path).
    let unwraps = findings
        .iter()
        .filter(|f| f.rule == Rule::LibUnwrap)
        .count();
    assert_eq!(unwraps, 1, "findings: {findings:#?}");
}

#[test]
fn cli_exits_nonzero_on_fixtures() {
    let args: Vec<String> = vec![
        "lint".into(),
        "--root".into(),
        workspace_root().display().to_string(),
        fixture_dir().display().to_string(),
    ];
    assert_eq!(cli::run(&args), 1, "seeded hazards must fail the lint");
}

#[test]
fn cli_exits_zero_on_the_workspace_tree() {
    let root = workspace_root();
    let args: Vec<String> = vec!["lint".into(), "--root".into(), root.display().to_string()];
    assert_eq!(
        cli::run(&args),
        0,
        "the tree must stay lint-clean (run `cargo run -p dyrs-verify -- lint` to see why)"
    );
}

#[test]
fn emitted_allowlist_roundtrips_and_suppresses_everything() {
    let findings = scan_file(&workspace_root(), &[fixture_dir()]).expect("fixtures scan");
    assert!(!findings.is_empty());
    let text: String = findings
        .iter()
        .map(|f| format!("{}\n", Allowlist::format_entry(f)))
        .collect();
    let allowlist = Allowlist::parse(&text).expect("emitted entries must parse back");
    let (kept, suppressed, stale) = allowlist.apply(findings);
    assert!(
        kept.is_empty(),
        "every finding must be suppressed: {kept:#?}"
    );
    assert_eq!(suppressed, allowlist.len());
    assert!(stale.is_empty(), "no entry may be stale: {stale:#?}");
}

#[test]
fn workspace_scan_matches_checked_in_allowlist() {
    // Belt and braces for `cli_exits_zero_on_the_workspace_tree`: the raw
    // scan may only contain findings justified in verify-allowlist.txt.
    let root = workspace_root();
    let findings = scan_workspace(&root).expect("workspace scan");
    let text = std::fs::read_to_string(root.join("verify-allowlist.txt"))
        .expect("checked-in allowlist exists");
    let allowlist = Allowlist::parse(&text).expect("checked-in allowlist parses");
    let (kept, _, stale) = allowlist.apply(findings);
    assert!(kept.is_empty(), "unsuppressed findings: {kept:#?}");
    assert!(stale.is_empty(), "stale allowlist entries: {stale:#?}");
}
