//! # dyrs-cluster — cluster hardware model
//!
//! Models the physical substrate the DYRS evaluation runs on: a set of
//! nodes, each with a spinning disk (a fluid-share resource with
//! concurrency degradation), a memory store, a memory bus, and a NIC.
//!
//! The paper's testbed is 8 servers — 1 master + 7 workers — each with a
//! 1 TB HDD, 128 GB RAM, and 10 GbE ([`NodeSpec::paper_default`] mirrors
//! those numbers). Heterogeneity is introduced exactly the way the paper
//! does it (§V-C): interference readers that consume disk bandwidth on
//! selected nodes, either persistently or alternating on fixed periods
//! ([`interference`]).
//!
//! Every read in the simulator maps to a stream on exactly one fluid
//! resource:
//!
//! | read | resource |
//! |---|---|
//! | local disk | that node's [`Node::disk`] |
//! | remote disk | the *serving* node's disk (10 GbE is never the bottleneck for a ~140 MB/s HDD) |
//! | local memory | the node's [`Node::membus`] |
//! | remote memory | the serving node's [`Node::nic`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interference;
pub mod memory;
pub mod node;

pub use interference::{InterferencePattern, InterferenceSchedule, Toggle, DD_WEIGHT};
pub use memory::MemoryStore;
pub use node::{Cluster, ClusterSpec, Node, NodeId, NodeSpec};

/// Bytes in one mebibyte.
pub const MIB: u64 = 1 << 20;
/// Bytes in one gibibyte.
pub const GIB: u64 = 1 << 30;
