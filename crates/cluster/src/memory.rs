//! Per-node memory accounting.
//!
//! DYRS slaves buffer migrated blocks in RAM (the real system uses
//! `mmap`/`mlock` into the buffer cache, §IV-1). The simulator only needs
//! the *accounting*: how many bytes are pinned, whether a new migration
//! fits under the configured hard limit (§IV-A1), and the peak footprint
//! for Figure 7.

use serde::{Deserialize, Serialize};

/// Byte-accurate memory reservation tracker with a hard limit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryStore {
    capacity: u64,
    used: u64,
    peak: u64,
    /// Cumulative bytes ever pinned (for footprint reporting).
    total_pinned: u64,
}

impl MemoryStore {
    /// A store with the given hard capacity limit in bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryStore {
            capacity,
            used: 0,
            peak: 0,
            total_pinned: 0,
        }
    }

    /// Hard limit in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently pinned.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Free bytes under the limit.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Highest pinned footprint seen so far.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Cumulative bytes ever pinned (monotone).
    pub fn total_pinned(&self) -> u64 {
        self.total_pinned
    }

    /// True if `bytes` more can be pinned without exceeding the limit.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Pin `bytes`; returns `false` (and changes nothing) if it doesn't fit.
    #[must_use]
    pub fn pin(&mut self, bytes: u64) -> bool {
        if !self.fits(bytes) {
            return false;
        }
        self.used += bytes;
        self.total_pinned += bytes;
        self.peak = self.peak.max(self.used);
        true
    }

    /// Unpin `bytes`. Panics if more is released than is pinned — that is
    /// always an accounting bug in the caller.
    pub fn unpin(&mut self, bytes: u64) {
        assert!(
            bytes <= self.used,
            "unpin {bytes} exceeds pinned {}",
            self.used
        );
        self.used -= bytes;
    }

    /// Drop all pins (slave process failure: the OS reclaims everything,
    /// §III-C2). Peak and cumulative counters are preserved.
    pub fn clear(&mut self) {
        self.used = 0;
    }
}

impl simkit::audit::Audit for MemoryStore {
    fn audit(&self, report: &mut simkit::audit::AuditReport) {
        let c = "memory-store";
        report.check(
            self.used <= self.capacity,
            c,
            "§IV-A1: pinned bytes stay under the configured hard limit",
            || format!("used {} > capacity {}", self.used, self.capacity),
        );
        report.check(
            self.used <= self.peak,
            c,
            "peak is the high-water mark of used",
            || format!("used {} > peak {}", self.used, self.peak),
        );
        report.check(
            self.peak <= self.total_pinned,
            c,
            "cumulative pinned bytes bound the peak",
            || format!("peak {} > total_pinned {}", self.peak, self.total_pinned),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_and_unpin_roundtrip() {
        let mut m = MemoryStore::new(100);
        assert!(m.pin(60));
        assert_eq!(m.used(), 60);
        assert_eq!(m.available(), 40);
        m.unpin(20);
        assert_eq!(m.used(), 40);
    }

    #[test]
    fn pin_rejected_over_limit() {
        let mut m = MemoryStore::new(100);
        assert!(m.pin(80));
        assert!(!m.pin(30));
        assert_eq!(m.used(), 80, "failed pin must not change state");
        assert!(m.pin(20));
        assert_eq!(m.available(), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryStore::new(100);
        assert!(m.pin(70));
        m.unpin(50);
        assert!(m.pin(30));
        assert_eq!(m.peak(), 70);
        assert_eq!(m.total_pinned(), 100);
    }

    #[test]
    fn clear_releases_everything() {
        let mut m = MemoryStore::new(100);
        assert!(m.pin(99));
        m.clear();
        assert_eq!(m.used(), 0);
        assert_eq!(m.peak(), 99);
    }

    #[test]
    #[should_panic(expected = "unpin")]
    fn over_unpin_panics() {
        let mut m = MemoryStore::new(100);
        assert!(m.pin(10));
        m.unpin(11);
    }

    #[test]
    fn fits_is_exact() {
        let mut m = MemoryStore::new(10);
        assert!(m.fits(10));
        assert!(!m.fits(11));
        assert!(m.pin(10));
        assert!(m.fits(0));
        assert!(!m.fits(1));
    }
}
