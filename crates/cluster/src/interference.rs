//! Interference generators.
//!
//! The paper creates bandwidth heterogeneity by running `dd` readers
//! against the disk of selected nodes (§V-C): persistently for fixed
//! heterogeneity, or alternating on/off every 10 s or 20 s (optionally
//! anti-phased across two nodes) for dynamic heterogeneity (§V-F, Fig. 9,
//! Table II).
//!
//! An interference source is realised in the simulator as `streams`
//! infinite-length readers on the victim node's disk. This module only
//! computes the *schedule* of on/off toggles; the simulation driver turns
//! toggles into fluid streams.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};

/// How interference on one node behaves over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InterferencePattern {
    /// Always on from t=0 (the paper's `dd` pair on the handicapped node).
    Persistent,
    /// On for `period`, off for `period`, starting in the given phase.
    /// `start_on = false` begins with an off interval (used to anti-phase
    /// node #2 against node #1 in Figs. 9d/9e).
    Alternating {
        /// Length of each on/off interval.
        period: SimDuration,
        /// Whether the first interval is on.
        start_on: bool,
    },
    /// Arbitrary toggle instants (explicit trace).
    Custom(Vec<Toggle>),
    /// Utilization-trace-driven background load: at each sample instant
    /// the node's disk carries a background stream consuming the given
    /// fraction of its base bandwidth (realized as a rate-capped infinite
    /// stream). Used to replay Google-trace-style conditions (§II) onto
    /// the evaluation cluster; `streams`/`weight` are ignored.
    TraceDriven(Vec<(SimTime, f64)>),
}

/// A single on/off transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Toggle {
    /// When the transition happens.
    pub at: SimTime,
    /// The state after the transition.
    pub on: bool,
}

/// Default fluid weight of one interference reader. A `dd` with direct IO
/// and large block sizes keeps deep sequential request queues, so it
/// crowds out a chunk-at-a-time application reader more than 1:1 fair
/// sharing would suggest; the weight models that aggressiveness. With the
/// paper's two `dd` readers this makes a fully-loaded victim node's task
/// reads ~6× slower (classic starvation of a synchronous chunked reader
/// behind deep sequential queues) and its migrations ~80× slower — matching the
/// "13×" busiest node of the paper's Fig. 1.
pub const DD_WEIGHT: f64 = 40.0;

/// Interference bound to a victim node.
///
/// ```
/// use dyrs_cluster::{InterferenceSchedule, NodeId};
/// use simkit::{SimDuration, SimTime};
///
/// // the paper's Fig. 9c pattern: two dd readers, 20 s on / 20 s off
/// let s = InterferenceSchedule::alternating(
///     NodeId(0), 2, SimDuration::from_secs(20), true);
/// let toggles = s.toggles(SimTime::from_secs(60));
/// assert_eq!(toggles.len(), 4); // t = 0, 20, 40, 60
/// assert!(toggles[0].on && !toggles[1].on);
/// assert!((s.duty_cycle(SimTime::from_secs(60)) - 0.5).abs() < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceSchedule {
    /// The node whose disk is attacked.
    pub node: NodeId,
    /// Number of concurrent reader streams (the paper uses two `dd` jobs).
    pub streams: u32,
    /// Fluid weight per reader stream (see [`DD_WEIGHT`]).
    pub weight: f64,
    /// Temporal pattern.
    pub pattern: InterferencePattern,
}

impl InterferenceSchedule {
    /// Persistent interference with `streams` readers on `node`.
    pub fn persistent(node: NodeId, streams: u32) -> Self {
        InterferenceSchedule {
            node,
            streams,
            weight: DD_WEIGHT,
            pattern: InterferencePattern::Persistent,
        }
    }

    /// Alternating interference (`period` on, `period` off) on `node`.
    pub fn alternating(node: NodeId, streams: u32, period: SimDuration, start_on: bool) -> Self {
        InterferenceSchedule {
            node,
            streams,
            weight: DD_WEIGHT,
            pattern: InterferencePattern::Alternating { period, start_on },
        }
    }

    /// Override the per-stream weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0 && weight.is_finite(), "invalid weight");
        self.weight = weight;
        self
    }

    /// Utilization samples for a trace-driven schedule (`None` for the
    /// on/off patterns).
    pub fn background_samples(&self, horizon: SimTime) -> Option<Vec<(SimTime, f64)>> {
        match &self.pattern {
            InterferencePattern::TraceDriven(samples) => Some(
                samples
                    .iter()
                    .copied()
                    .filter(|&(t, _)| t <= horizon)
                    .map(|(t, u)| (t, u.clamp(0.0, 0.99)))
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Expand the pattern into explicit toggles covering `[0, horizon]`.
    /// The result always starts with a toggle at t=0 establishing the
    /// initial state, and toggles are strictly increasing in time.
    /// Trace-driven schedules have no toggles (see
    /// [`InterferenceSchedule::background_samples`]).
    pub fn toggles(&self, horizon: SimTime) -> Vec<Toggle> {
        match &self.pattern {
            InterferencePattern::TraceDriven(_) => Vec::new(),
            InterferencePattern::Persistent => vec![Toggle {
                at: SimTime::ZERO,
                on: true,
            }],
            InterferencePattern::Alternating { period, start_on } => {
                assert!(!period.is_zero(), "zero alternation period");
                let mut out = Vec::new();
                let mut t = SimTime::ZERO;
                let mut on = *start_on;
                while t <= horizon {
                    out.push(Toggle { at: t, on });
                    t += *period;
                    on = !on;
                }
                out
            }
            InterferencePattern::Custom(ts) => {
                let mut out: Vec<Toggle> = ts.iter().copied().filter(|t| t.at <= horizon).collect();
                out.sort_by_key(|t| t.at);
                if out.first().map(|t| t.at) != Some(SimTime::ZERO) {
                    out.insert(
                        0,
                        Toggle {
                            at: SimTime::ZERO,
                            on: false,
                        },
                    );
                }
                out
            }
        }
    }

    /// Fraction of `[0, horizon]` during which interference is active.
    /// For trace-driven schedules this is the mean utilization.
    pub fn duty_cycle(&self, horizon: SimTime) -> f64 {
        if let Some(samples) = self.background_samples(horizon) {
            if samples.is_empty() {
                return 0.0;
            }
            return samples.iter().map(|&(_, u)| u).sum::<f64>() / samples.len() as f64;
        }
        let toggles = self.toggles(horizon);
        let mut on_time = SimDuration::ZERO;
        for (i, t) in toggles.iter().enumerate() {
            if t.on {
                let end = toggles.get(i + 1).map(|n| n.at).unwrap_or(horizon);
                on_time += end.min(horizon).saturating_since(t.at);
            }
        }
        on_time.as_micros() as f64 / horizon.as_micros().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hz() -> SimTime {
        SimTime::from_secs(100)
    }

    #[test]
    fn persistent_is_single_on_toggle() {
        let s = InterferenceSchedule::persistent(NodeId(1), 2);
        let t = s.toggles(hz());
        assert_eq!(
            t,
            vec![Toggle {
                at: SimTime::ZERO,
                on: true
            }]
        );
        assert!((s.duty_cycle(hz()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alternating_10s_has_half_duty() {
        let s = InterferenceSchedule::alternating(NodeId(0), 2, SimDuration::from_secs(10), true);
        let toggles = s.toggles(hz());
        assert_eq!(toggles.len(), 11); // t=0,10,...,100
        assert!(toggles[0].on);
        assert!(!toggles[1].on);
        assert!((s.duty_cycle(hz()) - 0.5).abs() < 0.01);
    }

    #[test]
    fn anti_phase_starts_off() {
        let s = InterferenceSchedule::alternating(NodeId(1), 2, SimDuration::from_secs(10), false);
        let toggles = s.toggles(hz());
        assert!(!toggles[0].on);
        assert!(toggles[1].on);
        assert!((s.duty_cycle(hz()) - 0.5).abs() < 0.01);
    }

    #[test]
    fn complementary_patterns_cover_everything() {
        // Figs 9d/9e: when node 1 is on, node 2 is off and vice versa.
        let a = InterferenceSchedule::alternating(NodeId(0), 2, SimDuration::from_secs(20), true);
        let b = InterferenceSchedule::alternating(NodeId(1), 2, SimDuration::from_secs(20), false);
        let d = a.duty_cycle(hz()) + b.duty_cycle(hz());
        assert!((d - 1.0).abs() < 0.01, "duty cycles must sum to 1, got {d}");
    }

    #[test]
    fn custom_is_sorted_and_anchored() {
        let s = InterferenceSchedule {
            node: NodeId(0),
            streams: 1,
            weight: DD_WEIGHT,
            pattern: InterferencePattern::Custom(vec![
                Toggle {
                    at: SimTime::from_secs(30),
                    on: false,
                },
                Toggle {
                    at: SimTime::from_secs(10),
                    on: true,
                },
            ]),
        };
        let t = s.toggles(hz());
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].at, SimTime::ZERO);
        assert!(!t[0].on);
        assert_eq!(t[1].at, SimTime::from_secs(10));
        assert!((s.duty_cycle(hz()) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn trace_driven_exposes_samples_not_toggles() {
        let s = InterferenceSchedule {
            node: NodeId(0),
            streams: 0,
            weight: 1.0,
            pattern: InterferencePattern::TraceDriven(vec![
                (SimTime::ZERO, 0.2),
                (SimTime::from_secs(10), 1.5),  // clamped
                (SimTime::from_secs(200), 0.9), // beyond horizon
            ]),
        };
        assert!(s.toggles(hz()).is_empty());
        let samples = s
            .background_samples(hz())
            .expect("TraceDriven servers always carry background samples");
        assert_eq!(samples.len(), 2);
        assert!((samples[1].1 - 0.99).abs() < 1e-9, "clamped to 0.99");
        let duty = s.duty_cycle(hz());
        assert!((duty - (0.2 + 0.99) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn toggles_beyond_horizon_are_dropped() {
        let s = InterferenceSchedule {
            node: NodeId(0),
            streams: 1,
            weight: DD_WEIGHT,
            pattern: InterferencePattern::Custom(vec![
                Toggle {
                    at: SimTime::ZERO,
                    on: true,
                },
                Toggle {
                    at: SimTime::from_secs(500),
                    on: false,
                },
            ]),
        };
        assert_eq!(s.toggles(hz()).len(), 1);
    }
}
