//! Nodes and clusters.

use crate::memory::MemoryStore;
use dyrs_tiers::TierStackSpec;
use serde::{Deserialize, Serialize};
use simkit::FluidResource;
use std::fmt;

/// Identifies a node (DataNode / DYRS slave host) within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static description of one node's hardware.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Sequential disk bandwidth with a single reader, bytes/sec.
    pub disk_bw: f64,
    /// Disk capacity degradation per extra concurrent stream
    /// (`cap(n) = bw / (1 + d·(n−1))` — seek thrashing).
    pub disk_degradation: f64,
    /// RAM available for migrated blocks, bytes (the DYRS hard limit).
    pub mem_capacity: u64,
    /// Memory-bus bandwidth for local in-memory reads, bytes/sec.
    pub membus_bw: f64,
    /// NIC bandwidth for serving remote in-memory reads, bytes/sec.
    pub nic_bw: f64,
    /// Rack the node lives in (HDFS-style topology; the paper's testbed
    /// is a single rack, so the default is rack 0 everywhere).
    #[serde(default)]
    pub rack: u32,
    /// Explicit storage hierarchy, fastest tier first. `None` (the
    /// default, and every pre-tier config) means the legacy 2-tier
    /// memory-over-disk stack derived from the fields above.
    #[serde(default)]
    pub tiers: Option<TierStackSpec>,
}

impl NodeSpec {
    /// The paper's testbed node (§V-A): ~1 TB HDD at ≈140 MB/s sequential,
    /// 128 GB RAM (we cap the migration buffer well below that), 10 GbE.
    pub fn paper_default() -> Self {
        NodeSpec {
            disk_bw: 140.0 * 1024.0 * 1024.0,
            disk_degradation: 0.02,
            mem_capacity: 96 * crate::GIB,
            membus_bw: 8.0 * 1024.0 * 1024.0 * 1024.0,
            nic_bw: 1.25 * 1024.0 * 1024.0 * 1024.0, // 10 Gbps
            rack: 0,
            tiers: None,
        }
    }

    /// The node's storage hierarchy: the explicit stack when configured,
    /// otherwise the legacy 2-tier memory-over-disk stack synthesized
    /// from the scalar fields (so every pre-tier config keeps its exact
    /// hardware model).
    pub fn tier_stack(&self) -> TierStackSpec {
        match &self.tiers {
            Some(s) => s.clone(),
            None => TierStackSpec::legacy(
                self.mem_capacity,
                self.membus_bw,
                self.disk_bw,
                self.disk_degradation,
            ),
        }
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Live state of one node: three fluid resources plus memory accounting.
#[derive(Debug)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// The static spec it was built from.
    pub spec: NodeSpec,
    /// Spinning disk (reads and migrations contend here).
    pub disk: FluidResource,
    /// Memory bus (local in-memory reads).
    pub membus: FluidResource,
    /// NIC (serving remote in-memory reads).
    pub nic: FluidResource,
    /// Middle buffer tiers (NVMe/SSD between memory and the backing
    /// disk): one device resource per tier index `1..`, stored at
    /// `mid_tiers[t - 1]`. Empty on the legacy 2-tier stack, where
    /// memory (tier 0) is the only buffer and is served by `membus`.
    pub mid_tiers: Vec<FluidResource>,
    /// Migration buffer accounting.
    pub memory: MemoryStore,
    /// Whether the node (server) is up. A failed server serves nothing.
    pub up: bool,
}

impl Node {
    fn new(id: NodeId, spec: NodeSpec) -> Self {
        let stack = spec.tier_stack();
        let mid_tiers = stack.buffer_tiers()[1..]
            .iter()
            .map(|t| FluidResource::new(t.read_bw, t.degradation))
            .collect();
        Node {
            disk: FluidResource::new(spec.disk_bw, spec.disk_degradation),
            membus: FluidResource::new(spec.membus_bw, 0.0),
            nic: FluidResource::new(spec.nic_bw, 0.0),
            mid_tiers,
            memory: MemoryStore::new(spec.mem_capacity),
            spec,
            id,
            up: true,
        }
    }

    /// The device resource behind middle buffer tier `t` (`1..`).
    pub fn mid_tier(&self, t: u8) -> &FluidResource {
        &self.mid_tiers[t as usize - 1]
    }

    /// Mutably borrow the device resource behind middle buffer tier `t`.
    pub fn mid_tier_mut(&mut self, t: u8) -> &mut FluidResource {
        &mut self.mid_tiers[t as usize - 1]
    }
}

/// Static description of a whole cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// One spec per worker node (the NameNode/master host is not modeled
    /// as a storage node, matching the paper's 1 + 7 layout).
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// `n` identical nodes of the paper's default hardware.
    pub fn uniform(n: usize) -> Self {
        ClusterSpec {
            nodes: vec![NodeSpec::paper_default(); n],
        }
    }

    /// The paper's 7 worker nodes.
    pub fn paper_default() -> Self {
        Self::uniform(7)
    }

    /// `n` identical nodes spread round-robin over `racks` racks.
    pub fn uniform_racked(n: usize, racks: u32) -> Self {
        assert!(racks > 0, "need at least one rack");
        ClusterSpec {
            nodes: (0..n)
                .map(|i| NodeSpec {
                    rack: i as u32 % racks,
                    ..NodeSpec::paper_default()
                })
                .collect(),
        }
    }

    /// The rack of each node, by index.
    pub fn racks(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.rack).collect()
    }

    /// Number of worker nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the spec has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Instantiate live cluster state.
    pub fn build(&self) -> Cluster {
        Cluster {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, s)| Node::new(NodeId(i as u32), s.clone()))
                .collect(),
        }
    }
}

/// Live cluster state: the per-node fluid resources and memory stores.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
}

impl Cluster {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Iterate over all nodes.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterate mutably over all nodes.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Node> {
        self.nodes.iter_mut()
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Ids of nodes currently up.
    pub fn up_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().filter(|n| n.up).map(|n| n.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    #[test]
    fn build_assigns_sequential_ids() {
        let c = ClusterSpec::uniform(7).build();
        assert_eq!(c.len(), 7);
        for (i, n) in c.iter().enumerate() {
            assert_eq!(n.id, NodeId(i as u32));
            assert!(n.up);
        }
    }

    #[test]
    fn paper_default_matches_testbed() {
        let spec = ClusterSpec::paper_default();
        assert_eq!(spec.len(), 7);
        let n = &spec.nodes[0];
        assert!((n.nic_bw - 1.25 * 1024.0 * 1024.0 * 1024.0).abs() < 1.0);
        assert!(n.membus_bw / n.disk_bw > 50.0, "RAM must dwarf disk");
    }

    #[test]
    fn node_resources_are_independent() {
        let mut c = ClusterSpec::uniform(2).build();
        let t = SimTime::ZERO;
        c.node_mut(NodeId(0)).disk.add_stream(t, 1e6, 1.0, 0);
        assert_eq!(c.node(NodeId(0)).disk.active_streams(), 1);
        assert_eq!(c.node(NodeId(1)).disk.active_streams(), 0);
    }

    #[test]
    fn up_ids_filters_failed() {
        let mut c = ClusterSpec::uniform(3).build();
        c.node_mut(NodeId(1)).up = false;
        let up: Vec<NodeId> = c.up_ids().collect();
        assert_eq!(up, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn racked_layout_round_robins() {
        let spec = ClusterSpec::uniform_racked(7, 3);
        assert_eq!(spec.racks(), vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(ClusterSpec::uniform(3).racks(), vec![0, 0, 0]);
    }

    #[test]
    fn default_tier_stack_is_legacy_two_tier() {
        let spec = NodeSpec::paper_default();
        let stack = spec.tier_stack();
        assert_eq!(stack.len(), 2);
        assert_eq!(stack.tiers[0].capacity, spec.mem_capacity);
        assert_eq!(stack.tiers[0].read_bw, spec.membus_bw);
        assert_eq!(stack.disk().read_bw, spec.disk_bw);
        assert_eq!(stack.disk().degradation, spec.disk_degradation);
        let node = ClusterSpec::uniform(1).build();
        assert!(node.node(NodeId(0)).mid_tiers.is_empty());
    }

    #[test]
    fn explicit_stack_builds_middle_tier_resources() {
        let mut spec = ClusterSpec::uniform(1);
        spec.nodes[0].tiers = Some(dyrs_tiers::TierStackSpec::four_tier(
            spec.nodes[0].mem_capacity,
            spec.nodes[0].membus_bw,
            spec.nodes[0].disk_bw,
            spec.nodes[0].disk_degradation,
        ));
        let c = spec.build();
        let n = c.node(NodeId(0));
        assert_eq!(n.mid_tiers.len(), 2, "nvme + ssd");
        assert!(n.mid_tier(1).base_capacity() > n.mid_tier(2).base_capacity());
    }

    #[test]
    fn display_and_index() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(NodeId(3).index(), 3);
    }
}
