//! Replica placement.
//!
//! HDFS places replicas pseudo-randomly across the cluster (rack awareness
//! is irrelevant on the paper's single-rack 8-node testbed). The policy
//! here samples `replication` distinct nodes uniformly, with a
//! deterministic RNG, and also tracks per-node placement counts so tests
//! can assert the balance the evaluation relies on.

use dyrs_cluster::NodeId;
use simkit::Rng;

/// Uniform random placement of `replication` distinct replicas over
/// `nodes` nodes, optionally rack-aware (HDFS's default policy).
#[derive(Debug, Clone)]
pub struct PlacementPolicy {
    nodes: u32,
    replication: usize,
    rng: Rng,
    placed: Vec<u64>,
    /// Rack of each node; `None` disables rack awareness (single rack).
    racks: Option<Vec<u32>>,
}

impl PlacementPolicy {
    /// Policy over node ids `0..nodes` with the given replication factor
    /// (single-rack: uniform distinct sampling).
    pub fn new(nodes: u32, replication: usize, rng: Rng) -> Self {
        assert!(nodes > 0, "empty cluster");
        assert!(
            replication >= 1 && replication <= nodes as usize,
            "replication {replication} impossible on {nodes} nodes"
        );
        PlacementPolicy {
            nodes,
            replication,
            rng,
            placed: vec![0; nodes as usize],
            racks: None,
        }
    }

    /// Rack-aware policy (HDFS default): the first replica lands on a
    /// random node, the second on a node in a *different* rack, and the
    /// third in the same rack as the second — surviving both a node and
    /// a whole-rack failure with only one off-rack transfer. Falls back
    /// to uniform sampling when every node shares one rack.
    pub fn rack_aware(racks: Vec<u32>, replication: usize, rng: Rng) -> Self {
        let nodes = racks.len() as u32;
        let mut p = Self::new(nodes, replication, rng);
        let distinct: std::collections::HashSet<u32> = racks.iter().copied().collect();
        if distinct.len() > 1 {
            p.racks = Some(racks);
        }
        p
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// True if rack-aware placement is active.
    pub fn is_rack_aware(&self) -> bool {
        self.racks.is_some()
    }

    /// Choose replica nodes for one new block: `replication` distinct
    /// nodes, sampled without replacement (rack-aware when configured).
    pub fn place(&mut self) -> Vec<NodeId> {
        let ids = match self.racks.clone() {
            Some(racks) => self.place_rack_aware(&racks),
            None => self.place_uniform(),
        };
        for &i in &ids {
            self.placed[i as usize] += 1;
        }
        ids.into_iter().map(NodeId).collect()
    }

    fn place_uniform(&mut self) -> Vec<u32> {
        // Floyd's algorithm would be fancier; with n ≤ dozens a partial
        // Fisher-Yates over the id range is simplest and exact.
        let mut ids: Vec<u32> = (0..self.nodes).collect();
        for i in 0..self.replication {
            let j = i + self.rng.below((ids.len() - i) as u64) as usize;
            ids.swap(i, j);
        }
        ids.truncate(self.replication);
        ids
    }

    fn place_rack_aware(&mut self, racks: &[u32]) -> Vec<u32> {
        fn pick(
            rng: &mut Rng,
            racks: &[u32],
            chosen: &[u32],
            pred: impl Fn(u32) -> bool,
        ) -> Option<u32> {
            let candidates: Vec<u32> = (0..racks.len() as u32)
                .filter(|&n| pred(n) && !chosen.contains(&n))
                .collect();
            if candidates.is_empty() {
                None
            } else {
                Some(candidates[rng.below(candidates.len() as u64) as usize])
            }
        }
        let mut chosen: Vec<u32> = Vec::with_capacity(self.replication);
        // replica 1: anywhere
        let first = pick(&mut self.rng, racks, &chosen, |_| true).expect("cluster non-empty");
        chosen.push(first);
        let first_rack = racks[first as usize];
        // replica 2: a different rack (fall back to anywhere)
        if self.replication >= 2 {
            let n = pick(&mut self.rng, racks, &chosen, |n| {
                racks[n as usize] != first_rack
            })
            .or_else(|| pick(&mut self.rng, racks, &chosen, |_| true))
            .expect("replication feasible");
            chosen.push(n);
        }
        // replica 3: same rack as replica 2 (fall back to anywhere)
        if self.replication >= 3 {
            let second_rack = racks[chosen[1] as usize];
            let n = pick(&mut self.rng, racks, &chosen, |n| {
                racks[n as usize] == second_rack
            })
            .or_else(|| pick(&mut self.rng, racks, &chosen, |_| true))
            .expect("replication feasible");
            chosen.push(n);
        }
        // extras: anywhere
        while chosen.len() < self.replication {
            let n = pick(&mut self.rng, racks, &chosen, |_| true).expect("replication feasible");
            chosen.push(n);
        }
        chosen
    }

    /// How many replicas have been placed on each node so far.
    pub fn placement_counts(&self) -> &[u64] {
        &self.placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn places_distinct_nodes() {
        let mut p = PlacementPolicy::new(7, 3, Rng::new(42));
        for _ in 0..1000 {
            let r = p.place();
            assert_eq!(r.len(), 3);
            let mut s = r.clone();
            s.sort();
            s.dedup();
            assert_eq!(s.len(), 3, "replicas must be distinct: {r:?}");
            assert!(r.iter().all(|n| n.0 < 7));
        }
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let mut p = PlacementPolicy::new(7, 3, Rng::new(7));
        for _ in 0..7000 {
            p.place();
        }
        // 21000 replicas over 7 nodes → expect 3000 ± 10%
        for &c in p.placement_counts() {
            assert!((2700..=3300).contains(&c), "unbalanced count {c}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = PlacementPolicy::new(5, 2, Rng::new(9));
        let mut b = PlacementPolicy::new(5, 2, Rng::new(9));
        for _ in 0..100 {
            assert_eq!(a.place(), b.place());
        }
    }

    #[test]
    fn full_replication_uses_all_nodes() {
        let mut p = PlacementPolicy::new(3, 3, Rng::new(1));
        let mut r = p.place();
        r.sort();
        assert_eq!(r, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn over_replication_rejected() {
        PlacementPolicy::new(2, 3, Rng::new(1));
    }

    #[test]
    fn rack_aware_spans_exactly_two_racks() {
        // HDFS default: replicas 2 and 3 share a rack different from
        // replica 1's → a 3-replica block spans exactly two racks.
        // every rack has ≥ 2 nodes, so the strict HDFS pattern always fits
        let racks = vec![0, 0, 0, 1, 1, 2, 2]; // 7 nodes, 3 racks
        let mut p = PlacementPolicy::rack_aware(racks.clone(), 3, Rng::new(5));
        assert!(p.is_rack_aware());
        for _ in 0..500 {
            let r = p.place();
            let mut distinct = r.clone();
            distinct.sort();
            distinct.dedup();
            assert_eq!(distinct.len(), 3, "replicas distinct: {r:?}");
            let rs: std::collections::HashSet<u32> = r.iter().map(|n| racks[n.index()]).collect();
            assert_eq!(rs.len(), 2, "block must span exactly 2 racks: {r:?}");
            // replicas 2 and 3 share a rack, different from replica 1's
            assert_ne!(racks[r[0].index()], racks[r[1].index()]);
            assert_eq!(racks[r[1].index()], racks[r[2].index()]);
        }
    }

    #[test]
    fn rack_aware_singleton_rack_falls_back_but_stays_valid() {
        // rack 2 has a single node; when replica 2 lands there the third
        // replica cannot share its rack and falls back to anywhere —
        // replicas stay distinct and still span ≥ 2 racks.
        let racks = vec![0, 0, 0, 1, 1, 1, 2];
        let mut p = PlacementPolicy::rack_aware(racks.clone(), 3, Rng::new(5));
        for _ in 0..500 {
            let r = p.place();
            let mut d = r.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), 3);
            let rs: std::collections::HashSet<u32> = r.iter().map(|n| racks[n.index()]).collect();
            assert!(rs.len() >= 2, "must span racks: {r:?}");
            assert_ne!(racks[r[0].index()], racks[r[1].index()]);
        }
    }

    #[test]
    fn rack_aware_falls_back_on_single_rack() {
        let mut p = PlacementPolicy::rack_aware(vec![0; 7], 3, Rng::new(5));
        assert!(!p.is_rack_aware());
        let r = p.place();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn rack_aware_with_two_node_rack_exhausts_gracefully() {
        // rack 1 has a single node: replica 3 cannot share replica 2's
        // rack when that rack is exhausted → falls back to anywhere.
        let racks = vec![0, 0, 1];
        let mut p = PlacementPolicy::rack_aware(racks, 3, Rng::new(5));
        for _ in 0..100 {
            let r = p.place();
            let mut d = r.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), 3);
        }
    }

    #[test]
    fn rack_aware_stays_balanced() {
        let racks = vec![0, 0, 0, 1, 1, 1];
        let mut p = PlacementPolicy::rack_aware(racks, 3, Rng::new(7));
        for _ in 0..4000 {
            p.place();
        }
        // 12000 replicas over 6 nodes → 2000 each ±20%
        for &c in p.placement_counts() {
            assert!((1600..=2400).contains(&c), "unbalanced: {c}");
        }
    }
}
