//! NameNode: namespace + block map + DataNode liveness + the in-memory
//! replica registry that the read path consults.
//!
//! Mirrors the HDFS master's role in the paper (§III-C, §IV): it tracks
//! which DataNodes are alive via heartbeats, where every block's disk
//! replicas are, and — once DYRS migrates a block — which nodes hold an
//! in-memory copy so that reads can be redirected to it.

use crate::block::BlockMap;
use crate::ids::{BlockId, FileId};
use crate::namespace::Namespace;
use crate::placement::PlacementPolicy;
use crate::read::{select_replica, ReadPlan};
use dyrs_cluster::NodeId;
use simkit::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// The file system master.
#[derive(Debug)]
pub struct NameNode {
    /// File namespace.
    pub namespace: Namespace,
    /// Block metadata.
    pub blocks: BlockMap,
    placement: PlacementPolicy,
    /// Last heartbeat time per node.
    last_heartbeat: Vec<SimTime>,
    /// Nodes explicitly marked dead (server failure confirmed).
    dead: BTreeSet<NodeId>,
    /// block → nodes holding an in-memory replica.
    memory_registry: BTreeMap<BlockId, Vec<NodeId>>,
    /// After this many missed heartbeat intervals a node is unavailable
    /// ("the file system misses several consecutive heartbeats", §III-C2).
    heartbeat_timeout: SimDuration,
}

impl NameNode {
    /// A NameNode for a cluster of `nodes` DataNodes with the given
    /// replication factor and heartbeat timeout.
    pub fn new(
        nodes: u32,
        replication: usize,
        heartbeat_timeout: SimDuration,
        rng: simkit::Rng,
    ) -> Self {
        Self::with_placement(
            PlacementPolicy::new(nodes, replication, rng),
            nodes,
            heartbeat_timeout,
        )
    }

    /// A NameNode with an explicit placement policy (e.g. rack-aware).
    pub fn with_placement(
        placement: PlacementPolicy,
        nodes: u32,
        heartbeat_timeout: SimDuration,
    ) -> Self {
        NameNode {
            namespace: Namespace::new(),
            blocks: BlockMap::new(),
            placement,
            last_heartbeat: vec![SimTime::ZERO; nodes as usize],
            dead: BTreeSet::new(),
            memory_registry: BTreeMap::new(),
            heartbeat_timeout,
        }
    }

    /// Create a file and place its replicas (client write path, simulated
    /// instantaneously at setup time — all evaluation inputs pre-exist).
    pub fn create_file(&mut self, name: impl Into<String>, size: u64, block_size: u64) -> FileId {
        self.namespace.create_file(
            name,
            size,
            block_size,
            &mut self.blocks,
            &mut self.placement,
        )
    }

    /// Record a heartbeat from `node` at `now`.
    pub fn heartbeat(&mut self, node: NodeId, now: SimTime) {
        self.last_heartbeat[node.index()] = now;
        self.dead.remove(&node);
    }

    /// Mark a node dead immediately (used by failure-injection tests to
    /// model the post-timeout state without waiting).
    pub fn mark_dead(&mut self, node: NodeId) {
        self.dead.insert(node);
    }

    /// Bring a node back (restarted server re-registers).
    pub fn mark_alive(&mut self, node: NodeId, now: SimTime) {
        self.heartbeat(node, now);
    }

    /// Liveness check: heartbeats within the timeout and not marked dead.
    pub fn is_up(&self, node: NodeId, now: SimTime) -> bool {
        !self.dead.contains(&node)
            && now.saturating_since(self.last_heartbeat[node.index()]) <= self.heartbeat_timeout
    }

    /// Register that `node` now holds an in-memory replica of `block`.
    pub fn register_memory_replica(&mut self, block: BlockId, node: NodeId) {
        let entry = self.memory_registry.entry(block).or_default();
        if !entry.contains(&node) {
            entry.push(node);
        }
    }

    /// Remove the in-memory replica record of `block` on `node`.
    pub fn unregister_memory_replica(&mut self, block: BlockId, node: NodeId) {
        if let Some(entry) = self.memory_registry.get_mut(&block) {
            entry.retain(|&n| n != node);
            if entry.is_empty() {
                self.memory_registry.remove(&block);
            }
        }
    }

    /// Drop all in-memory replica records for `node` (slave restart told
    /// the master to forget, §III-C2).
    pub fn drop_node_memory_state(&mut self, node: NodeId) {
        self.memory_registry.retain(|_, nodes| {
            nodes.retain(|&n| n != node);
            !nodes.is_empty()
        });
    }

    /// Drop the whole memory registry (DYRS master restart starts with no
    /// state about which blocks are in memory, §III-C1).
    pub fn clear_memory_registry(&mut self) {
        self.memory_registry.clear();
    }

    /// Nodes currently holding an in-memory replica of `block` (live only).
    pub fn live_memory_replicas(&self, block: BlockId, now: SimTime) -> Vec<NodeId> {
        self.memory_registry
            .get(&block)
            .map(|nodes| {
                nodes
                    .iter()
                    .copied()
                    .filter(|&n| self.is_up(n, now))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True if any live node has `block` in memory.
    pub fn has_memory_replica(&self, block: BlockId, now: SimTime) -> bool {
        !self.live_memory_replicas(block, now).is_empty()
    }

    /// Total number of (block, node) in-memory replica records.
    pub fn memory_replica_count(&self) -> usize {
        self.memory_registry.values().map(|v| v.len()).sum()
    }

    /// Plan a read of `block` issued on `reader`: memory before disk,
    /// local before remote, least-loaded remote disk replica.
    pub fn plan_read(
        &self,
        block: BlockId,
        reader: NodeId,
        now: SimTime,
        load: impl Fn(NodeId) -> u64,
    ) -> Option<ReadPlan> {
        let mem = self.live_memory_replicas(block, now);
        let disk = self.blocks.live_replicas(block, |n| self.is_up(n, now));
        select_replica(block, reader, &mem, &disk, load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::Medium;
    use simkit::Rng;

    fn nn() -> NameNode {
        let mut nn = NameNode::new(7, 3, SimDuration::from_secs(3), Rng::new(1));
        for i in 0..7 {
            nn.heartbeat(NodeId(i), SimTime::ZERO);
        }
        nn
    }

    #[test]
    fn liveness_follows_heartbeats() {
        let mut nn = nn();
        let now = SimTime::from_secs(2);
        assert!(nn.is_up(NodeId(0), now));
        let later = SimTime::from_secs(10);
        assert!(!nn.is_up(NodeId(0), later));
        nn.heartbeat(NodeId(0), later);
        assert!(nn.is_up(NodeId(0), later));
    }

    #[test]
    fn mark_dead_overrides_fresh_heartbeat() {
        let mut nn = nn();
        nn.mark_dead(NodeId(1));
        assert!(!nn.is_up(NodeId(1), SimTime::ZERO));
        nn.mark_alive(NodeId(1), SimTime::from_secs(1));
        assert!(nn.is_up(NodeId(1), SimTime::from_secs(1)));
    }

    #[test]
    fn memory_registry_lifecycle() {
        let mut nn = nn();
        let f = nn.create_file("a", 100, 100);
        let b = nn.namespace.get(f).unwrap().blocks[0];
        assert!(!nn.has_memory_replica(b, SimTime::ZERO));
        nn.register_memory_replica(b, NodeId(2));
        nn.register_memory_replica(b, NodeId(2)); // idempotent
        assert_eq!(nn.live_memory_replicas(b, SimTime::ZERO), vec![NodeId(2)]);
        assert_eq!(nn.memory_replica_count(), 1);
        nn.unregister_memory_replica(b, NodeId(2));
        assert!(!nn.has_memory_replica(b, SimTime::ZERO));
    }

    #[test]
    fn dead_node_memory_replicas_invisible() {
        let mut nn = nn();
        let f = nn.create_file("a", 100, 100);
        let b = nn.namespace.get(f).unwrap().blocks[0];
        nn.register_memory_replica(b, NodeId(2));
        nn.mark_dead(NodeId(2));
        assert!(nn.live_memory_replicas(b, SimTime::ZERO).is_empty());
    }

    #[test]
    fn drop_node_memory_state_clears_only_that_node() {
        let mut nn = nn();
        let f = nn.create_file("a", 200, 100);
        let blocks = nn.namespace.get(f).unwrap().blocks.clone();
        nn.register_memory_replica(blocks[0], NodeId(1));
        nn.register_memory_replica(blocks[0], NodeId(2));
        nn.register_memory_replica(blocks[1], NodeId(1));
        nn.drop_node_memory_state(NodeId(1));
        assert_eq!(
            nn.live_memory_replicas(blocks[0], SimTime::ZERO),
            vec![NodeId(2)]
        );
        assert!(nn.live_memory_replicas(blocks[1], SimTime::ZERO).is_empty());
    }

    #[test]
    fn plan_read_prefers_memory_and_fails_over() {
        let mut nn = nn();
        let f = nn.create_file("a", 100, 100);
        let b = nn.namespace.get(f).unwrap().blocks[0];
        let replicas = nn.blocks.expect(b).replicas.clone();
        let reader = replicas[0];

        // no memory: local disk
        let p = nn.plan_read(b, reader, SimTime::ZERO, |_| 0).unwrap();
        assert_eq!(p.medium, Medium::LocalDisk);

        // memory on another node: remote memory
        let other = replicas[1];
        nn.register_memory_replica(b, other);
        let p = nn.plan_read(b, reader, SimTime::ZERO, |_| 0).unwrap();
        assert_eq!(p.medium, Medium::RemoteMemory);
        assert_eq!(p.source, other);

        // all replica hosts dead: read fails
        for n in &replicas {
            nn.mark_dead(*n);
        }
        assert!(nn.plan_read(b, reader, SimTime::ZERO, |_| 0).is_none());
    }

    #[test]
    fn master_restart_clears_registry() {
        let mut nn = nn();
        let f = nn.create_file("a", 100, 100);
        let b = nn.namespace.get(f).unwrap().blocks[0];
        nn.register_memory_replica(b, NodeId(3));
        nn.clear_memory_registry();
        assert_eq!(nn.memory_replica_count(), 0);
        // reads still work from disk — DYRS failures degrade, never break
        let p = nn.plan_read(b, NodeId(6), SimTime::ZERO, |_| 0).unwrap();
        assert!(!p.medium.is_memory());
    }
}
