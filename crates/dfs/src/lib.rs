//! # dyrs-dfs — HDFS-like distributed file system model
//!
//! A faithful-in-structure model of the parts of HDFS that DYRS interacts
//! with (the paper implements the DYRS master inside the HDFS NameNode and
//! the slave inside the DataNode, §IV):
//!
//! * a **namespace** mapping file names to block lists ([`namespace`]),
//! * a **block map** tracking each block's size and replica locations
//!   ([`block`]),
//! * a **placement policy** choosing replica nodes at write time
//!   ([`placement`]),
//! * a **NameNode** with DataNode liveness tracking and the in-memory
//!   replica registry that read requests consult ([`namenode`]),
//! * **DataNode** state: which blocks a node hosts on disk and which are
//!   currently buffered in its RAM ([`datanode`]),
//! * the **read path**: replica selection preferring memory over disk and
//!   local over remote ([`read`]).
//!
//! These are *reactive state machines*: no event loop here. The `dyrs-sim`
//! crate drives them and turns read plans into fluid streams on the
//! `dyrs-cluster` resources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod datanode;
pub mod ids;
pub mod namenode;
pub mod namespace;
pub mod placement;
pub mod read;

pub use block::{BlockInfo, BlockMap};
pub use datanode::DataNode;
pub use ids::{BlockId, FileId, JobId};
pub use namenode::NameNode;
pub use namespace::{FileMeta, Namespace};
pub use placement::PlacementPolicy;
pub use read::{Medium, ReadPlan};

/// Default HDFS block size used throughout the evaluation (256 MB — the
/// size the paper's worst-case memory analysis assumes, §II-C2).
pub const DEFAULT_BLOCK_SIZE: u64 = 256 * 1024 * 1024;

/// Default replication factor (HDFS default of 3).
pub const DEFAULT_REPLICATION: usize = 3;
