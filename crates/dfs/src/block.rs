//! Block metadata and the cluster-wide block map.

use crate::ids::BlockId;
use dyrs_cluster::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Metadata for one block: its size and where its disk replicas live.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    /// The block's id.
    pub id: BlockId,
    /// Size in bytes (the last block of a file may be short).
    pub size: u64,
    /// Nodes holding an on-disk replica. Order is the placement order;
    /// selection logic must not depend on it beyond determinism.
    pub replicas: Vec<NodeId>,
}

/// The NameNode's block → metadata table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockMap {
    blocks: BTreeMap<BlockId, BlockInfo>,
    next_id: u64,
}

impl BlockMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a new block of `size` bytes replicated on `replicas`.
    pub fn allocate(&mut self, size: u64, replicas: Vec<NodeId>) -> BlockId {
        assert!(!replicas.is_empty(), "block must have at least one replica");
        let id = BlockId(self.next_id);
        self.next_id += 1;
        self.blocks.insert(id, BlockInfo { id, size, replicas });
        id
    }

    /// Look up a block.
    pub fn get(&self, id: BlockId) -> Option<&BlockInfo> {
        self.blocks.get(&id)
    }

    /// Look up a block, panicking on a dangling id (callers hold ids they
    /// obtained from this map; a miss is a logic error).
    pub fn expect(&self, id: BlockId) -> &BlockInfo {
        self.blocks
            .get(&id)
            .unwrap_or_else(|| panic!("BlockMap invariant violated: {id} was never allocated"))
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are allocated.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Record a new replica of `id` on `node` (re-replication repair).
    /// No-op if already present or the block is unknown.
    pub fn add_replica(&mut self, id: BlockId, node: NodeId) {
        if let Some(b) = self.blocks.get_mut(&id) {
            if !b.replicas.contains(&node) {
                b.replicas.push(node);
            }
        }
    }

    /// Remove the replica of `id` hosted on `node` (lost with a dead
    /// server). Returns `true` if a replica was removed.
    pub fn remove_replica(&mut self, id: BlockId, node: NodeId) -> bool {
        match self.blocks.get_mut(&id) {
            Some(b) => {
                let before = b.replicas.len();
                b.replicas.retain(|&n| n != node);
                b.replicas.len() != before
            }
            None => false,
        }
    }

    /// Blocks that list `node` as a replica holder (the repair work list
    /// after that node dies). Sorted for determinism.
    pub fn blocks_on(&self, node: NodeId) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self
            .blocks
            .values()
            .filter(|b| b.replicas.contains(&node))
            .map(|b| b.id)
            .collect();
        v.sort();
        v
    }

    /// Replica locations of a block that are currently up, according to the
    /// provided predicate.
    pub fn live_replicas(&self, id: BlockId, is_up: impl Fn(NodeId) -> bool) -> Vec<NodeId> {
        self.get(id)
            .map(|b| b.replicas.iter().copied().filter(|&n| is_up(n)).collect())
            .unwrap_or_default()
    }

    /// Iterate over all blocks in ascending [`BlockId`] order.
    pub fn iter(&self) -> impl Iterator<Item = &BlockInfo> {
        self.blocks.values()
    }

    /// Total bytes across all blocks (one replica each).
    pub fn total_logical_bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn allocate_assigns_unique_ids() {
        let mut m = BlockMap::new();
        let a = m.allocate(100, vec![n(0)]);
        let b = m.allocate(200, vec![n(1), n(2)]);
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.expect(a).size, 100);
        assert_eq!(m.expect(b).replicas, vec![n(1), n(2)]);
    }

    #[test]
    fn live_replicas_filters_down_nodes() {
        let mut m = BlockMap::new();
        let b = m.allocate(1, vec![n(0), n(1), n(2)]);
        let live = m.live_replicas(b, |id| id != n(1));
        assert_eq!(live, vec![n(0), n(2)]);
    }

    #[test]
    fn live_replicas_of_unknown_block_is_empty() {
        let m = BlockMap::new();
        assert!(m.live_replicas(BlockId(99), |_| true).is_empty());
    }

    #[test]
    fn total_logical_bytes_sums_sizes() {
        let mut m = BlockMap::new();
        m.allocate(100, vec![n(0)]);
        m.allocate(50, vec![n(1)]);
        assert_eq!(m.total_logical_bytes(), 150);
    }

    #[test]
    fn replica_repair_roundtrip() {
        let mut m = BlockMap::new();
        let b = m.allocate(10, vec![n(0), n(1), n(2)]);
        assert!(m.remove_replica(b, n(1)));
        assert!(!m.remove_replica(b, n(1)), "second removal is a no-op");
        assert_eq!(m.expect(b).replicas, vec![n(0), n(2)]);
        m.add_replica(b, n(4));
        m.add_replica(b, n(4)); // idempotent
        assert_eq!(m.expect(b).replicas, vec![n(0), n(2), n(4)]);
        assert!(!m.remove_replica(BlockId(99), n(0)), "unknown block");
    }

    #[test]
    fn blocks_on_lists_hosted_sorted() {
        let mut m = BlockMap::new();
        let b2 = m.allocate(1, vec![n(1), n(2)]);
        let b1 = m.allocate(1, vec![n(1)]);
        let _ = m.allocate(1, vec![n(3)]);
        let mut expect = vec![b1, b2];
        expect.sort();
        assert_eq!(m.blocks_on(n(1)), expect);
        assert!(m.blocks_on(n(6)).is_empty());
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn expect_panics_on_miss() {
        BlockMap::new().expect(BlockId(1));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        BlockMap::new().allocate(1, vec![]);
    }
}
