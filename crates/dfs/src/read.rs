//! Read-path replica selection.
//!
//! "Once a block has been migrated, reads will be directed to the
//! in-memory replica whether it is local or remote to the task making the
//! read" (paper §III). Preference order:
//!
//! 1. local in-memory replica,
//! 2. remote in-memory replica,
//! 3. local on-disk replica,
//! 4. remote on-disk replica (least-loaded live replica).
//!
//! A remote *memory* read is still far faster than any disk read on the
//! paper's 10 GbE testbed, which is why migration to a non-local node is
//! worthwhile at all.

use crate::ids::BlockId;
use dyrs_cluster::NodeId;
use serde::{Deserialize, Serialize};

/// Where a read is served from, relative to the reading task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Medium {
    /// The block is buffered in RAM on the reader's own node.
    LocalMemory,
    /// The block is buffered in RAM on another node (served over the NIC).
    RemoteMemory,
    /// On-disk replica on the reader's own node.
    LocalDisk,
    /// On-disk replica on another node.
    RemoteDisk,
}

impl Medium {
    /// True for the two memory media.
    pub fn is_memory(self) -> bool {
        matches!(self, Medium::LocalMemory | Medium::RemoteMemory)
    }
}

/// The outcome of replica selection: read `block` from `source` via `medium`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadPlan {
    /// Block being read.
    pub block: BlockId,
    /// Node that serves the bytes.
    pub source: NodeId,
    /// Relative placement / storage tier.
    pub medium: Medium,
}

/// Select the serving replica for a read of `block` issued on `reader`.
///
/// * `memory_replicas` — nodes holding an in-memory copy (live ones only).
/// * `disk_replicas` — nodes holding an on-disk copy (live ones only).
/// * `load` — tie-breaking load metric for remote disk replicas (e.g.
///   active disk streams); the minimum wins, with node id as the final
///   deterministic tie-break.
///
/// Returns `None` when no live replica exists anywhere (total failure of
/// all hosting nodes).
///
/// ```
/// use dyrs_cluster::NodeId;
/// use dyrs_dfs::{read::select_replica, BlockId, Medium};
///
/// // the block is on disk at nodes 1 and 2, and DYRS migrated it into
/// // node 5's memory; a task on node 1 still prefers the memory copy
/// let plan = select_replica(
///     BlockId(9), NodeId(1), &[NodeId(5)], &[NodeId(1), NodeId(2)], |_| 0,
/// ).unwrap();
/// assert_eq!(plan.medium, Medium::RemoteMemory);
/// assert_eq!(plan.source, NodeId(5));
/// ```
pub fn select_replica(
    block: BlockId,
    reader: NodeId,
    memory_replicas: &[NodeId],
    disk_replicas: &[NodeId],
    load: impl Fn(NodeId) -> u64,
) -> Option<ReadPlan> {
    if memory_replicas.contains(&reader) {
        return Some(ReadPlan {
            block,
            source: reader,
            medium: Medium::LocalMemory,
        });
    }
    if let Some(&src) = memory_replicas.iter().min_by_key(|&&n| (load(n), n)) {
        return Some(ReadPlan {
            block,
            source: src,
            medium: Medium::RemoteMemory,
        });
    }
    if disk_replicas.contains(&reader) {
        return Some(ReadPlan {
            block,
            source: reader,
            medium: Medium::LocalDisk,
        });
    }
    disk_replicas
        .iter()
        .min_by_key(|&&n| (load(n), n))
        .map(|&src| ReadPlan {
            block,
            source: src,
            medium: Medium::RemoteDisk,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockId = BlockId(1);

    fn no_load(_: NodeId) -> u64 {
        0
    }

    #[test]
    fn local_memory_wins() {
        let plan =
            select_replica(B, NodeId(3), &[NodeId(5), NodeId(3)], &[NodeId(3)], no_load).unwrap();
        assert_eq!(plan.medium, Medium::LocalMemory);
        assert_eq!(plan.source, NodeId(3));
    }

    #[test]
    fn remote_memory_beats_local_disk() {
        let plan = select_replica(B, NodeId(3), &[NodeId(5)], &[NodeId(3)], no_load).unwrap();
        assert_eq!(plan.medium, Medium::RemoteMemory);
        assert_eq!(plan.source, NodeId(5));
    }

    #[test]
    fn local_disk_beats_remote_disk() {
        let plan = select_replica(B, NodeId(3), &[], &[NodeId(1), NodeId(3)], no_load).unwrap();
        assert_eq!(plan.medium, Medium::LocalDisk);
        assert_eq!(plan.source, NodeId(3));
    }

    #[test]
    fn remote_disk_picks_least_loaded() {
        let load = |n: NodeId| if n == NodeId(1) { 10 } else { 2 };
        let plan = select_replica(B, NodeId(9), &[], &[NodeId(1), NodeId(4)], load).unwrap();
        assert_eq!(plan.medium, Medium::RemoteDisk);
        assert_eq!(plan.source, NodeId(4));
    }

    #[test]
    fn remote_disk_tie_breaks_by_node_id() {
        let plan = select_replica(B, NodeId(9), &[], &[NodeId(4), NodeId(2)], no_load).unwrap();
        assert_eq!(plan.source, NodeId(2));
    }

    #[test]
    fn remote_memory_picks_least_loaded() {
        let load = |n: NodeId| if n == NodeId(5) { 3 } else { 0 };
        let plan = select_replica(B, NodeId(9), &[NodeId(5), NodeId(6)], &[], load).unwrap();
        assert_eq!(plan.source, NodeId(6));
    }

    #[test]
    fn no_replicas_anywhere_is_none() {
        assert!(select_replica(B, NodeId(0), &[], &[], no_load).is_none());
    }

    #[test]
    fn medium_is_memory() {
        assert!(Medium::LocalMemory.is_memory());
        assert!(Medium::RemoteMemory.is_memory());
        assert!(!Medium::LocalDisk.is_memory());
        assert!(!Medium::RemoteDisk.is_memory());
    }
}
