//! DataNode state.
//!
//! A DataNode hosts on-disk block replicas and, when DYRS has migrated a
//! block, an in-memory buffered copy. The actual byte movement is simulated
//! on the owning node's fluid resources by `dyrs-sim`; this struct tracks
//! *which* blocks are where plus serving statistics used by Figure 8
//! (reads per DataNode).

use crate::ids::BlockId;
use dyrs_cluster::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One DataNode's block inventory and serving counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataNode {
    /// The node this DataNode runs on.
    pub node: NodeId,
    disk_blocks: BTreeSet<BlockId>,
    memory_blocks: BTreeSet<BlockId>,
    /// Reads served from disk (count).
    pub disk_reads: u64,
    /// Reads served from memory (count).
    pub memory_reads: u64,
    /// Bytes served from disk.
    pub disk_bytes: u64,
    /// Bytes served from memory.
    pub memory_bytes: u64,
}

impl DataNode {
    /// Empty DataNode on `node`.
    pub fn new(node: NodeId) -> Self {
        DataNode {
            node,
            disk_blocks: BTreeSet::new(),
            memory_blocks: BTreeSet::new(),
            disk_reads: 0,
            memory_reads: 0,
            disk_bytes: 0,
            memory_bytes: 0,
        }
    }

    /// Record that this node holds an on-disk replica of `block`.
    pub fn add_disk_replica(&mut self, block: BlockId) {
        self.disk_blocks.insert(block);
    }

    /// True if an on-disk replica of `block` lives here.
    pub fn has_disk_replica(&self, block: BlockId) -> bool {
        self.disk_blocks.contains(&block)
    }

    /// Mark `block` as buffered in this node's memory (migration complete).
    /// Returns `false` if it was already buffered.
    pub fn add_memory_replica(&mut self, block: BlockId) -> bool {
        self.memory_blocks.insert(block)
    }

    /// True if `block` is buffered in memory here.
    pub fn has_memory_replica(&self, block: BlockId) -> bool {
        self.memory_blocks.contains(&block)
    }

    /// Evict `block` from memory. Returns `true` if it was present.
    pub fn drop_memory_replica(&mut self, block: BlockId) -> bool {
        self.memory_blocks.remove(&block)
    }

    /// Drop all memory replicas (slave process restart, §III-C2) and return
    /// the ids that were buffered so the caller can release accounting.
    pub fn clear_memory(&mut self) -> Vec<BlockId> {
        // BTreeSet: already in ascending BlockId order.
        std::mem::take(&mut self.memory_blocks)
            .into_iter()
            .collect()
    }

    /// Number of blocks currently buffered in memory.
    pub fn memory_block_count(&self) -> usize {
        self.memory_blocks.len()
    }

    /// Number of on-disk replicas hosted.
    pub fn disk_block_count(&self) -> usize {
        self.disk_blocks.len()
    }

    /// Account one read served from disk.
    pub fn record_disk_read(&mut self, bytes: u64) {
        self.disk_reads += 1;
        self.disk_bytes += bytes;
    }

    /// Account one read served from memory.
    pub fn record_memory_read(&mut self, bytes: u64) {
        self.memory_reads += 1;
        self.memory_bytes += bytes;
    }

    /// Total reads served by this DataNode.
    pub fn total_reads(&self) -> u64 {
        self.disk_reads + self.memory_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_lifecycle() {
        let mut d = DataNode::new(NodeId(0));
        d.add_disk_replica(BlockId(1));
        assert!(d.has_disk_replica(BlockId(1)));
        assert!(!d.has_memory_replica(BlockId(1)));
        assert!(d.add_memory_replica(BlockId(1)));
        assert!(
            !d.add_memory_replica(BlockId(1)),
            "double add reports false"
        );
        assert!(d.has_memory_replica(BlockId(1)));
        assert!(d.drop_memory_replica(BlockId(1)));
        assert!(!d.drop_memory_replica(BlockId(1)));
    }

    #[test]
    fn clear_memory_returns_sorted_ids() {
        let mut d = DataNode::new(NodeId(0));
        for i in [5u64, 1, 3] {
            d.add_memory_replica(BlockId(i));
        }
        let cleared = d.clear_memory();
        assert_eq!(cleared, vec![BlockId(1), BlockId(3), BlockId(5)]);
        assert_eq!(d.memory_block_count(), 0);
    }

    #[test]
    fn read_counters() {
        let mut d = DataNode::new(NodeId(2));
        d.record_disk_read(100);
        d.record_memory_read(50);
        d.record_memory_read(25);
        assert_eq!(d.disk_reads, 1);
        assert_eq!(d.memory_reads, 2);
        assert_eq!(d.disk_bytes, 100);
        assert_eq!(d.memory_bytes, 75);
        assert_eq!(d.total_reads(), 3);
    }
}
