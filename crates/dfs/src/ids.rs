//! Identifier newtypes shared across the file system and DYRS.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one block in the file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u64);

/// Identifies one file in the namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// Identifies a client job. DYRS reference lists (paper §III-C3) are keyed
/// by job id: a block is evictable once no live job still references it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl FileId {
    /// Index into per-file vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file_{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job_{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(BlockId(7).to_string(), "blk_7");
        assert_eq!(FileId(2).to_string(), "file_2");
        assert_eq!(JobId(9).to_string(), "job_9");
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(BlockId(1) < BlockId(2));
        assert!(JobId(10) > JobId(9));
    }
}
