//! File namespace: names → block lists.

use crate::block::BlockMap;
use crate::ids::{BlockId, FileId};
use crate::placement::PlacementPolicy;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Metadata for one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// The file's id.
    pub id: FileId,
    /// Path-like name (unique).
    pub name: String,
    /// Blocks, in file order.
    pub blocks: Vec<BlockId>,
    /// Total size in bytes.
    pub size: u64,
}

/// The file namespace. Creating a file splits it into blocks and places
/// replicas via the given policy, like an HDFS client writing a file.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Namespace {
    files: Vec<FileMeta>,
    by_name: HashMap<String, FileId>,
}

impl Namespace {
    /// Empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a file of `size` bytes, split into blocks of at most
    /// `block_size` bytes, with replicas chosen by `placement`.
    ///
    /// Panics if the name already exists (the workloads never overwrite).
    pub fn create_file(
        &mut self,
        name: impl Into<String>,
        size: u64,
        block_size: u64,
        blocks: &mut BlockMap,
        placement: &mut PlacementPolicy,
    ) -> FileId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "file {name} already exists"
        );
        assert!(block_size > 0, "zero block size");
        let id = FileId(self.files.len() as u32);
        let mut remaining = size;
        let mut file_blocks = Vec::new();
        // Even an empty file gets one zero-length block so every file is
        // readable through the same path.
        loop {
            let this = remaining.min(block_size);
            let replicas = placement.place();
            file_blocks.push(blocks.allocate(this, replicas));
            remaining -= this;
            if remaining == 0 {
                break;
            }
        }
        self.by_name.insert(name.clone(), id);
        self.files.push(FileMeta {
            id,
            name,
            blocks: file_blocks,
            size,
        });
        id
    }

    /// Look up a file by name.
    pub fn lookup(&self, name: &str) -> Option<&FileMeta> {
        self.by_name.get(name).map(|&id| &self.files[id.index()])
    }

    /// Look up a file by id.
    pub fn get(&self, id: FileId) -> Option<&FileMeta> {
        self.files.get(id.index())
    }

    /// Map a list of file names to the concatenation of their block lists —
    /// exactly what the DYRS master does with a client migration request
    /// (paper §III: "maps the files to blocks in the file system").
    /// Unknown names are skipped (the request degrades gracefully).
    pub fn blocks_of_files<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Vec<BlockId> {
        names
            .into_iter()
            .filter_map(|n| self.lookup(n))
            .flat_map(|f| f.blocks.iter().copied())
            .collect()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if the namespace has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterate over files in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Rng;

    fn setup() -> (Namespace, BlockMap, PlacementPolicy) {
        (
            Namespace::new(),
            BlockMap::new(),
            PlacementPolicy::new(7, 3, Rng::new(1)),
        )
    }

    #[test]
    fn file_splits_into_blocks() {
        let (mut ns, mut bm, mut pl) = setup();
        let id = ns.create_file("a", 1000, 300, &mut bm, &mut pl);
        let f = ns.get(id).unwrap();
        assert_eq!(f.blocks.len(), 4); // 300+300+300+100
        assert_eq!(bm.expect(f.blocks[3]).size, 100);
        assert_eq!(f.size, 1000);
    }

    #[test]
    fn exact_multiple_has_no_stub_block() {
        let (mut ns, mut bm, mut pl) = setup();
        let id = ns.create_file("a", 900, 300, &mut bm, &mut pl);
        assert_eq!(ns.get(id).unwrap().blocks.len(), 3);
    }

    #[test]
    fn empty_file_gets_one_block() {
        let (mut ns, mut bm, mut pl) = setup();
        let id = ns.create_file("empty", 0, 256, &mut bm, &mut pl);
        let f = ns.get(id).unwrap();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(bm.expect(f.blocks[0]).size, 0);
    }

    #[test]
    fn lookup_by_name() {
        let (mut ns, mut bm, mut pl) = setup();
        ns.create_file("x/y/z", 10, 10, &mut bm, &mut pl);
        assert!(ns.lookup("x/y/z").is_some());
        assert!(ns.lookup("nope").is_none());
    }

    #[test]
    fn blocks_of_files_concatenates_and_skips_unknown() {
        let (mut ns, mut bm, mut pl) = setup();
        ns.create_file("a", 600, 300, &mut bm, &mut pl);
        ns.create_file("b", 300, 300, &mut bm, &mut pl);
        let blocks = ns.blocks_of_files(["a", "missing", "b"]);
        assert_eq!(blocks.len(), 3);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_name_panics() {
        let (mut ns, mut bm, mut pl) = setup();
        ns.create_file("a", 1, 1, &mut bm, &mut pl);
        ns.create_file("a", 1, 1, &mut bm, &mut pl);
    }

    #[test]
    fn replication_factor_respected() {
        let (mut ns, mut bm, mut pl) = setup();
        let id = ns.create_file("a", 1000, 100, &mut bm, &mut pl);
        for &b in &ns.get(id).unwrap().blocks {
            let info = bm.expect(b);
            assert_eq!(info.replicas.len(), 3);
            // replicas must be distinct nodes
            let mut r = info.replicas.clone();
            r.sort();
            r.dedup();
            assert_eq!(r.len(), 3);
        }
    }
}
