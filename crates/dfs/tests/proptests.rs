//! Property-based tests for the DFS substrate invariants.

use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockMap, NameNode, Namespace, PlacementPolicy};
use proptest::prelude::*;
use simkit::{Rng, SimDuration, SimTime};

proptest! {
    /// File creation always covers the byte range exactly: block sizes
    /// sum to the file size and only the last block may be short.
    #[test]
    fn file_blocks_cover_exactly(
        size in 0u64..10_000_000,
        block in 1u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut ns = Namespace::new();
        let mut bm = BlockMap::new();
        let mut pl = PlacementPolicy::new(7, 3, Rng::new(seed));
        let id = ns.create_file("f", size, block, &mut bm, &mut pl);
        let meta = ns.get(id).expect("created");
        let sizes: Vec<u64> = meta.blocks.iter().map(|&b| bm.expect(b).size).collect();
        prop_assert_eq!(sizes.iter().sum::<u64>(), size);
        for (i, &s) in sizes.iter().enumerate() {
            if i + 1 < sizes.len() {
                prop_assert_eq!(s, block, "only the last block may be short");
            } else {
                prop_assert!(s <= block);
            }
        }
        // expected count: ceil(size/block), min 1
        let expect = if size == 0 { 1 } else { size.div_ceil(block) };
        prop_assert_eq!(sizes.len() as u64, expect);
    }

    /// Placement always yields `replication` distinct, in-range nodes.
    #[test]
    fn placement_invariants(
        nodes in 1u32..20,
        replication_seed in any::<u64>(),
        count in 1usize..200,
    ) {
        let mut rng = Rng::new(replication_seed);
        let replication = 1 + (rng.below(nodes as u64) as usize);
        let mut p = PlacementPolicy::new(nodes, replication, rng);
        for _ in 0..count {
            let r = p.place();
            prop_assert_eq!(r.len(), replication);
            let mut s: Vec<NodeId> = r.clone();
            s.sort();
            s.dedup();
            prop_assert_eq!(s.len(), replication, "replicas must be distinct");
            prop_assert!(r.iter().all(|n| n.0 < nodes));
        }
        let placed: u64 = p.placement_counts().iter().sum();
        prop_assert_eq!(placed, (count * replication) as u64);
    }

    /// The NameNode read plan never selects a dead node and always
    /// prefers memory over disk and local over remote.
    #[test]
    fn read_plan_invariants(
        seed in any::<u64>(),
        reader in 0u32..7,
        dead_mask in 0u8..0b111_1111,
        mem_mask in 0u8..0b111_1111,
    ) {
        let mut nn = NameNode::new(7, 3, SimDuration::from_secs(3), Rng::new(seed));
        let now = SimTime::ZERO;
        for i in 0..7 {
            nn.heartbeat(NodeId(i), now);
        }
        let f = nn.create_file("f", 100, 100);
        let block = nn.namespace.get(f).expect("created").blocks[0];
        let replicas = nn.blocks.expect(block).replicas.clone();
        for i in 0..7u32 {
            if dead_mask & (1 << i) != 0 {
                nn.mark_dead(NodeId(i));
            }
            if mem_mask & (1 << i) != 0 {
                nn.register_memory_replica(block, NodeId(i));
            }
        }
        let reader = NodeId(reader);
        let plan = nn.plan_read(block, reader, now, |_| 0);
        let live = |n: NodeId| dead_mask & (1 << n.0) == 0;
        let live_mem: Vec<NodeId> = (0..7u32)
            .map(NodeId)
            .filter(|&n| live(n) && mem_mask & (1 << n.0) != 0)
            .collect();
        let live_disk: Vec<NodeId> =
            replicas.iter().copied().filter(|&n| live(n)).collect();
        match plan {
            None => prop_assert!(
                live_mem.is_empty() && live_disk.is_empty(),
                "plan must exist when any live replica exists"
            ),
            Some(p) => {
                prop_assert!(live(p.source), "dead node selected");
                use dyrs_dfs::Medium::*;
                match p.medium {
                    LocalMemory => {
                        prop_assert_eq!(p.source, reader);
                        prop_assert!(live_mem.contains(&reader));
                    }
                    RemoteMemory => {
                        prop_assert!(live_mem.contains(&p.source));
                        prop_assert!(!live_mem.contains(&reader), "local memory preferred");
                    }
                    LocalDisk => {
                        prop_assert_eq!(p.source, reader);
                        prop_assert!(live_mem.is_empty(), "memory preferred over disk");
                    }
                    RemoteDisk => {
                        prop_assert!(live_disk.contains(&p.source));
                        prop_assert!(live_mem.is_empty());
                        prop_assert!(!live_disk.contains(&reader), "local disk preferred");
                    }
                }
            }
        }
    }

    /// Memory-registry bookkeeping: registrations minus unregistrations
    /// equals the registry count, and node-wide drops clear everything
    /// for that node.
    #[test]
    fn memory_registry_consistent(
        ops in proptest::collection::vec((0u64..20, 0u32..7, prop::bool::ANY), 1..200),
    ) {
        let mut nn = NameNode::new(7, 3, SimDuration::from_secs(3), Rng::new(1));
        let now = SimTime::ZERO;
        for i in 0..7 {
            nn.heartbeat(NodeId(i), now);
        }
        let f = nn.create_file("f", 20 * 10, 10);
        let blocks = nn.namespace.get(f).expect("created").blocks.clone();
        let mut model: std::collections::HashSet<(u64, u32)> = Default::default();
        for (bi, node, add) in ops {
            let block = blocks[bi as usize % blocks.len()];
            if add {
                nn.register_memory_replica(block, NodeId(node));
                model.insert((block.0, node));
            } else {
                nn.unregister_memory_replica(block, NodeId(node));
                model.remove(&(block.0, node));
            }
            prop_assert_eq!(nn.memory_replica_count(), model.len());
        }
        nn.drop_node_memory_state(NodeId(3));
        model.retain(|&(_, n)| n != 3);
        prop_assert_eq!(nn.memory_replica_count(), model.len());
    }
}
