//! Multi-tier storage model (ROADMAP item 2).
//!
//! DYRS as published migrates cold data along a single disk→memory edge.
//! Real big-data clusters sit on a memory / NVMe / SSD / HDD hierarchy,
//! so this crate generalizes the migration graph to an N-tier *stack*:
//!
//! * [`TierSpec`] / [`TierStackSpec`] — the static hardware description.
//!   A stack lists tiers fastest→slowest; the last tier is the backing
//!   disk where blocks live permanently, everything above it is a
//!   *buffer tier* with finite capacity. The legacy 2-tier DYRS layout
//!   (memory over disk) is [`TierStackSpec::legacy`].
//! * [`TierStore`] — per-node occupancy accounting generalizing the old
//!   `MemoryStore`. Tier 0 (memory) keeps the exact pin/unpin arithmetic
//!   the slave always had; middle tiers hold *demoted* residents, blocks
//!   pushed down instead of dropped when memory pressure evicts them.
//! * [`TierPolicy`] — the seeded up/down-tier decision seam. The
//!   baseline reproduces the paper's reference-list behavior (memory is
//!   the only migration destination; pressure evictions demote to the
//!   next tier down when it has space); the hotness policy additionally
//!   promotes middle-tier residents back to memory on read.
//!
//! Everything here is deterministic: ties break on tier index, residency
//! maps are BTree-ordered, and the policy seam owns its own derived RNG
//! stream so adding a stochastic policy later cannot perturb anything
//! else. Block keys are raw `u64`s (the DFS `BlockId.0`) so this crate
//! stays a leaf below `dyrs-cluster`.

mod policy;
mod spec;
mod store;

pub use policy::{TierPolicy, TierPolicyKind};
pub use spec::{TierId, TierSpec, TierStackSpec};
pub use store::{TierResident, TierStore};
