//! The seeded up/down-tier decision seam.

use crate::spec::{TierId, TierStackSpec};
use serde::{Deserialize, Serialize};
use simkit::Rng;

/// Which tiering policy a run uses. Serialized into `SimConfig`, so the
/// variants are part of the experiment-config surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TierPolicyKind {
    /// The DYRS reference-list baseline: memory is the only migration
    /// destination; pressure evictions demote one tier down when it has
    /// room; nothing is promoted on read (a block only returns to memory
    /// via a fresh migration request).
    #[default]
    Baseline,
    /// Hotness-driven tiering (after Herodotou & Kakoulli): every buffer
    /// tier is a candidate migration destination, and a read served from
    /// a middle tier promotes the block back into memory when it fits.
    Hotness,
}

/// Up/down-tier decision maker. Owns a derived RNG stream so a future
/// stochastic policy (probabilistic admission, sampled LRU) can draw
/// randomness without perturbing any other consumer; the two shipped
/// policies are deterministic and leave the stream untouched.
#[derive(Debug, Clone)]
pub struct TierPolicy {
    kind: TierPolicyKind,
    #[allow(dead_code)]
    rng: Rng,
}

impl TierPolicy {
    /// A policy of the given kind with its own seeded stream.
    pub fn new(kind: TierPolicyKind, rng: Rng) -> Self {
        TierPolicy { kind, rng }
    }

    /// The policy kind.
    pub fn kind(&self) -> TierPolicyKind {
        self.kind
    }

    /// Candidate migration destination tiers for a node with `stack`, as
    /// `(tier, write_factor)` pairs in ascending tier order. Algorithm 1
    /// scores each pair and ties break toward the lower (faster) tier.
    pub fn dest_tiers(&self, stack: &TierStackSpec) -> Vec<(TierId, f64)> {
        match self.kind {
            TierPolicyKind::Baseline => vec![(TierId::MEM, stack.write_factor(TierId::MEM))],
            TierPolicyKind::Hotness => (0..stack.num_buffer_tiers() as u8)
                .map(|t| (TierId(t), stack.write_factor(TierId(t))))
                .collect(),
        }
    }

    /// Whether a pressure eviction should try to demote the copy down the
    /// stack instead of dropping it. Both shipped policies demote — on the
    /// legacy 2-tier stack there is no tier below memory, so this never
    /// fires and the 2-tier run stays bit-identical to the old code.
    pub fn demote_on_pressure(&mut self) -> bool {
        true
    }

    /// Whether a read served out of a middle tier should promote the
    /// block back into memory.
    pub fn promote_on_read(&mut self) -> bool {
        match self.kind {
            TierPolicyKind::Baseline => false,
            TierPolicyKind::Hotness => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;
    const MIB_F: f64 = (1u64 << 20) as f64;

    fn stack() -> TierStackSpec {
        TierStackSpec::three_tier(96 * GIB, 8192.0 * MIB_F, 140.0 * MIB_F, 0.02)
    }

    #[test]
    fn baseline_targets_memory_only() {
        let p = TierPolicy::new(TierPolicyKind::Baseline, Rng::new(1));
        let dests = p.dest_tiers(&stack());
        assert_eq!(dests, vec![(TierId::MEM, 1.0)]);
    }

    #[test]
    fn hotness_enumerates_every_buffer_tier() {
        let p = TierPolicy::new(TierPolicyKind::Hotness, Rng::new(1));
        let dests = p.dest_tiers(&stack());
        assert_eq!(dests.len(), 2);
        assert_eq!(dests[0].0, TierId(0));
        assert_eq!(dests[1].0, TierId(1));
        assert!(dests.iter().all(|&(_, f)| f >= 1.0));
    }

    #[test]
    fn promote_on_read_is_policy_gated() {
        let mut base = TierPolicy::new(TierPolicyKind::Baseline, Rng::new(1));
        let mut hot = TierPolicy::new(TierPolicyKind::Hotness, Rng::new(1));
        assert!(!base.promote_on_read());
        assert!(hot.promote_on_read());
        assert!(base.demote_on_pressure());
        assert!(hot.demote_on_pressure());
    }
}
