//! Static tier descriptions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one tier within a node's stack. Tier 0 is the fastest
/// (memory); the highest index is the backing disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TierId(pub u8);

impl TierId {
    /// Memory — the top of every stack.
    pub const MEM: TierId = TierId(0);

    /// Index into per-tier vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier{}", self.0)
    }
}

/// Static description of one storage tier on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Human-readable tier name ("mem", "nvme", "ssd", "hdd").
    pub name: String,
    /// Capacity in bytes. Ignored for the backing (last) tier, which is
    /// where blocks live permanently and is not capacity-modeled.
    pub capacity: u64,
    /// Sequential read bandwidth, bytes/sec.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/sec. `f64::INFINITY` for memory
    /// keeps the destination write side unmodeled, exactly like the
    /// original disk→memory pipeline.
    pub write_bw: f64,
    /// Bandwidth degradation per extra concurrent stream
    /// (`cap(n) = bw / (1 + d·(n−1))`); non-zero only for seek-bound
    /// media.
    #[serde(default)]
    pub degradation: f64,
}

impl TierSpec {
    fn new(name: &str, capacity: u64, read_bw: f64, write_bw: f64, degradation: f64) -> Self {
        TierSpec {
            name: name.to_string(),
            capacity,
            read_bw,
            write_bw,
            degradation,
        }
    }
}

const GIB: u64 = 1 << 30;
const MIB_F: f64 = (1u64 << 20) as f64;
const GIB_F: f64 = (1u64 << 30) as f64;

/// A node's storage hierarchy, fastest tier first. The last tier is the
/// backing disk; every tier above it is a buffer tier with finite
/// capacity that can hold migrated or demoted block copies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierStackSpec {
    /// Tiers fastest→slowest; at least two (a buffer over a backing disk).
    pub tiers: Vec<TierSpec>,
}

impl TierStackSpec {
    /// The legacy 2-tier DYRS stack: memory over the spinning disk. The
    /// memory tier's write bandwidth is infinite (the original pipeline
    /// never modeled the RAM write side), so its Algorithm 1 write
    /// factor is exactly 1.0 and scoring arithmetic is bit-identical to
    /// the pre-tier code.
    pub fn legacy(mem_capacity: u64, membus_bw: f64, disk_bw: f64, disk_degradation: f64) -> Self {
        TierStackSpec {
            tiers: vec![
                TierSpec::new("mem", mem_capacity, membus_bw, f64::INFINITY, 0.0),
                TierSpec::new("hdd", u64::MAX, disk_bw, disk_bw, disk_degradation),
            ],
        }
    }

    /// 3-tier stack: memory / NVMe / HDD. NVMe numbers follow a
    /// datacenter U.2 drive (~3.2 GB/s read, ~2 GB/s write).
    pub fn three_tier(
        mem_capacity: u64,
        membus_bw: f64,
        disk_bw: f64,
        disk_degradation: f64,
    ) -> Self {
        TierStackSpec {
            tiers: vec![
                TierSpec::new("mem", mem_capacity, membus_bw, f64::INFINITY, 0.0),
                TierSpec::new("nvme", 256 * GIB, 3200.0 * MIB_F, 2000.0 * MIB_F, 0.0),
                TierSpec::new("hdd", u64::MAX, disk_bw, disk_bw, disk_degradation),
            ],
        }
    }

    /// 4-tier stack: memory / NVMe / SATA SSD / HDD.
    pub fn four_tier(
        mem_capacity: u64,
        membus_bw: f64,
        disk_bw: f64,
        disk_degradation: f64,
    ) -> Self {
        TierStackSpec {
            tiers: vec![
                TierSpec::new("mem", mem_capacity, membus_bw, f64::INFINITY, 0.0),
                TierSpec::new("nvme", 256 * GIB, 3200.0 * MIB_F, 2000.0 * MIB_F, 0.0),
                TierSpec::new("ssd", GIB_F as u64, 550.0 * MIB_F, 500.0 * MIB_F, 0.0),
                TierSpec::new("hdd", u64::MAX, disk_bw, disk_bw, disk_degradation),
            ],
        }
    }

    /// Number of tiers including the backing disk.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// True if the stack has no tiers (invalid; see [`Self::validate`]).
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// The buffer tiers — everything above the backing disk.
    pub fn buffer_tiers(&self) -> &[TierSpec] {
        &self.tiers[..self.tiers.len() - 1]
    }

    /// Number of buffer tiers.
    pub fn num_buffer_tiers(&self) -> usize {
        self.tiers.len() - 1
    }

    /// The backing disk tier (always the last entry).
    pub fn disk(&self) -> &TierSpec {
        self.tiers.last().expect("validated stack has a disk tier")
    }

    /// Algorithm 1 destination write factor for a buffer tier: how much
    /// longer a migration takes when the destination write side, not the
    /// source disk read, is the bottleneck. `max(1.0, disk_read / write)`
    /// — exactly 1.0 for memory (infinite write bandwidth), so 2-tier
    /// scoring reduces to the original `spb · bytes` term bit-for-bit.
    pub fn write_factor(&self, tier: TierId) -> f64 {
        let w = self.tiers[tier.index()].write_bw;
        (self.disk().read_bw / w).max(1.0)
    }

    /// Buffer-tier capacities in tier order (what a [`crate::TierStore`]
    /// is built from).
    pub fn buffer_capacities(&self) -> Vec<u64> {
        self.buffer_tiers().iter().map(|t| t.capacity).collect()
    }

    /// Check the stack is well-formed: at least a buffer over a disk,
    /// positive buffer capacities, positive finite read bandwidths, and
    /// positive write bandwidths (infinite allowed only on tier 0).
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.len() < 2 {
            return Err(format!(
                "tier stack needs a buffer over a backing disk, got {} tier(s)",
                self.tiers.len()
            ));
        }
        for (i, t) in self.tiers.iter().enumerate() {
            if i < self.num_buffer_tiers() && t.capacity == 0 {
                return Err(format!("buffer tier {i} ({}) has zero capacity", t.name));
            }
            if !(t.read_bw > 0.0 && t.read_bw.is_finite()) {
                return Err(format!(
                    "tier {i} ({}) read_bw must be finite positive",
                    t.name
                ));
            }
            let write_bw_positive = t.write_bw > 0.0;
            if !write_bw_positive || (t.write_bw.is_infinite() && i != 0) {
                return Err(format!(
                    "tier {i} ({}) write_bw must be positive (infinite only on tier 0)",
                    t.name
                ));
            }
            if !(t.degradation >= 0.0 && t.degradation.is_finite()) {
                return Err(format!(
                    "tier {i} ({}) degradation must be finite ≥ 0",
                    t.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_stack_is_two_tiers_with_unit_mem_factor() {
        let s = TierStackSpec::legacy(96 * GIB, 8.0 * GIB_F, 140.0 * MIB_F, 0.02);
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_buffer_tiers(), 1);
        assert_eq!(s.write_factor(TierId::MEM), 1.0);
        assert_eq!(s.disk().name, "hdd");
        s.validate().expect("legacy stack is valid");
    }

    #[test]
    fn write_factor_penalizes_slow_writers() {
        let s = TierStackSpec::four_tier(96 * GIB, 8.0 * GIB_F, 140.0 * MIB_F, 0.02);
        assert_eq!(s.write_factor(TierId(0)), 1.0);
        // NVMe and SSD write faster than the 140 MB/s disk reads, so the
        // factor floors at 1.0 — the source disk stays the bottleneck.
        assert_eq!(s.write_factor(TierId(1)), 1.0);
        assert_eq!(s.write_factor(TierId(2)), 1.0);
        // A hypothetical writer slower than the disk read is penalized.
        let mut slow = s.clone();
        slow.tiers[2].write_bw = 70.0 * MIB_F;
        assert_eq!(slow.write_factor(TierId(2)), 2.0);
    }

    #[test]
    fn validate_rejects_malformed_stacks() {
        let good = TierStackSpec::three_tier(GIB, GIB_F, 140.0 * MIB_F, 0.02);
        good.validate().expect("preset is valid");
        let mut one = good.clone();
        one.tiers.truncate(1);
        assert!(one.validate().is_err(), "single tier rejected");
        let mut zero_cap = good.clone();
        zero_cap.tiers[1].capacity = 0;
        assert!(
            zero_cap.validate().is_err(),
            "zero-capacity buffer rejected"
        );
        let mut inf_mid = good.clone();
        inf_mid.tiers[1].write_bw = f64::INFINITY;
        assert!(
            inf_mid.validate().is_err(),
            "infinite mid-tier write rejected"
        );
    }

    #[test]
    fn tier_id_display_and_index() {
        assert_eq!(TierId(2).to_string(), "tier2");
        assert_eq!(TierId(2).index(), 2);
        assert_eq!(TierId::MEM, TierId(0));
    }
}
