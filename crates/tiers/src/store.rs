//! Per-node tier occupancy accounting.

use crate::spec::TierId;
use std::collections::BTreeMap;

/// Accounting for one buffer tier.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TierUsage {
    capacity: u64,
    used: u64,
    peak: u64,
    /// Cumulative bytes ever admitted to this tier (monotone).
    total_admitted: u64,
}

impl TierUsage {
    fn new(capacity: u64) -> Self {
        TierUsage {
            capacity,
            used: 0,
            peak: 0,
            total_admitted: 0,
        }
    }

    fn fits(&self, bytes: u64) -> bool {
        bytes <= self.capacity - self.used
    }

    fn admit(&mut self, bytes: u64) {
        self.used += bytes;
        self.total_admitted += bytes;
        self.peak = self.peak.max(self.used);
    }
}

/// One block copy held in a middle tier (demoted out of memory but not
/// yet dropped back to disk-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierResident {
    /// The tier holding the copy (always ≥ 1; memory residency is the
    /// owner's business, see [`TierStore`]).
    pub tier: TierId,
    /// Block size in bytes.
    pub bytes: u64,
}

/// Per-node occupancy tracker for a stack of buffer tiers.
///
/// Generalizes the old `MemoryStore`: tier 0 (memory) keeps the exact
/// byte-pool pin/unpin semantics the slave always used — the slave's
/// `buffered` map remains the source of truth for *which* blocks are in
/// memory, this store only meters bytes. Middle tiers (1..) instead
/// track individual resident blocks, because demoted copies are looked
/// up per block on the read path and must never be double-resident.
#[derive(Debug, Clone, PartialEq)]
pub struct TierStore {
    /// One slot per buffer tier; `tiers[0]` is memory.
    tiers: Vec<TierUsage>,
    /// Middle-tier residents: block → (tier, bytes). Never contains a
    /// tier-0 entry.
    resident: BTreeMap<u64, TierResident>,
    /// Per-tier admission order (oldest first); `order[0]` stays empty.
    order: Vec<Vec<u64>>,
}

impl TierStore {
    /// A store over the given buffer-tier capacities (tier 0 = memory
    /// first). Needs at least the memory tier.
    pub fn new(buffer_capacities: &[u64]) -> Self {
        assert!(
            !buffer_capacities.is_empty(),
            "a tier store needs at least the memory tier"
        );
        TierStore {
            tiers: buffer_capacities
                .iter()
                .map(|&c| TierUsage::new(c))
                .collect(),
            resident: BTreeMap::new(),
            order: vec![Vec::new(); buffer_capacities.len()],
        }
    }

    /// Number of buffer tiers.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    // ------------------------------------------------------------------
    // tier 0 (memory) — the legacy MemoryStore surface, bit-identical
    // ------------------------------------------------------------------

    /// Memory hard limit in bytes.
    pub fn capacity(&self) -> u64 {
        self.tiers[0].capacity
    }

    /// Memory bytes currently pinned.
    pub fn used(&self) -> u64 {
        self.tiers[0].used
    }

    /// Free memory bytes under the limit.
    pub fn available(&self) -> u64 {
        self.tiers[0].capacity - self.tiers[0].used
    }

    /// Highest pinned memory footprint seen so far.
    pub fn peak(&self) -> u64 {
        self.tiers[0].peak
    }

    /// Cumulative bytes ever pinned in memory (monotone).
    pub fn total_pinned(&self) -> u64 {
        self.tiers[0].total_admitted
    }

    /// True if `bytes` more fit in memory.
    pub fn fits(&self, bytes: u64) -> bool {
        self.tiers[0].fits(bytes)
    }

    /// Pin `bytes` in memory; `false` (and no change) if it doesn't fit.
    #[must_use]
    pub fn pin(&mut self, bytes: u64) -> bool {
        if !self.tiers[0].fits(bytes) {
            return false;
        }
        self.tiers[0].admit(bytes);
        true
    }

    /// Unpin memory bytes. Panics on over-release — always a caller bug.
    pub fn unpin(&mut self, bytes: u64) {
        assert!(
            bytes <= self.tiers[0].used,
            "unpin {bytes} exceeds pinned {}",
            self.tiers[0].used
        );
        self.tiers[0].used -= bytes;
    }

    /// Drop everything (slave process failure: the OS reclaims memory and
    /// the tier daemons lose their maps). Peaks and cumulative counters
    /// are preserved.
    pub fn clear(&mut self) {
        for t in &mut self.tiers {
            t.used = 0;
        }
        self.resident.clear();
        for o in &mut self.order {
            o.clear();
        }
    }

    // ------------------------------------------------------------------
    // middle tiers — demoted residents
    // ------------------------------------------------------------------

    /// Capacity of tier `t` in bytes.
    pub fn tier_capacity(&self, t: TierId) -> u64 {
        self.tiers[t.index()].capacity
    }

    /// Bytes currently held in tier `t`.
    pub fn tier_used(&self, t: TierId) -> u64 {
        self.tiers[t.index()].used
    }

    /// High-water mark of tier `t`.
    pub fn tier_peak(&self, t: TierId) -> u64 {
        self.tiers[t.index()].peak
    }

    /// Cumulative bytes ever admitted to tier `t`.
    pub fn tier_total_admitted(&self, t: TierId) -> u64 {
        self.tiers[t.index()].total_admitted
    }

    /// Demote a block copy leaving tier `from`: place it in the first
    /// tier below `from` with room, oldest-first ordering preserved per
    /// tier. Returns the receiving tier, or `None` when every lower tier
    /// is full (the caller drops the copy). The caller has already
    /// released the block from `from` (for memory, via [`Self::unpin`]).
    pub fn demote(&mut self, block: u64, bytes: u64, from: TierId) -> Option<TierId> {
        assert!(
            !self.resident.contains_key(&block),
            "block {block} already resident in a middle tier"
        );
        let start = from.index() + 1;
        for t in start..self.tiers.len() {
            if self.tiers[t].fits(bytes) {
                self.tiers[t].admit(bytes);
                let tier = TierId(t as u8);
                self.resident.insert(block, TierResident { tier, bytes });
                self.order[t].push(block);
                return Some(tier);
            }
        }
        None
    }

    /// The middle tier holding `block`, if any.
    pub fn resident(&self, block: u64) -> Option<TierResident> {
        self.resident.get(&block).copied()
    }

    /// Drop a middle-tier resident (eviction, or the block landed back in
    /// memory via a fresh migration). Returns what was released.
    pub fn release(&mut self, block: u64) -> Option<TierResident> {
        let r = self.resident.remove(&block)?;
        self.tiers[r.tier.index()].used -= r.bytes;
        self.order[r.tier.index()].retain(|&b| b != block);
        Some(r)
    }

    /// Promote a middle-tier resident back into memory: releases it from
    /// its tier and pins the bytes in tier 0. Returns the promoted byte
    /// count, or `None` (state unchanged) if the block is not resident or
    /// memory cannot fit it.
    pub fn promote(&mut self, block: u64) -> Option<u64> {
        let r = self.resident.get(&block).copied()?;
        if !self.tiers[0].fits(r.bytes) {
            return None;
        }
        self.release(block);
        assert!(self.pin(r.bytes), "fits() checked above");
        Some(r.bytes)
    }

    /// Blocks resident in tier `t`, oldest admission first.
    pub fn tier_blocks(&self, t: TierId) -> &[u64] {
        &self.order[t.index()]
    }

    /// All middle-tier residents in block order.
    pub fn residents(&self) -> impl Iterator<Item = (u64, TierResident)> + '_ {
        self.resident.iter().map(|(&b, &r)| (b, r))
    }
}

impl simkit::audit::Audit for TierStore {
    fn audit(&self, report: &mut simkit::audit::AuditReport) {
        let c = "tier-store";
        for (i, t) in self.tiers.iter().enumerate() {
            report.check(
                t.used <= t.capacity,
                c,
                "per-tier occupancy stays under capacity",
                || format!("tier{i}: used {} > capacity {}", t.used, t.capacity),
            );
            report.check(
                t.used <= t.peak && t.peak <= t.total_admitted,
                c,
                "per-tier peak is a high-water mark bounded by admissions",
                || {
                    format!(
                        "tier{i}: used {} peak {} total {}",
                        t.used, t.peak, t.total_admitted
                    )
                },
            );
        }
        let mut per_tier = vec![0u64; self.tiers.len()];
        for (&block, r) in &self.resident {
            report.check(
                r.tier.index() >= 1 && r.tier.index() < self.tiers.len(),
                c,
                "residents live strictly in middle tiers",
                || format!("block {block} resident in {}", r.tier),
            );
            if r.tier.index() < per_tier.len() {
                per_tier[r.tier.index()] += r.bytes;
            }
            report.check(
                self.order[r.tier.index()].contains(&block),
                c,
                "admission order covers every resident",
                || format!("block {block} missing from {} order", r.tier),
            );
        }
        for (i, t) in self.tiers.iter().enumerate().skip(1) {
            report.check(
                per_tier[i] == t.used,
                c,
                "middle-tier used bytes equal the sum of residents",
                || format!("tier{i}: residents {} != used {}", per_tier[i], t.used),
            );
            report.check(
                self.order[i].len()
                    == self
                        .resident
                        .values()
                        .filter(|r| r.tier.index() == i)
                        .count(),
                c,
                "admission order holds exactly the tier's residents",
                || format!("tier{i}: order len {}", self.order[i].len()),
            );
        }
        report.check(
            self.order[0].is_empty(),
            c,
            "memory residency is tracked by the owner, not the store",
            || format!("tier0 order has {} entries", self.order[0].len()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::audit::{Audit, AuditReport};

    fn clean(s: &TierStore) {
        let mut report = AuditReport::new();
        s.audit(&mut report);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn tier0_mirrors_memory_store_semantics() {
        let mut s = TierStore::new(&[100]);
        assert!(s.pin(60));
        assert_eq!(s.used(), 60);
        assert_eq!(s.available(), 40);
        assert!(!s.pin(50), "over-limit pin rejected without change");
        assert_eq!(s.used(), 60);
        s.unpin(20);
        assert_eq!(s.used(), 40);
        assert_eq!(s.peak(), 60);
        assert_eq!(s.total_pinned(), 60);
        s.clear();
        assert_eq!(s.used(), 0);
        assert_eq!(s.peak(), 60);
        clean(&s);
    }

    #[test]
    #[should_panic(expected = "unpin")]
    fn over_unpin_panics() {
        let mut s = TierStore::new(&[100]);
        assert!(s.pin(10));
        s.unpin(11);
    }

    #[test]
    fn two_tier_store_never_demotes() {
        let mut s = TierStore::new(&[100]);
        assert_eq!(s.demote(7, 10, TierId::MEM), None, "no tier below memory");
        assert_eq!(s.resident(7), None);
        clean(&s);
    }

    #[test]
    fn demote_lands_in_first_tier_with_room() {
        let mut s = TierStore::new(&[100, 25, 50]);
        assert_eq!(s.demote(1, 20, TierId::MEM), Some(TierId(1)));
        // tier 1 has 5 bytes left: the next 20-byte demotion skips to tier 2
        assert_eq!(s.demote(2, 20, TierId::MEM), Some(TierId(2)));
        assert_eq!(s.tier_used(TierId(1)), 20);
        assert_eq!(s.tier_used(TierId(2)), 20);
        assert_eq!(
            s.resident(1),
            Some(TierResident {
                tier: TierId(1),
                bytes: 20
            })
        );
        // both lower tiers full enough → the copy is droppable
        assert_eq!(s.demote(3, 40, TierId::MEM), None);
        clean(&s);
    }

    #[test]
    fn demote_respects_the_source_tier() {
        let mut s = TierStore::new(&[100, 50, 50]);
        assert_eq!(
            s.demote(1, 10, TierId(1)),
            Some(TierId(2)),
            "cascade skips tier 1"
        );
        clean(&s);
    }

    #[test]
    fn release_and_promote_roundtrip() {
        let mut s = TierStore::new(&[30, 50]);
        assert!(s.pin(30));
        s.unpin(30);
        assert_eq!(s.demote(9, 30, TierId::MEM), Some(TierId(1)));
        // memory full again: promotion must fail without touching state
        assert!(s.pin(10));
        assert_eq!(s.promote(9), None);
        assert_eq!(s.tier_used(TierId(1)), 30);
        s.unpin(10);
        assert_eq!(s.promote(9), Some(30));
        assert_eq!(s.used(), 30);
        assert_eq!(s.tier_used(TierId(1)), 0);
        assert_eq!(s.resident(9), None);
        clean(&s);
    }

    #[test]
    fn admission_order_is_oldest_first() {
        let mut s = TierStore::new(&[100, 100]);
        for b in [4u64, 2, 9] {
            assert_eq!(s.demote(b, 10, TierId::MEM), Some(TierId(1)));
        }
        assert_eq!(s.tier_blocks(TierId(1)), &[4, 2, 9]);
        s.release(2);
        assert_eq!(s.tier_blocks(TierId(1)), &[4, 9]);
        clean(&s);
    }

    #[test]
    fn clear_drops_residents_but_keeps_peaks() {
        let mut s = TierStore::new(&[100, 100]);
        assert!(s.pin(40));
        assert_eq!(s.demote(1, 30, TierId::MEM), Some(TierId(1)));
        s.clear();
        assert_eq!(s.used(), 0);
        assert_eq!(s.tier_used(TierId(1)), 0);
        assert_eq!(s.resident(1), None);
        assert_eq!(s.peak(), 40);
        assert_eq!(s.tier_peak(TierId(1)), 30);
        clean(&s);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_demote_panics() {
        let mut s = TierStore::new(&[100, 100]);
        assert_eq!(s.demote(1, 10, TierId::MEM), Some(TierId(1)));
        let _ = s.demote(1, 10, TierId::MEM);
    }
}
