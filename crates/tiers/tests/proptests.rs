//! Property-based tests for tier-store invariants: per-tier capacity
//! conservation, no block resident in two tiers on one node, and
//! admission order preserved across promote/demote/evict sequences.

use dyrs_tiers::{TierId, TierStore};
use proptest::prelude::*;
use simkit::audit::{Audit, AuditReport};
use std::collections::BTreeMap;

/// A shadow model of one node's tier state: which blocks are in memory
/// (the slave's `buffered` map) and which are demoted residents, plus
/// per-tier FIFO admission orders.
#[derive(Default)]
struct Model {
    buffered: BTreeMap<u64, u64>,
    resident: BTreeMap<u64, (u8, u64)>,
    orders: BTreeMap<u8, Vec<u64>>,
}

fn check(store: &TierStore, model: &Model, caps: &[u64]) -> Result<(), TestCaseError> {
    let mut report = AuditReport::new();
    store.audit(&mut report);
    prop_assert!(report.is_clean(), "{report:?}");
    // capacity conservation, per tier
    let mem_used: u64 = model.buffered.values().sum();
    prop_assert_eq!(store.used(), mem_used, "tier0 used tracks buffered bytes");
    prop_assert!(store.used() <= caps[0]);
    for t in 1..caps.len() {
        let used: u64 = model
            .resident
            .values()
            .filter(|&&(tier, _)| tier as usize == t)
            .map(|&(_, b)| b)
            .sum();
        prop_assert_eq!(store.tier_used(TierId(t as u8)), used);
        prop_assert!(used <= caps[t], "tier{} over capacity", t);
    }
    // no dual residency
    for block in model.resident.keys() {
        prop_assert!(
            !model.buffered.contains_key(block),
            "block {} resident in memory and a middle tier",
            block
        );
    }
    for (block, &(tier, bytes)) in &model.resident {
        let r = store
            .resident(*block)
            .expect("model resident must be in store");
        prop_assert_eq!(r.tier, TierId(tier));
        prop_assert_eq!(r.bytes, bytes);
    }
    // admission order preserved
    for t in 1..caps.len() as u8 {
        let empty = Vec::new();
        let want = model.orders.get(&t).unwrap_or(&empty);
        prop_assert_eq!(store.tier_blocks(TierId(t)), &want[..], "tier{} order", t);
    }
    Ok(())
}

proptest! {
    /// Drive a random promote/demote/evict/admit sequence against both
    /// the store and an independent shadow model; every step preserves
    /// capacity conservation, single-residency, and admission order.
    #[test]
    fn tier_sequences_preserve_invariants(
        mem_cap in 50u64..200,
        mid_caps in proptest::collection::vec(30u64..150, 0..3),
        ops in proptest::collection::vec((0u8..5, 0u64..12, 10u64..60), 1..120),
    ) {
        let mut caps = vec![mem_cap];
        caps.extend(mid_caps.iter().copied());
        let mut store = TierStore::new(&caps);
        let mut model = Model::default();
        for (op, block, bytes) in ops {
            match op {
                // admit: a migration lands the block in memory
                0 => {
                    if !model.buffered.contains_key(&block)
                        && !model.resident.contains_key(&block)
                        && store.fits(bytes)
                    {
                        prop_assert!(store.pin(bytes));
                        model.buffered.insert(block, bytes);
                    }
                }
                // pressure eviction with demotion: unpin, push down-stack
                1 => {
                    if let Some(bytes) = model.buffered.remove(&block) {
                        store.unpin(bytes);
                        if let Some(t) = store.demote(block, bytes, TierId::MEM) {
                            model.resident.insert(block, (t.0, bytes));
                            model.orders.entry(t.0).or_default().push(block);
                        }
                    }
                }
                // hard eviction: unpin and drop
                2 => {
                    if let Some(bytes) = model.buffered.remove(&block) {
                        store.unpin(bytes);
                    }
                }
                // promote a middle-tier resident back into memory
                3 => {
                    if let Some(&(tier, bytes)) = model.resident.get(&block) {
                        let fits = store.fits(bytes);
                        let got = store.promote(block);
                        if fits {
                            prop_assert_eq!(got, Some(bytes));
                            model.resident.remove(&block);
                            model.orders.entry(tier).or_default().retain(|&b| b != block);
                            model.buffered.insert(block, bytes);
                        } else {
                            prop_assert_eq!(got, None, "failed promote must not change state");
                        }
                    }
                }
                // drop a middle-tier resident (re-migration landed, or GC)
                _ => {
                    let got = store.release(block);
                    if let Some(&(tier, bytes)) = model.resident.get(&block) {
                        let r = got.expect("model says resident");
                        prop_assert_eq!(r.tier, TierId(tier));
                        prop_assert_eq!(r.bytes, bytes);
                        model.resident.remove(&block);
                        model.orders.entry(tier).or_default().retain(|&b| b != block);
                    } else {
                        prop_assert!(got.is_none());
                    }
                }
            }
            check(&store, &model, &caps)?;
        }
        // a crash clears occupancy everywhere but preserves peaks
        let peak0 = store.peak();
        store.clear();
        prop_assert_eq!(store.used(), 0);
        prop_assert_eq!(store.peak(), peak0);
        for t in 1..caps.len() as u8 {
            prop_assert_eq!(store.tier_used(TierId(t)), 0);
            prop_assert_eq!(store.tier_blocks(TierId(t)), &[] as &[u64]);
        }
    }
}
