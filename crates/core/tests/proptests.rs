//! Property-based tests of the DYRS master/slave invariants.

use dyrs::master::{BlockRequest, Master};
use dyrs::types::{EvictionMode, JobRef, Migration, MigrationId};
use dyrs::{DyrsConfig, MigrationPolicy, ReferenceLists, Slave};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use proptest::prelude::*;
use simkit::{Rng, SimDuration, SimTime};

const MB: u64 = 1 << 20;
const BLOCK: u64 = 256 * MB;
const BW: f64 = 140.0 * MB as f64;

fn arb_replicas() -> impl Strategy<Value = Vec<u32>> {
    proptest::sample::subsequence((0u32..7).collect::<Vec<_>>(), 1..=3)
}

proptest! {
    /// Algorithm 1 never targets a node that does not hold a replica, and
    /// every pending block with a live replica gets a target.
    #[test]
    fn retarget_respects_replica_sets(
        blocks in proptest::collection::vec(arb_replicas(), 1..60),
        spbs in proptest::collection::vec(0.5f64..50.0, 7),
    ) {
        let mut m = Master::new(MigrationPolicy::Dyrs, 7, BW, Rng::new(1));
        for (n, s) in spbs.iter().enumerate() {
            m.on_heartbeat(NodeId(n as u32), s / BW, 0);
        }
        let reqs: Vec<BlockRequest> = blocks
            .iter()
            .enumerate()
            .map(|(i, reps)| BlockRequest {
                block: BlockId(i as u64),
                bytes: BLOCK,
                replicas: reps.iter().map(|&r| NodeId(r)).collect(),
            })
            .collect();
        m.request_migration(JobId(1), reqs, EvictionMode::Implicit);
        m.retarget();
        for (i, reps) in blocks.iter().enumerate() {
            let t = m.target_of(BlockId(i as u64)).expect("live replica ⇒ target");
            prop_assert!(
                reps.contains(&t.0),
                "block {i} targeted at non-replica {t:?} (replicas {reps:?})"
            );
        }
    }

    /// Pulls conserve work: blocks bound to slaves + blocks still pending
    /// equals blocks requested, and nothing is bound twice.
    #[test]
    fn pulls_conserve_pending_work(
        blocks in proptest::collection::vec(arb_replicas(), 1..60),
        pulls in proptest::collection::vec((0u32..7, 1usize..5), 1..40),
    ) {
        let mut m = Master::new(MigrationPolicy::Dyrs, 7, BW, Rng::new(1));
        for n in 0..7 {
            m.on_heartbeat(NodeId(n), 1.0 / BW, 0);
        }
        let total = blocks.len();
        let reqs: Vec<BlockRequest> = blocks
            .iter()
            .enumerate()
            .map(|(i, reps)| BlockRequest {
                block: BlockId(i as u64),
                bytes: BLOCK,
                replicas: reps.iter().map(|&r| NodeId(r)).collect(),
            })
            .collect();
        m.request_migration(JobId(1), reqs, EvictionMode::Implicit);
        let mut seen = std::collections::HashSet::new();
        let mut bound = 0usize;
        for (node, space) in pulls {
            m.retarget();
            for mig in m.on_slave_pull(NodeId(node), space) {
                prop_assert!(seen.insert(mig.block), "block bound twice");
                bound += 1;
            }
        }
        prop_assert_eq!(bound + m.pending_len(), total);
    }

    /// The slave's memory accounting never exceeds its hard limit and
    /// always returns to zero once every job is evicted.
    #[test]
    fn slave_memory_conserved(
        sizes in proptest::collection::vec(1u64..(4 * BLOCK), 1..30),
        cap_blocks in 1u64..8,
    ) {
        let cap = cap_blocks * 4 * BLOCK;
        let mut s = Slave::new(NodeId(0), DyrsConfig::default(), BW, cap, BLOCK);
        s.calibrate(32 * MB, SimDuration::from_secs_f64(32.0 * MB as f64 / BW));
        let migs: Vec<Migration> = sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| Migration {
                id: MigrationId(i as u64),
                block: BlockId(i as u64),
                bytes,
                jobs: vec![JobRef { job: JobId(i as u64 % 3), eviction: EvictionMode::Explicit }],
                replicas: vec![NodeId(0)],
                attempt: 0,
                dest_tier: 0,
            })
            .collect();
        s.on_bind(migs);
        let mut now = SimTime::ZERO;
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "drain loop diverged");
            prop_assert!(s.buffered_bytes() <= cap, "hard limit violated");
            if s.try_start(now).is_some() {
                now += SimDuration::from_secs(1);
                s.on_migration_complete(now);
                continue;
            }
            if s.is_migrating() {
                now += SimDuration::from_secs(1);
                s.on_migration_complete(now);
                continue;
            }
            // stalled on memory or done: evict a job to free space
            let before = s.buffered_bytes();
            let mut freed = false;
            for j in 0..3 {
                if !s.evict_job(JobId(j)).is_empty() {
                    freed = true;
                    break;
                }
            }
            if !freed && s.queue_len() == 0 {
                break;
            }
            prop_assert!(
                freed || s.queue_len() == 0 || before == 0,
                "stalled without anything evictable"
            );
            if !freed && before == 0 && s.queue_len() > 0 {
                // a single block larger than the cap can never start
                break;
            }
        }
        for j in 0..3 {
            s.evict_job(JobId(j));
        }
        prop_assert_eq!(s.buffered_bytes(), 0, "memory must drain after evictions");
    }

    /// Reference lists: a block is evictable exactly when its last
    /// referencing job removed it, regardless of interleaving.
    #[test]
    fn reference_lists_exact(
        ops in proptest::collection::vec((0u64..5, 0u64..10, prop::bool::ANY), 1..200),
    ) {
        let mut r = ReferenceLists::new();
        let mut model: std::collections::HashMap<u64, std::collections::BTreeSet<u64>> =
            Default::default();
        for (job, block, add) in ops {
            if add {
                r.add(JobId(job), BlockId(block));
                model.entry(block).or_default().insert(job);
            } else {
                let became_free = r.remove(JobId(job), BlockId(block));
                if let Some(s) = model.get_mut(&block) {
                    s.remove(&job);
                    if s.is_empty() {
                        model.remove(&block);
                    }
                }
                prop_assert_eq!(became_free, !model.contains_key(&block));
            }
            prop_assert_eq!(r.referenced_blocks(), model.len());
        }
    }

    /// Reference lists: `by_block` and `by_job` stay exact mirrors under
    /// arbitrary interleavings of every mutating operation — witnessed by
    /// the same auditor the `verify-audit` feature runs at heartbeats.
    #[test]
    fn reference_lists_stay_bidirectionally_consistent(
        ops in proptest::collection::vec((0u8..4, 0u64..6, 0u64..12), 1..150),
    ) {
        use simkit::audit::{Audit, AuditReport};
        let mut r = ReferenceLists::new();
        for (op, job, block) in ops {
            match op {
                0 => r.add(JobId(job), BlockId(block)),
                1 => {
                    r.remove(JobId(job), BlockId(block));
                }
                2 => {
                    r.remove_job(JobId(job));
                }
                _ => {
                    // `job` doubles as the liveness cutoff: ids below it
                    // are dead and must be scavenged away.
                    r.scavenge(|alive| alive.0 >= job);
                }
            }
            let mut report = AuditReport::new();
            r.audit(&mut report);
            prop_assert!(
                report.is_clean(),
                "after op {op}({job},{block}): {:?}",
                report.violations()
            );
        }
    }

    /// Under arbitrary strike/heartbeat/health interleavings, Algorithm 1
    /// never targets a suspect or quarantined node and pulls from such
    /// nodes bind nothing — and a block whose only live replica is
    /// quarantined stays pending (never dropped) until probation lifts.
    #[test]
    fn detector_gates_candidacy(
        ops in proptest::collection::vec((0u8..3, 0u32..4, 1u64..40), 1..80),
    ) {
        use dyrs::master::NodeHealth;
        use dyrs::FailureDetectorConfig;
        let mut m = Master::new(MigrationPolicy::Dyrs, 4, BW, Rng::new(3));
        m.configure_detector(FailureDetectorConfig::default());
        let mut clock = SimTime::ZERO;
        for n in 0..4 {
            m.on_heartbeat_at(NodeId(n), 1.0 / BW, 0, clock);
        }
        // the sole-replica block: only node 0 ever holds it
        m.request_migration(
            JobId(9),
            vec![BlockRequest { block: BlockId(999), bytes: BLOCK, replicas: vec![NodeId(0)] }],
            EvictionMode::Implicit,
        );
        for (i, (op, node, dt)) in ops.iter().enumerate() {
            clock += SimDuration::from_secs(*dt);
            let node = NodeId(*node);
            match op {
                // a heartbeat from one node; the others may go suspect
                0 => m.on_heartbeat_at(node, 1.0 / BW, 0, clock),
                // a request + bind + unbind cycle that strikes the bound
                // node (never node 0, so block 999 can only ever bind via
                // a gate violation)
                1 => {
                    let bnode = NodeId(1 + (node.0 % 3));
                    m.request_migration(
                        JobId(i as u64),
                        vec![BlockRequest {
                            block: BlockId(i as u64),
                            bytes: BLOCK,
                            replicas: vec![bnode, NodeId(1 + ((node.0 + 1) % 3))],
                        }],
                        EvictionMode::Implicit,
                    );
                    m.retarget();
                    for mig in m.on_slave_pull(bnode, 2) {
                        m.on_unbound(bnode, mig.block, dyrs::obs::cause::STUCK_STREAM);
                    }
                }
                _ => { m.check_health(clock); }
            }
            m.retarget();
            for n in 0..4u32 {
                let health = m.node_health(NodeId(n));
                let gated = matches!(health, NodeHealth::Suspect | NodeHealth::Quarantined);
                if gated {
                    prop_assert!(
                        m.on_slave_pull(NodeId(n), 8).is_empty(),
                        "{health:?} node {n} bound work"
                    );
                }
            }
            let target_healths: Vec<NodeHealth> = m
                .pending_block_ids()
                .filter_map(|b| m.target_of(b))
                .map(|n| m.node_health(n))
                .collect();
            for h in target_healths {
                prop_assert!(
                    matches!(h, NodeHealth::Healthy | NodeHealth::Probation),
                    "Algorithm 1 targeted a {h:?} node"
                );
            }
            // the sole-replica block can only leave pending via a bind on
            // node 0, which this schedule never performs: whatever health
            // node 0 cycles through, the block must stay pending
            prop_assert!(
                m.pending_block_ids().any(|b| b == BlockId(999)),
                "sole-replica block was dropped from pending"
            );
        }
    }

    /// Random admit / bind / drain / complete / decommission / join churn:
    /// Algorithm 1 never targets a draining or removed node, pulls from
    /// such nodes bind nothing, and no block is stranded — every block
    /// not yet buffered is either pending or bound to a live node.
    #[test]
    fn membership_churn_strands_nothing(
        ops in proptest::collection::vec((0u8..6, 0u32..4), 1..120),
    ) {
        use dyrs::{FailureDetectorConfig, Membership};
        let mut m = Master::new(MigrationPolicy::Dyrs, 4, BW, Rng::new(5));
        m.configure_detector(FailureDetectorConfig::default());
        let mut clock = SimTime::ZERO;
        for n in 0..4 {
            m.on_heartbeat_at(NodeId(n), 1.0 / BW, 0, clock);
        }
        let mut requested = std::collections::BTreeSet::new();
        let mut completed = std::collections::BTreeSet::new();
        let mut bound: std::collections::HashMap<BlockId, NodeId> = Default::default();
        let mut next_block = 0u64;
        for (op, node) in ops {
            clock += SimDuration::from_secs(1);
            let node = NodeId(node % 4);
            match op {
                // admit a fresh block replicated on two nodes
                0 => {
                    let blk = BlockId(next_block);
                    next_block += 1;
                    m.request_migration(
                        JobId(blk.0),
                        vec![BlockRequest {
                            block: blk,
                            bytes: BLOCK,
                            replicas: vec![node, NodeId((node.0 + 1) % 4)],
                        }],
                        EvictionMode::Implicit,
                    );
                    requested.insert(blk);
                }
                // heartbeat + pull: the node binds up to two migrations
                1 => {
                    m.on_heartbeat_at(node, 1.0 / BW, 0, clock);
                    m.retarget();
                    for mig in m.on_slave_pull(node, 2) {
                        bound.insert(mig.block, node);
                    }
                }
                // drain: every bound-but-unstarted block is revoked (this
                // model has no active streams, so that is all of them)
                2 => {
                    for blk in m.drain_node(node) {
                        m.on_drain_unbound(node, blk);
                        bound.remove(&blk);
                    }
                }
                // one bound migration on the node completes
                3 => {
                    if let Some((&blk, _)) = bound.iter().find(|(_, &n2)| n2 == node) {
                        m.on_migration_complete(node, blk);
                        bound.remove(&blk);
                        completed.insert(blk);
                    }
                }
                // a removed node re-joins through the admission ramp
                4 => {
                    if m.membership(node) == Membership::Removed {
                        m.join_node(node);
                    }
                }
                // decommission once the drain has emptied
                _ => {
                    if m.drain_complete(node) {
                        prop_assert!(m.decommission(node));
                    }
                }
            }
            m.retarget();
            for blk in m.pending_block_ids().collect::<Vec<_>>() {
                if let Some(t) = m.target_of(blk) {
                    let mem = m.membership(t);
                    prop_assert!(
                        !matches!(mem, Membership::Draining | Membership::Removed),
                        "pending {blk:?} targeted at {mem:?} node {t:?}"
                    );
                }
            }
            for n2 in 0..4u32 {
                if matches!(
                    m.membership(NodeId(n2)),
                    Membership::Draining | Membership::Removed
                ) {
                    prop_assert!(
                        m.on_slave_pull(NodeId(n2), 8).is_empty(),
                        "draining/removed node {n2} bound work"
                    );
                }
            }
            // Conservation: a block that has not completed is pending or
            // bound — drains re-target, they never drop. (Completed
            // blocks may legitimately leave the buffer map when their
            // host is decommissioned.)
            for &blk in requested.difference(&completed) {
                prop_assert!(
                    m.pending_block_ids().any(|x| x == blk) || bound.contains_key(&blk),
                    "block {blk:?} stranded by membership churn"
                );
            }
        }
    }

    /// Work revoked off a draining node re-enters the queue at its
    /// original admission position: a successor pull sees the drained
    /// blocks in exactly the order they were first requested.
    #[test]
    fn drain_retarget_preserves_admission_order(
        k in 2usize..12,
        seed in 1u64..100,
    ) {
        let mut m = Master::new(MigrationPolicy::Dyrs, 2, BW, Rng::new(seed));
        m.on_heartbeat_at(NodeId(0), 1.0 / BW, 0, SimTime::ZERO);
        m.on_heartbeat_at(NodeId(1), 1000.0 / BW, 0, SimTime::ZERO); // much slower
        let reqs: Vec<BlockRequest> = (0..k)
            .map(|i| BlockRequest {
                block: BlockId(i as u64),
                bytes: BLOCK,
                replicas: vec![NodeId(0), NodeId(1)],
            })
            .collect();
        m.request_migration(JobId(1), reqs, EvictionMode::Implicit);
        m.retarget();
        let taken = m.on_slave_pull(NodeId(0), k);
        prop_assert_eq!(taken.len(), k, "fast node binds the whole batch");
        for blk in m.drain_node(NodeId(0)) {
            m.on_drain_unbound(NodeId(0), blk);
        }
        prop_assert_eq!(m.pending_len(), k);
        m.retarget();
        // jittered hold-off (< 0.5 s) has expired one second later
        m.on_heartbeat_at(NodeId(1), 1000.0 / BW, 0, SimTime::from_secs(1));
        let retaken = m.on_slave_pull(NodeId(1), k);
        prop_assert_eq!(retaken.len(), k, "successor rebinds the whole batch");
        for (i, mig) in retaken.iter().enumerate() {
            prop_assert_eq!(
                mig.block,
                BlockId(i as u64),
                "FIFO admission order violated after drain re-target"
            );
            prop_assert_eq!(mig.attempt, 0, "drain must not burn retry budget");
        }
    }

    /// Ignem binding is uniform over live replicas (chi-square-ish check).
    #[test]
    fn ignem_binding_uniformity(seed in 1u64..500) {
        let mut m = Master::new(MigrationPolicy::Ignem, 7, BW, Rng::new(seed));
        let mut counts = [0usize; 7];
        for i in 0..700u64 {
            let out = m.request_migration(
                JobId(i),
                vec![BlockRequest {
                    block: BlockId(i),
                    bytes: BLOCK,
                    replicas: (0..7).map(NodeId).collect(),
                }],
                EvictionMode::Implicit,
            );
            counts[out.immediate[0].node.index()] += 1;
        }
        for &c in &counts {
            prop_assert!((40..=180).contains(&c), "Ignem skew: {counts:?}");
        }
    }
}
